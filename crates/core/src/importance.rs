//! Mean-shifted importance sampling for verifying very small failure
//! probabilities — the natural companion of worst-case analysis: once the
//! optimizer has pushed the worst-case distances to several sigma, plain
//! Monte Carlo (paper Eq. 6) sees no failures at realistic sample counts;
//! shifting the sampling density to the dominant worst-case point recovers
//! a usable estimate.
//!
//! With proposal `q(ŝ) = N(µ, I)` the weight of a sample is
//! `w(ŝ) = φ(ŝ)/φ_µ(ŝ) = exp(µᵀµ/2 − µᵀŝ)`, and
//! `P(fail) = E_q[1_fail(ŝ)·w(ŝ)]`.
//!
//! Samples are drawn up front and evaluated as one batch per corner group;
//! a sample that already failed an earlier group is excluded from later
//! batches, preserving the short-circuit (and simulation count) of the
//! serial loop.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{OperatingPoint, SimPhase};
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::DVec;
use specwise_stat::StandardNormal;
use specwise_trace::Tracer;
use specwise_wcd::worst_case_corners;

use crate::SpecwiseError;

/// Options of the importance-sampling verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsOptions {
    /// Number of proposal samples.
    pub n: usize,
    /// RNG seed of the proposal draw — explicit so that every run is
    /// reproducible by construction.
    pub seed: u64,
}

impl Default for IsOptions {
    fn default() -> Self {
        IsOptions {
            n: 4_000,
            seed: 2001,
        }
    }
}

/// Result of an importance-sampled yield verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsResult {
    /// Estimated failure probability `P(any spec fails)`.
    pub failure_probability: f64,
    /// Estimated yield `1 − P(fail)`.
    pub yield_value: f64,
    /// Standard error of the failure-probability estimate.
    pub std_error: f64,
    /// Effective sample size `(Σw)²/Σw²` over the failing samples' weights
    /// (a diagnostic of proposal quality).
    pub effective_sample_size: f64,
    /// Number of proposal samples drawn.
    pub n: usize,
    /// Number of sample evaluations that failed to simulate or produced
    /// non-finite margins; such samples count as failures (a nonfunctional
    /// circuit yields nothing).
    pub sim_failures: usize,
    /// Importance weight (normalized by `n`) carried by degraded samples
    /// with no observed spec violation — the probability mass whose true
    /// pass/fail status is unknown. Widens [`IsResult::yield_interval`].
    pub degraded_weight: f64,
}

impl IsResult {
    /// The yield interval `[low, high]` implied by counting-and-excluding
    /// degraded samples: `low` counts every degraded sample as failing
    /// (this is [`IsResult::yield_value`]), `high` returns their
    /// importance-weighted mass to the passing side. With no degradation
    /// the interval collapses to the point estimate.
    pub fn yield_interval(&self) -> (f64, f64) {
        let low = self.yield_value;
        let high = (low + self.degraded_weight).min(1.0);
        (low, high)
    }
}

/// Runs a mean-shifted importance-sampling verification at design `d`.
///
/// `shift` is the proposal mean in the standardized space — typically the
/// dominant worst-case point `ŝ_wc` of the most critical specification.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    n: usize,
    seed: u64,
) -> Result<IsResult, SpecwiseError> {
    importance_verify_with(env, d, shift, &IsOptions { n, seed })
}

/// Runs a mean-shifted importance-sampling verification with explicit
/// options.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify_with<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    options: &IsOptions,
) -> Result<IsResult, SpecwiseError> {
    importance_verify_traced(env, d, shift, options, &Tracer::disabled())
}

/// [`importance_verify_with`] recording an `is_verify` span (sample and
/// simulation-failure counts, the estimated failure probability, the IS
/// estimator's variance/standard error over the weights, the effective
/// sample size, and the simulation effort) into `tracer`'s journal.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify_traced<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    options: &IsOptions,
    tracer: &Tracer,
) -> Result<IsResult, SpecwiseError> {
    let mut span = tracer.span("is_verify");
    let sims_before = if span.is_enabled() {
        env.sim_count()
    } else {
        0
    };
    let result = importance_verify_inner(env, d, shift, options)?;
    if span.is_enabled() {
        span.set_attr("n", options.n);
        span.set_attr("failure_probability", result.failure_probability);
        span.set_attr("std_error", result.std_error);
        span.set_attr("variance", result.std_error * result.std_error);
        span.set_attr("effective_sample_size", result.effective_sample_size);
        span.set_attr("sim_failures", result.sim_failures);
        let (lo, hi) = result.yield_interval();
        span.set_attr("yield_low", lo);
        span.set_attr("yield_high", hi);
        span.add_count("sims", env.sim_count() - sims_before);
    }
    Ok(result)
}

fn importance_verify_inner<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    options: &IsOptions,
) -> Result<IsResult, SpecwiseError> {
    let n = options.n;
    if n == 0 {
        return Err(SpecwiseError::InvalidConfig {
            reason: "need at least one sample",
        });
    }
    if shift.len() != env.stat_dim() {
        return Err(SpecwiseError::DimensionMismatch {
            what: "stat",
            expected: env.stat_dim(),
            found: shift.len(),
        });
    }
    env.set_sim_phase(SimPhase::Verification);

    // Per-spec worst-case corners (shared simulations per group, as in
    // `mc_verify`).
    let corners = worst_case_corners(env, d, &DVec::zeros(env.stat_dim()))?;
    let mut groups: Vec<(OperatingPoint, Vec<usize>)> = Vec::new();
    for (i, (t, _)) in corners.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == t) {
            Some((_, specs)) => specs.push(i),
            None => groups.push((*t, vec![i])),
        }
    }

    // Draw every proposal sample first — the same RNG call order as a
    // serial draw-then-evaluate loop.
    let mut rng = StdRng::seed_from_u64(options.seed);
    let normal = StandardNormal::new();
    let half_mu2 = 0.5 * shift.dot(shift);
    let mut samples = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let mut z = DVec::zeros(env.stat_dim());
    for _ in 0..n {
        normal.fill(&mut rng, z.as_mut_slice());
        let s = &z + shift;
        weights.push((half_mu2 - shift.dot(&s)).exp());
        samples.push(s);
    }

    // The design vector is shared by reference across every point of every
    // corner group.
    let d_arc: Arc<DVec> = Arc::new(d.clone());
    let mut failed = vec![false; n];
    let mut violated = vec![false; n];
    let mut degraded = vec![false; n];
    let mut sim_failures = 0usize;
    for (theta, specs) in &groups {
        // Samples that already failed an earlier group are settled — the
        // serial loop would have `break`ed before simulating them here.
        let live: Vec<usize> = (0..n).filter(|&j| !failed[j]).collect();
        if live.is_empty() {
            break;
        }
        // Prefer the environment's lockstep sample evaluator (one batched
        // Newton sweep per corner group, bit-identical to the point loop);
        // environments without one take the generic batch path.
        let sample_points: Vec<(DVec, OperatingPoint)> =
            live.iter().map(|&j| (samples[j].clone(), *theta)).collect();
        let results = match env.eval_margins_samples(d, &sample_points) {
            Some(results) => results,
            None => {
                let points: Vec<EvalPoint> = live
                    .iter()
                    .map(|&j| EvalPoint::new(Arc::clone(&d_arc), samples[j].clone(), *theta))
                    .collect();
                env.eval_margins_batch(&points)
            }
        };
        for (&j, result) in live.iter().zip(results) {
            match result {
                // Non-finite margins are as unusable as a failed solve —
                // `NaN < 0.0` is false, so without the guard a NaN sample
                // would silently count as passing.
                Ok(margins) if specs.iter().any(|&i| !margins[i].is_finite()) => {
                    sim_failures += 1;
                    degraded[j] = true;
                    failed[j] = true;
                }
                Ok(margins) => {
                    if specs.iter().any(|&i| margins[i] < 0.0) {
                        failed[j] = true;
                        violated[j] = true;
                    }
                }
                Err(e) if e.is_simulation_failure() => {
                    sim_failures += 1;
                    degraded[j] = true;
                    failed[j] = true;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    let mut fail_w = 0.0;
    let mut fail_w2 = 0.0;
    let mut degraded_w = 0.0;
    for j in 0..n {
        if failed[j] {
            fail_w += weights[j];
            fail_w2 += weights[j] * weights[j];
        }
        if degraded[j] && !violated[j] {
            degraded_w += weights[j];
        }
    }

    let nf = n as f64;
    let p_fail = (fail_w / nf).clamp(0.0, 1.0);
    // Var of the IS estimator: (E[1·w²] − p²)/n.
    let var = ((fail_w2 / nf) - p_fail * p_fail).max(0.0) / nf;
    let ess = if fail_w2 > 0.0 {
        fail_w * fail_w / fail_w2
    } else {
        0.0
    };
    Ok(IsResult {
        failure_probability: p_fail,
        yield_value: 1.0 - p_fail,
        std_error: var.sqrt(),
        effective_sample_size: ess,
        n,
        sim_failures,
        degraded_weight: (degraded_w / nf).clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_exec::{EvalService, ExecConfig, RetryPolicy};
    use specwise_stat::std_normal_cdf;

    /// margin = b + s0 → P(fail) = Φ(−b).
    fn env(b: f64) -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, b,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .build()
            .unwrap()
    }

    #[test]
    fn recovers_small_tail_probability() {
        let b = 3.5;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        // Shift to the worst-case point ŝ_wc = (−b, 0).
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 9).unwrap();
        let truth = std_normal_cdf(-b); // ≈ 2.33e-4
        assert!(
            (r.failure_probability / truth - 1.0).abs() < 0.25,
            "IS estimate {} vs truth {truth}",
            r.failure_probability
        );
        assert!(
            r.std_error < 0.3 * truth,
            "IS std error {} too large",
            r.std_error
        );
        assert!(r.effective_sample_size > 100.0);
        assert_eq!(r.sim_failures, 0);
    }

    #[test]
    fn plain_mc_misses_what_is_finds() {
        // At the same sample count, plain MC almost surely sees zero
        // failures for a 4.2σ spec — the motivating comparison.
        let b = 4.2;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let plain = crate::mc_verify(&e, &d, 4_000, 3).unwrap();
        assert_eq!(
            plain.yield_estimate.bad_samples(),
            0,
            "plain MC sees nothing"
        );
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 3).unwrap();
        let truth = std_normal_cdf(-b);
        assert!(r.failure_probability > 0.2 * truth);
        assert!(r.failure_probability < 5.0 * truth);
    }

    #[test]
    fn zero_shift_reduces_to_plain_mc() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        let r = importance_verify(&e, &d, &DVec::zeros(2), 20_000, 5).unwrap();
        let truth = std_normal_cdf(-1.0);
        assert!((r.failure_probability - truth).abs() < 0.01);
        assert!((r.yield_value + r.failure_probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_service_matches_bare_env_bit_for_bit() {
        let b = 3.0;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let shift = DVec::from_slice(&[-b, 0.0]);
        let serial = importance_verify(&e, &d, &shift, 2_000, 13).unwrap();
        for workers in [1usize, 2, 8] {
            let cfg = ExecConfig {
                workers,
                cache_capacity: 0,
                retry: RetryPolicy::none(),
                min_parallel_batch: 2,
            };
            let svc = EvalService::new(&e, cfg);
            let par = importance_verify(&svc, &d, &shift, 2_000, 13).unwrap();
            assert_eq!(
                serial.failure_probability.to_bits(),
                par.failure_probability.to_bits(),
                "workers = {workers}"
            );
            assert_eq!(serial.std_error.to_bits(), par.std_error.to_bits());
        }
    }

    #[test]
    fn simulation_failures_count_as_failing_samples() {
        // Non-convergence in the deep shifted tail: all samples with
        // s0 < −4 "diverge". They must count as failures, not abort.
        let b = 3.5;
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, b,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .fail_when_stat(|_, s| s[0] < -4.0)
            .build()
            .unwrap();
        let d = DVec::from_slice(&[b]);
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 9).unwrap();
        // The proposal is centred at s0 = −3.5, so roughly Φ(−0.5) ≈ 31 %
        // of the samples land below −4 and fail to simulate.
        assert!(
            r.sim_failures > 800,
            "expected many tail failures, got {}",
            r.sim_failures
        );
        // Those samples are all true failures too (b + s0 < −0.5 < 0), so
        // the estimate still tracks the analytic tail probability.
        let truth = std_normal_cdf(-b);
        assert!((r.failure_probability / truth - 1.0).abs() < 0.3);
    }

    #[test]
    fn input_validation() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        assert!(importance_verify(&e, &d, &DVec::zeros(2), 0, 1).is_err());
        assert!(importance_verify(&e, &d, &DVec::zeros(3), 10, 1).is_err());
    }
}
