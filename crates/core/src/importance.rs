//! Mean-shifted importance sampling for verifying very small failure
//! probabilities — the natural companion of worst-case analysis: once the
//! optimizer has pushed the worst-case distances to several sigma, plain
//! Monte Carlo (paper Eq. 6) sees no failures at realistic sample counts;
//! shifting the sampling density to the dominant worst-case point recovers
//! a usable estimate.
//!
//! With proposal `q(ŝ) = N(µ, I)` the weight of a sample is
//! `w(ŝ) = φ(ŝ)/φ_µ(ŝ) = exp(µᵀµ/2 − µᵀŝ)`, and
//! `P(fail) = E_q[1_fail(ŝ)·w(ŝ)]`.
//!
//! Samples are drawn up front and evaluated as one batch per corner group;
//! a sample that already failed an earlier group is excluded from later
//! batches, preserving the short-circuit (and simulation count) of the
//! serial loop.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{CktError, OperatingPoint};
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_stat::StandardNormal;
use specwise_trace::{Span, Tracer};

use crate::estimator::{classify_sample, estimate_yield, SampleOutcome, YieldEstimator};
use crate::SpecwiseError;

/// Options of the importance-sampling verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsOptions {
    /// Number of proposal samples.
    pub n: usize,
    /// RNG seed of the proposal draw — explicit so that every run is
    /// reproducible by construction.
    pub seed: u64,
}

impl Default for IsOptions {
    fn default() -> Self {
        IsOptions {
            n: 4_000,
            seed: 2001,
        }
    }
}

/// Result of an importance-sampled yield verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsResult {
    /// Estimated failure probability `P(any spec fails)`.
    pub failure_probability: f64,
    /// Estimated yield `1 − P(fail)`.
    pub yield_value: f64,
    /// Standard error of the failure-probability estimate.
    pub std_error: f64,
    /// Effective sample size `(Σw)²/Σw²` over the failing samples' weights
    /// (a diagnostic of proposal quality).
    pub effective_sample_size: f64,
    /// Number of proposal samples drawn.
    pub n: usize,
    /// Number of sample evaluations that failed to simulate or produced
    /// non-finite margins; such samples count as failures (a nonfunctional
    /// circuit yields nothing).
    pub sim_failures: usize,
    /// Importance weight (normalized by `n`) carried by degraded samples
    /// with no observed spec violation — the probability mass whose true
    /// pass/fail status is unknown. Widens [`IsResult::yield_interval`].
    pub degraded_weight: f64,
}

impl IsResult {
    /// The yield interval `[low, high]` implied by counting-and-excluding
    /// degraded samples: `low` counts every degraded sample as failing
    /// (this is [`IsResult::yield_value`]), `high` returns their
    /// importance-weighted mass to the passing side. With no degradation
    /// the interval collapses to the point estimate.
    pub fn yield_interval(&self) -> (f64, f64) {
        let low = self.yield_value;
        let high = (low + self.degraded_weight).min(1.0);
        (low, high)
    }
}

/// Runs a mean-shifted importance-sampling verification at design `d`.
///
/// `shift` is the proposal mean in the standardized space — typically the
/// dominant worst-case point `ŝ_wc` of the most critical specification.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    n: usize,
    seed: u64,
) -> Result<IsResult, SpecwiseError> {
    importance_verify_with(env, d, shift, &IsOptions { n, seed })
}

/// Runs a mean-shifted importance-sampling verification with explicit
/// options.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify_with<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    options: &IsOptions,
) -> Result<IsResult, SpecwiseError> {
    let estimator = MeanShiftIs {
        shift: shift.clone(),
        options: *options,
    };
    estimate_yield(&estimator, env, d, &Tracer::disabled())
}

/// Mean-shifted importance sampling as a [`YieldEstimator`]: the proposal
/// `N(µ, I)` is centred at `shift` (typically the dominant worst-case
/// point) and a sample that already failed an earlier corner group is
/// excluded from later batches, preserving the short-circuit (and
/// simulation count) of the serial loop. This is the estimator behind
/// [`importance_verify`]/[`importance_verify_with`]; run it through
/// [`estimate_yield`] to record an `is_verify` span.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanShiftIs {
    /// Proposal mean `µ` in the standardized space.
    pub shift: DVec,
    /// Sample count and RNG seed.
    pub options: IsOptions,
}

/// Accumulator state of [`MeanShiftIs`].
#[derive(Debug, Clone)]
pub struct IsState {
    weights: Vec<f64>,
    failed: Vec<bool>,
    violated: Vec<bool>,
    degraded: Vec<bool>,
    sim_failures: usize,
}

impl YieldEstimator for MeanShiftIs {
    type State = IsState;
    type Output = IsResult;

    fn name(&self) -> &'static str {
        "is"
    }

    fn span_name(&self) -> &'static str {
        "is_verify"
    }

    fn validate<E: Evaluator + ?Sized>(&self, env: &E) -> Result<(), SpecwiseError> {
        if self.options.n == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "need at least one sample",
            });
        }
        if self.shift.len() != env.stat_dim() {
            return Err(SpecwiseError::DimensionMismatch {
                what: "stat",
                expected: env.stat_dim(),
                found: self.shift.len(),
            });
        }
        Ok(())
    }

    fn propose<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        _d: &DVec,
        _theta_wc: &[OperatingPoint],
    ) -> Result<(Vec<DVec>, IsState), SpecwiseError> {
        let n = self.options.n;
        // Draw every proposal sample first — the same RNG call order as a
        // serial draw-then-evaluate loop.
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let normal = StandardNormal::new();
        let half_mu2 = 0.5 * self.shift.dot(&self.shift);
        let mut samples = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut z = DVec::zeros(env.stat_dim());
        for _ in 0..n {
            normal.fill(&mut rng, z.as_mut_slice());
            let s = &z + &self.shift;
            weights.push((half_mu2 - self.shift.dot(&s)).exp());
            samples.push(s);
        }
        Ok((
            samples,
            IsState {
                weights,
                failed: vec![false; n],
                violated: vec![false; n],
                degraded: vec![false; n],
                sim_failures: 0,
            },
        ))
    }

    // Samples that already failed an earlier group are settled — the
    // serial loop would have `break`ed before simulating them here.
    fn live(&self, state: &IsState, sample: usize) -> bool {
        !state.failed[sample]
    }

    fn accumulate(
        &self,
        state: &mut IsState,
        group_specs: &[usize],
        sample: usize,
        result: Result<DVec, CktError>,
    ) -> Result<(), SpecwiseError> {
        match classify_sample(result, group_specs)? {
            SampleOutcome::Valid(margins) => {
                if group_specs.iter().any(|&i| margins[i] < 0.0) {
                    state.failed[sample] = true;
                    state.violated[sample] = true;
                }
            }
            SampleOutcome::Degraded(_) => {
                state.sim_failures += 1;
                state.degraded[sample] = true;
                state.failed[sample] = true;
            }
        }
        Ok(())
    }

    fn finalize<E: Evaluator + ?Sized>(
        &self,
        _env: &E,
        state: IsState,
        _theta_wc: Vec<OperatingPoint>,
    ) -> IsResult {
        let n = self.options.n;
        let mut fail_w = 0.0;
        let mut fail_w2 = 0.0;
        let mut degraded_w = 0.0;
        for j in 0..n {
            if state.failed[j] {
                fail_w += state.weights[j];
                fail_w2 += state.weights[j] * state.weights[j];
            }
            if state.degraded[j] && !state.violated[j] {
                degraded_w += state.weights[j];
            }
        }

        let nf = n as f64;
        let p_fail = (fail_w / nf).clamp(0.0, 1.0);
        // Var of the IS estimator: (E[1·w²] − p²)/n.
        let var = ((fail_w2 / nf) - p_fail * p_fail).max(0.0) / nf;
        let ess = if fail_w2 > 0.0 {
            fail_w * fail_w / fail_w2
        } else {
            0.0
        };
        IsResult {
            failure_probability: p_fail,
            yield_value: 1.0 - p_fail,
            std_error: var.sqrt(),
            effective_sample_size: ess,
            n,
            sim_failures: state.sim_failures,
            degraded_weight: (degraded_w / nf).clamp(0.0, 1.0),
        }
    }

    fn annotate(&self, span: &mut Span, output: &IsResult) {
        span.set_attr("n", self.options.n);
        span.set_attr("failure_probability", output.failure_probability);
        span.set_attr("std_error", output.std_error);
        span.set_attr("variance", output.std_error * output.std_error);
        span.set_attr("effective_sample_size", output.effective_sample_size);
        span.set_attr("sim_failures", output.sim_failures);
        let (lo, hi) = output.yield_interval();
        span.set_attr("yield_low", lo);
        span.set_attr("yield_high", hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_exec::{EvalService, ExecConfig, RetryPolicy};
    use specwise_stat::std_normal_cdf;

    /// margin = b + s0 → P(fail) = Φ(−b).
    fn env(b: f64) -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, b,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .build()
            .unwrap()
    }

    #[test]
    fn recovers_small_tail_probability() {
        let b = 3.5;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        // Shift to the worst-case point ŝ_wc = (−b, 0).
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 9).unwrap();
        let truth = std_normal_cdf(-b); // ≈ 2.33e-4
        assert!(
            (r.failure_probability / truth - 1.0).abs() < 0.25,
            "IS estimate {} vs truth {truth}",
            r.failure_probability
        );
        assert!(
            r.std_error < 0.3 * truth,
            "IS std error {} too large",
            r.std_error
        );
        assert!(r.effective_sample_size > 100.0);
        assert_eq!(r.sim_failures, 0);
    }

    #[test]
    fn plain_mc_misses_what_is_finds() {
        // At the same sample count, plain MC almost surely sees zero
        // failures for a 4.2σ spec — the motivating comparison.
        let b = 4.2;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let plain = crate::mc_verify(&e, &d, 4_000, 3).unwrap();
        assert_eq!(
            plain.yield_estimate.bad_samples(),
            0,
            "plain MC sees nothing"
        );
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 3).unwrap();
        let truth = std_normal_cdf(-b);
        assert!(r.failure_probability > 0.2 * truth);
        assert!(r.failure_probability < 5.0 * truth);
    }

    #[test]
    fn zero_shift_reduces_to_plain_mc() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        let r = importance_verify(&e, &d, &DVec::zeros(2), 20_000, 5).unwrap();
        let truth = std_normal_cdf(-1.0);
        assert!((r.failure_probability - truth).abs() < 0.01);
        assert!((r.yield_value + r.failure_probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_service_matches_bare_env_bit_for_bit() {
        let b = 3.0;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let shift = DVec::from_slice(&[-b, 0.0]);
        let serial = importance_verify(&e, &d, &shift, 2_000, 13).unwrap();
        for workers in [1usize, 2, 8] {
            let cfg = ExecConfig {
                workers,
                cache_capacity: 0,
                retry: RetryPolicy::none(),
                min_parallel_batch: 2,
            };
            let svc = EvalService::new(&e, cfg);
            let par = importance_verify(&svc, &d, &shift, 2_000, 13).unwrap();
            assert_eq!(
                serial.failure_probability.to_bits(),
                par.failure_probability.to_bits(),
                "workers = {workers}"
            );
            assert_eq!(serial.std_error.to_bits(), par.std_error.to_bits());
        }
    }

    #[test]
    fn simulation_failures_count_as_failing_samples() {
        // Non-convergence in the deep shifted tail: all samples with
        // s0 < −4 "diverge". They must count as failures, not abort.
        let b = 3.5;
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, b,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .fail_when_stat(|_, s| s[0] < -4.0)
            .build()
            .unwrap();
        let d = DVec::from_slice(&[b]);
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 9).unwrap();
        // The proposal is centred at s0 = −3.5, so roughly Φ(−0.5) ≈ 31 %
        // of the samples land below −4 and fail to simulate.
        assert!(
            r.sim_failures > 800,
            "expected many tail failures, got {}",
            r.sim_failures
        );
        // Those samples are all true failures too (b + s0 < −0.5 < 0), so
        // the estimate still tracks the analytic tail probability.
        let truth = std_normal_cdf(-b);
        assert!((r.failure_probability / truth - 1.0).abs() < 0.3);
    }

    #[test]
    fn input_validation() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        assert!(importance_verify(&e, &d, &DVec::zeros(2), 0, 1).is_err());
        assert!(importance_verify(&e, &d, &DVec::zeros(3), 10, 1).is_err());
    }
}
