//! Mean-shifted importance sampling for verifying very small failure
//! probabilities — the natural companion of worst-case analysis: once the
//! optimizer has pushed the worst-case distances to several sigma, plain
//! Monte Carlo (paper Eq. 6) sees no failures at realistic sample counts;
//! shifting the sampling density to the dominant worst-case point recovers
//! a usable estimate.
//!
//! With proposal `q(ŝ) = N(µ, I)` the weight of a sample is
//! `w(ŝ) = φ(ŝ)/φ_µ(ŝ) = exp(µᵀµ/2 − µᵀŝ)`, and
//! `P(fail) = E_q[1_fail(ŝ)·w(ŝ)]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{CircuitEnv, OperatingPoint};
use specwise_linalg::DVec;
use specwise_stat::StandardNormal;
use specwise_wcd::worst_case_corners;

use crate::SpecwiseError;

/// Result of an importance-sampled yield verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsResult {
    /// Estimated failure probability `P(any spec fails)`.
    pub failure_probability: f64,
    /// Estimated yield `1 − P(fail)`.
    pub yield_value: f64,
    /// Standard error of the failure-probability estimate.
    pub std_error: f64,
    /// Effective sample size `(Σw)²/Σw²` over the failing samples' weights
    /// (a diagnostic of proposal quality).
    pub effective_sample_size: f64,
    /// Number of proposal samples drawn.
    pub n: usize,
}

/// Runs a mean-shifted importance-sampling verification at design `d`.
///
/// `shift` is the proposal mean in the standardized space — typically the
/// dominant worst-case point `ŝ_wc` of the most critical specification.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n == 0` and dimension mismatches.
pub fn importance_verify(
    env: &dyn CircuitEnv,
    d: &DVec,
    shift: &DVec,
    n: usize,
    seed: u64,
) -> Result<IsResult, SpecwiseError> {
    if n == 0 {
        return Err(SpecwiseError::InvalidConfig { reason: "need at least one sample" });
    }
    if shift.len() != env.stat_dim() {
        return Err(SpecwiseError::DimensionMismatch {
            what: "stat",
            expected: env.stat_dim(),
            found: shift.len(),
        });
    }

    // Per-spec worst-case corners (shared simulations per group, as in
    // `mc_verify`).
    let corners = worst_case_corners(env, d, &DVec::zeros(env.stat_dim()))?;
    let mut groups: Vec<(OperatingPoint, Vec<usize>)> = Vec::new();
    for (i, (t, _)) in corners.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == t) {
            Some((_, specs)) => specs.push(i),
            None => groups.push((*t, vec![i])),
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let normal = StandardNormal::new();
    let half_mu2 = 0.5 * shift.dot(shift);
    let mut sum_w = 0.0;
    let mut sum_w2 = 0.0;
    let mut fail_w = 0.0;
    let mut fail_w2 = 0.0;
    let mut z = DVec::zeros(env.stat_dim());

    for _ in 0..n {
        normal.fill(&mut rng, z.as_mut_slice());
        let s = &z + shift;
        let w = (half_mu2 - shift.dot(&s)).exp();
        sum_w += w;
        sum_w2 += w * w;
        let mut failed = false;
        'groups: for (theta, specs) in &groups {
            let margins = match env.eval_margins(d, &s, theta) {
                Ok(m) => m,
                Err(specwise_ckt::CktError::Simulation(_)) => {
                    failed = true;
                    break 'groups;
                }
                Err(e) => return Err(e.into()),
            };
            if specs.iter().any(|&i| margins[i] < 0.0) {
                failed = true;
                break 'groups;
            }
        }
        if failed {
            fail_w += w;
            fail_w2 += w * w;
        }
    }

    let nf = n as f64;
    let p_fail = (fail_w / nf).clamp(0.0, 1.0);
    // Var of the IS estimator: (E[1·w²] − p²)/n.
    let var = ((fail_w2 / nf) - p_fail * p_fail).max(0.0) / nf;
    let ess = if fail_w2 > 0.0 { fail_w * fail_w / fail_w2 } else { 0.0 };
    let _ = (sum_w, sum_w2);
    Ok(IsResult {
        failure_probability: p_fail,
        yield_value: 1.0 - p_fail,
        std_error: var.sqrt(),
        effective_sample_size: ess,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_stat::std_normal_cdf;

    /// margin = b + s0 → P(fail) = Φ(−b).
    fn env(b: f64) -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new("b", "", 0.0, 10.0, b)]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .build()
            .unwrap()
    }

    #[test]
    fn recovers_small_tail_probability() {
        let b = 3.5;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        // Shift to the worst-case point ŝ_wc = (−b, 0).
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 9).unwrap();
        let truth = std_normal_cdf(-b); // ≈ 2.33e-4
        assert!(
            (r.failure_probability / truth - 1.0).abs() < 0.25,
            "IS estimate {} vs truth {truth}",
            r.failure_probability
        );
        assert!(r.std_error < 0.3 * truth, "IS std error {} too large", r.std_error);
        assert!(r.effective_sample_size > 100.0);
    }

    #[test]
    fn plain_mc_misses_what_is_finds() {
        // At the same sample count, plain MC almost surely sees zero
        // failures for a 4.2σ spec — the motivating comparison.
        let b = 4.2;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let plain = crate::mc_verify(&e, &d, 4_000, 3).unwrap();
        assert_eq!(plain.yield_estimate.bad_samples(), 0, "plain MC sees nothing");
        let shift = DVec::from_slice(&[-b, 0.0]);
        let r = importance_verify(&e, &d, &shift, 4_000, 3).unwrap();
        let truth = std_normal_cdf(-b);
        assert!(r.failure_probability > 0.2 * truth);
        assert!(r.failure_probability < 5.0 * truth);
    }

    #[test]
    fn zero_shift_reduces_to_plain_mc() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        let r = importance_verify(&e, &d, &DVec::zeros(2), 20_000, 5).unwrap();
        let truth = std_normal_cdf(-1.0);
        assert!((r.failure_probability - truth).abs() < 0.01);
        assert!((r.yield_value + r.failure_probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn input_validation() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        assert!(importance_verify(&e, &d, &DVec::zeros(2), 0, 1).is_err());
        assert!(importance_verify(&e, &d, &DVec::zeros(3), 10, 1).is_err());
    }
}
