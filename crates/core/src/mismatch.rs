//! Mismatch analysis (paper Sec. 3): detecting and ranking
//! mismatch-sensitive transistor pairs from worst-case points.
//!
//! The worst-case point `ŝ_wc` points in the direction of maximum
//! performance degradation; two components with (near-)equal magnitude and
//! opposite sign lie on the *mismatch line* and mark a matching pair. The
//! mismatch measure (Eq. 9) combines
//!
//! * `η(β_wc)` — robustness weight: ½ at β = 0, → 1 for badly violated
//!   specs, → 0 for very robust ones,
//! * a magnitude weight `max(|s_k|, |s_l|)/s_max`,
//! * the mismatch-line selector `Φ(arctan(s_k/s_l))` (Fig. 2).
//!
//! Since the worst-case points are computed during yield optimization
//! anyway, the analysis costs no extra simulations.

use specwise_linalg::DVec;
use specwise_wcd::WorstCasePoint;

/// Tolerances of the mismatch-line selector `Φ` (paper Fig. 2): `Φ = 1`
/// within `delta1` of the mismatch line, decaying linearly to 0 at
/// `delta2` (both in radians of the `arctan(s_k/s_l)` angle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiOptions {
    /// Full-acceptance half-width \[rad\].
    pub delta1: f64,
    /// Zero-acceptance half-width \[rad\] (must exceed `delta1`).
    pub delta2: f64,
}

impl Default for PhiOptions {
    fn default() -> Self {
        // 5° full acceptance, 15° cutoff.
        PhiOptions {
            delta1: std::f64::consts::PI / 36.0,
            delta2: std::f64::consts::PI / 12.0,
        }
    }
}

/// The mismatch-line selector `Φ` (paper Fig. 2): a trapezoid of the angle
/// `α = arctan(s_k/s_l) ∈ (−π/2, π/2)` centered on the mismatch line
/// `α = −π/4` (where `s_k = −s_l`). The neutral line `α = +π/4` maps to 0.
///
/// ```
/// use specwise::{phi, PhiOptions};
/// let opts = PhiOptions::default();
/// assert_eq!(phi(-std::f64::consts::FRAC_PI_4, &opts), 1.0); // mismatch line
/// assert_eq!(phi(std::f64::consts::FRAC_PI_4, &opts), 0.0);  // neutral line
/// ```
pub fn phi(angle: f64, options: &PhiOptions) -> f64 {
    let dist = (angle + std::f64::consts::FRAC_PI_4).abs();
    if dist <= options.delta1 {
        1.0
    } else if dist >= options.delta2 {
        0.0
    } else {
        1.0 - (dist - options.delta1) / (options.delta2 - options.delta1)
    }
}

/// The robustness weight `η(β_wc)` (paper Eq. 9 / Fig. 3):
///
/// * `β_wc < 0` (violated spec): `η = 1 − 1/(2(−β + 1))` → 1 as β → −∞,
/// * `β_wc ≥ 0`: `η = 1/(2(β + 1))` → 0 as β → ∞,
/// * `η(0) = ½`, continuously differentiable at 0.
///
/// ```
/// use specwise::eta;
/// assert!((eta(0.0) - 0.5).abs() < 1e-15);
/// assert!(eta(-10.0) > 0.9);
/// assert!(eta(10.0) < 0.05);
/// ```
pub fn eta(beta_wc: f64) -> f64 {
    if beta_wc < 0.0 {
        1.0 - 1.0 / (2.0 * (-beta_wc + 1.0))
    } else {
        1.0 / (2.0 * (beta_wc + 1.0))
    }
}

/// One ranked mismatch pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchEntry {
    /// Specification index the pair degrades.
    pub spec: usize,
    /// First statistical parameter index.
    pub k: usize,
    /// Second statistical parameter index.
    pub l: usize,
    /// The mismatch measure `m_kl ∈ [0, 1]`.
    pub measure: f64,
}

/// Ranks mismatch-sensitive parameter pairs from worst-case points
/// (paper Table 5).
#[derive(Debug, Clone, Default)]
pub struct MismatchAnalysis {
    options: PhiOptions,
}

impl MismatchAnalysis {
    /// Creates an analysis with default `Φ` tolerances.
    pub fn new() -> Self {
        MismatchAnalysis::default()
    }

    /// Creates an analysis with custom `Φ` tolerances.
    pub fn with_options(options: PhiOptions) -> Self {
        MismatchAnalysis { options }
    }

    /// The mismatch measure `m_kl` (Eq. 9) for components `k`, `l` of a
    /// worst-case point with signed distance `beta_wc`.
    ///
    /// The measure is symmetrized over the component ordering (the paper's
    /// formula is asymmetric off the exact mismatch line; we take the
    /// larger of the two orderings).
    ///
    /// # Panics
    ///
    /// Panics when `k` or `l` is out of range or `k == l`.
    pub fn measure(&self, s_wc: &DVec, beta_wc: f64, k: usize, l: usize) -> f64 {
        assert!(k != l, "mismatch measure needs two distinct components");
        let s_max = s_wc.norm_inf();
        if s_max == 0.0 {
            return 0.0;
        }
        let (sk, sl) = (s_wc[k], s_wc[l]);
        let magnitude = sk.abs().max(sl.abs()) / s_max;
        let angle_kl = (sk / sl).atan();
        let angle_lk = (sl / sk).atan();
        let selector = phi(angle_kl, &self.options).max(phi(angle_lk, &self.options));
        eta(beta_wc) * magnitude * selector
    }

    /// Ranks all component pairs of one worst-case point, descending by
    /// measure, dropping entries below `min_measure`.
    pub fn rank(&self, wc: &WorstCasePoint, min_measure: f64) -> Vec<MismatchEntry> {
        let n = wc.s_wc.len();
        let mut entries = Vec::new();
        for k in 0..n {
            for l in (k + 1)..n {
                if wc.s_wc[k] == 0.0 && wc.s_wc[l] == 0.0 {
                    continue;
                }
                let m = self.measure(&wc.s_wc, wc.beta_wc, k, l);
                if m > min_measure {
                    entries.push(MismatchEntry {
                        spec: wc.spec,
                        k,
                        l,
                        measure: m,
                    });
                }
            }
        }
        entries.sort_by(|a, b| b.measure.partial_cmp(&a.measure).expect("finite measures"));
        entries
    }

    /// Ranks pairs across all worst-case points (one per spec).
    pub fn rank_all(&self, wcs: &[WorstCasePoint], min_measure: f64) -> Vec<MismatchEntry> {
        let mut entries: Vec<MismatchEntry> = wcs
            .iter()
            .flat_map(|wc| self.rank(wc, min_measure))
            .collect();
        entries.sort_by(|a, b| b.measure.partial_cmp(&a.measure).expect("finite measures"));
        entries
    }

    /// `true` when a spec counts as mismatch-sensitive: some pair reaches
    /// at least `threshold`.
    pub fn is_mismatch_sensitive(&self, wc: &WorstCasePoint, threshold: f64) -> bool {
        !self.rank(wc, threshold).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::OperatingPoint;

    fn wc(s: &[f64], beta: f64) -> WorstCasePoint {
        WorstCasePoint {
            spec: 0,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::from_slice(s),
            beta_wc: beta,
            nominal_margin: beta,
            margin_at_wc: 0.0,
            grad_s: DVec::zeros(s.len()),
            converged: true,
        }
    }

    #[test]
    fn phi_trapezoid_shape() {
        let o = PhiOptions::default();
        let ml = -std::f64::consts::FRAC_PI_4;
        assert_eq!(phi(ml, &o), 1.0);
        assert_eq!(phi(ml + o.delta1 * 0.99, &o), 1.0);
        let mid = phi(ml + 0.5 * (o.delta1 + o.delta2), &o);
        assert!((mid - 0.5).abs() < 1e-12);
        assert!(phi(ml + o.delta2, &o).abs() < 1e-12);
        assert_eq!(phi(0.0, &o), 0.0);
        assert_eq!(phi(std::f64::consts::FRAC_PI_4, &o), 0.0);
    }

    #[test]
    fn eta_requirements() {
        // Requirement 2/4: range and monotonicity.
        assert!((eta(0.0) - 0.5).abs() < 1e-15);
        assert!(eta(-100.0) < 1.0 && eta(-100.0) > 0.99);
        assert!(eta(100.0) > 0.0 && eta(100.0) < 0.01);
        let mut last = eta(-10.0);
        for i in -9..=10 {
            let v = eta(i as f64);
            assert!(v < last, "eta must decrease");
            last = v;
        }
        // Continuously differentiable at 0: slopes match (−1/2 both sides).
        let h = 1e-7;
        let left = (eta(0.0) - eta(-h)) / h;
        let right = (eta(h) - eta(0.0)) / h;
        assert!((left - right).abs() < 1e-6);
    }

    #[test]
    fn mismatch_line_pair_scores_high() {
        // s = (2, −2, 0.1): pair (0, 1) on the mismatch line dominates.
        let w = wc(&[2.0, -2.0, 0.1], 0.0);
        let a = MismatchAnalysis::new();
        let m01 = a.measure(&w.s_wc, w.beta_wc, 0, 1);
        assert!((m01 - 0.5).abs() < 1e-12, "η(0)·1·1 = 0.5, got {m01}");
        // Pair (0, 2) far from the mismatch line scores 0.
        assert_eq!(a.measure(&w.s_wc, w.beta_wc, 0, 2), 0.0);
    }

    #[test]
    fn neutral_line_pair_scores_zero() {
        let w = wc(&[2.0, 2.0], 0.0);
        let a = MismatchAnalysis::new();
        assert_eq!(a.measure(&w.s_wc, w.beta_wc, 0, 1), 0.0);
    }

    #[test]
    fn measure_in_unit_interval_and_symmetric() {
        let w = wc(&[1.5, -1.4, 0.7, -0.1], -2.0);
        let a = MismatchAnalysis::new();
        for k in 0..4 {
            for l in 0..4 {
                if k == l {
                    continue;
                }
                let m = a.measure(&w.s_wc, w.beta_wc, k, l);
                assert!((0.0..=1.0).contains(&m));
                assert_eq!(m, a.measure(&w.s_wc, w.beta_wc, l, k), "symmetry {k},{l}");
            }
        }
    }

    #[test]
    fn ranking_orders_descending() {
        // Perfect pair (0, 1), partial pair (2, 3) with smaller magnitude.
        let w = wc(&[2.0, -2.0, 0.8, -0.8], -1.0);
        let a = MismatchAnalysis::new();
        let ranked = a.rank(&w, 1e-6);
        assert!(!ranked.is_empty());
        assert_eq!((ranked[0].k, ranked[0].l), (0, 1));
        for pair in ranked.windows(2) {
            assert!(pair[0].measure >= pair[1].measure);
        }
        let top = &ranked[0];
        // Violated spec (β = −1): η = 1 − 1/4 = 0.75.
        assert!((top.measure - 0.75).abs() < 1e-12);
    }

    #[test]
    fn robust_spec_scores_lower_than_critical() {
        let s = [1.0, -1.0];
        let a = MismatchAnalysis::new();
        let critical = a.measure(&DVec::from_slice(&s), -3.0, 0, 1);
        let robust = a.measure(&DVec::from_slice(&s), 3.0, 0, 1);
        assert!(
            critical > robust,
            "requirement 4: robustness lowers the measure"
        );
    }

    #[test]
    fn zero_vector_scores_zero() {
        let a = MismatchAnalysis::new();
        assert_eq!(a.measure(&DVec::zeros(3), 0.0, 0, 1), 0.0);
    }

    #[test]
    fn sensitivity_predicate() {
        let a = MismatchAnalysis::new();
        assert!(a.is_mismatch_sensitive(&wc(&[1.0, -1.0], 0.0), 0.3));
        assert!(!a.is_mismatch_sensitive(&wc(&[1.0, 0.0], 0.0), 0.3));
    }
}
