//! The full yield-optimization loop of the paper's Fig. 6.
//!
//! Per iteration:
//!
//! 1. linearize the functional constraints at the feasible point `d_f`
//!    (Eq. 15) — or skip them entirely for the Table 3 ablation,
//! 2. run the worst-case analysis and build the spec-wise linear margin
//!    models (Eq. 16, mirrored twins per Eqs. 21–22) — anchored at the
//!    nominal point instead for the Table 4 ablation,
//! 3. maximize the Monte-Carlo yield estimate over the models with the
//!    constrained coordinate search (Eqs. 17–20, 19),
//! 4. pull the result back into the true feasibility region with a
//!    simulation line search (Eq. 23),
//! 5. record a snapshot (margins, bad samples, estimated and verified
//!    yield) and repeat until the estimate stops improving.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use specwise_ckt::SimPhase;
use specwise_exec::{Evaluator, ExecReport};
use specwise_linalg::DVec;
use specwise_stat::YieldEstimate;
use specwise_trace::{Span, Tracer};
use specwise_wcd::{WcAnalysis, WcOptions, WcResult, WorstCasePoint};

use crate::{
    estimate_yield, find_feasible_start, line_search_feasible, Checkpoint, CoordinateSearch,
    CoordinateSearchOptions, EstimatorKind, FeasibleStartOptions, IsOptions, LinearConstraints,
    LinearizedYield, McOptions, McVerification, MeanShiftIs, MonteCarlo, NormMinIs, NormMinOptions,
    SpecwiseError, TailVerification, WcdMaximizer, CHECKPOINT_ENV_VAR, CHECKPOINT_VERSION,
};

/// The objective maximized by the inner coordinate search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// The paper's choice: the Monte-Carlo yield estimate over the
    /// spec-wise linear models (Eqs. 17-19). Accounts for performance
    /// correlations through the joint samples.
    #[default]
    DirectYield,
    /// The predecessor objective (paper ref \[10\]): maximize the smallest
    /// linearized worst-case distance. Cheaper, but blind to correlations
    /// between specifications.
    MinWorstCaseDistance,
}

/// Configuration of the yield optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Worst-case analysis options (linearization point, steps, …).
    pub wc_options: WcOptions,
    /// Monte-Carlo samples evaluated on the linear models (the paper used
    /// 10,000).
    pub mc_samples: usize,
    /// Simulation-based verification samples per snapshot (the paper used
    /// 300); 0 disables verification.
    pub verify_samples: usize,
    /// RNG seed (sample sets are redrawn per iteration from this).
    pub seed: u64,
    /// Maximum optimizer iterations (the paper ran 2).
    pub max_iterations: usize,
    /// Consider the functional constraints (disable for the Table 3
    /// ablation).
    pub use_constraints: bool,
    /// Coordinate-search options.
    pub coordinate_search: CoordinateSearchOptions,
    /// Simulation budget of the feasibility line search.
    pub line_search_evals: usize,
    /// Feasible-start search options.
    pub feasible_start: FeasibleStartOptions,
    /// The inner-loop objective.
    pub objective: Objective,
    /// Run-level degradation budget: the run stops (with a partial trace
    /// whose [`OptimizationTrace::aborted`] names the reason) once the
    /// cumulative count of absorbed degradation events — simulation
    /// failures surviving retries, caught worker panics, worst-case
    /// searches that fell back to stale points — exceeds this bound.
    /// `None` (the default) never aborts on degradations.
    pub failure_budget: Option<u64>,
    /// Which yield estimator verifies each snapshot (plain Monte Carlo by
    /// default; construct with [`EstimatorKind::from_env`] to honor the
    /// `SPECWISE_ESTIMATOR` knob). Non-MC estimators fill
    /// [`IterationSnapshot::verified_tail`] instead of
    /// [`IterationSnapshot::verified`].
    pub estimator: EstimatorKind,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            wc_options: WcOptions::default(),
            mc_samples: 10_000,
            verify_samples: 300,
            seed: 2001,
            max_iterations: 2,
            use_constraints: true,
            coordinate_search: CoordinateSearchOptions::default(),
            line_search_evals: 10,
            feasible_start: FeasibleStartOptions::default(),
            objective: Objective::DirectYield,
            failure_budget: None,
            estimator: EstimatorKind::Mc,
        }
    }
}

/// State of the optimization at one point of the trace — one row group of
/// the paper's Tables 1/3/4/6.
#[derive(Debug, Clone)]
pub struct IterationSnapshot {
    /// `"Initial"`, `"1st Iter."`, `"2nd Iter."`, …
    pub label: String,
    /// The design point.
    pub design: DVec,
    /// Per-spec nominal margins `f⁽ⁱ⁾ − f_b⁽ⁱ⁾` at the worst-case corners.
    pub nominal_margins: DVec,
    /// Per-spec bad samples (‰) in the linearized models at this point.
    pub bad_per_mille: Vec<f64>,
    /// Yield estimate `Ȳ` over the linearized models.
    pub estimated_yield: YieldEstimate,
    /// Simulation-based verification `Ỹ` (when enabled and
    /// [`OptimizerConfig::estimator`] is [`EstimatorKind::Mc`]).
    pub verified: Option<McVerification>,
    /// Tail-estimator verification summary (when enabled and the
    /// configured estimator is [`EstimatorKind::MeanShift`] or
    /// [`EstimatorKind::NormMin`]).
    pub verified_tail: Option<TailVerification>,
    /// Per-spec worst-case points of the analysis at this design.
    pub wc_points: Vec<WorstCasePoint>,
    /// Cumulative simulator calls when the snapshot was taken.
    pub sim_count: u64,
    /// `true` when the design could not be simulated at all (the circuit is
    /// nonfunctional) — possible only in ablation runs that bypass the
    /// feasibility machinery; margins read NaN and the yield is 0.
    pub collapsed: bool,
}

/// The record of a full optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationTrace {
    snapshots: Vec<IterationSnapshot>,
    /// Total wall-clock time of the run.
    pub wall_time: Duration,
    /// Total simulator calls of the run.
    pub total_sims: u64,
    /// Simulator calls attributed to each algorithm phase (indexed by
    /// [`SimPhase::index`]).
    pub phase_sims: [u64; SimPhase::COUNT],
    /// Adjoint/sensitivity solves on cached factorizations performed by
    /// this process during the run. Tracked *beside* — never inside —
    /// [`OptimizationTrace::total_sims`]: the phase counts must keep
    /// partitioning the total.
    pub adjoint_solves: u64,
    /// Full simulator invocations the adjoint gradient shortcut avoided
    /// in this process (6 per perturbation direction it priced from the
    /// cached factorizations).
    pub fd_sims_avoided: u64,
    /// Execution-engine report (cache hits, retries, parallel wall time)
    /// when the run went through an
    /// [`EvalService`](specwise_exec::EvalService); `None` on a bare
    /// environment.
    pub exec: Option<ExecReport>,
    /// `Some(reason)` when the run stopped early because the configured
    /// [`failure budget`](OptimizerConfig::failure_budget) was exhausted.
    /// The snapshots up to the abort point are intact — callers get a
    /// partial but well-formed trace instead of an opaque error.
    pub aborted: Option<String>,
    /// `true` when this trace continued from a checkpoint instead of
    /// starting fresh (see [`CHECKPOINT_ENV_VAR`]).
    pub resumed: bool,
}

impl OptimizationTrace {
    /// All snapshots, starting with `"Initial"`.
    pub fn snapshots(&self) -> &[IterationSnapshot] {
        &self.snapshots
    }

    /// The initial snapshot.
    ///
    /// # Panics
    ///
    /// Never panics for traces produced by [`YieldOptimizer::run`].
    pub fn initial(&self) -> &IterationSnapshot {
        self.snapshots
            .first()
            .expect("trace has an initial snapshot")
    }

    /// The final snapshot.
    ///
    /// # Panics
    ///
    /// Never panics for traces produced by [`YieldOptimizer::run`].
    pub fn final_snapshot(&self) -> &IterationSnapshot {
        self.snapshots.last().expect("trace has a final snapshot")
    }

    /// The optimized design.
    pub fn final_design(&self) -> &DVec {
        &self.final_snapshot().design
    }
}

/// Observer invoked with every checkpoint state the optimizer persists.
type CheckpointHook = Arc<dyn Fn(&Checkpoint) + Send + Sync>;

/// The yield optimizer (paper Fig. 6).
#[derive(Clone)]
pub struct YieldOptimizer {
    config: OptimizerConfig,
    tracer: Tracer,
    checkpoint: Option<PathBuf>,
    checkpoint_hook: Option<CheckpointHook>,
    checkpoint_owner: Option<String>,
}

impl std::fmt::Debug for YieldOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldOptimizer")
            .field("config", &self.config)
            .field("tracer", &self.tracer)
            .field("checkpoint", &self.checkpoint)
            .field("checkpoint_hook", &self.checkpoint_hook.is_some())
            .field("checkpoint_owner", &self.checkpoint_owner)
            .finish()
    }
}

impl YieldOptimizer {
    /// Creates an optimizer.
    pub fn new(config: OptimizerConfig) -> Self {
        YieldOptimizer {
            config,
            tracer: Tracer::disabled(),
            checkpoint: None,
            checkpoint_hook: None,
            checkpoint_owner: None,
        }
    }

    /// Attaches a checkpoint file: the run writes its state there after
    /// every completed iteration (atomically — temp file + rename), and a
    /// later run pointed at the same file resumes from the last completed
    /// iteration, reproducing the uninterrupted run bit-for-bit. Without
    /// this call the path is taken from the [`CHECKPOINT_ENV_VAR`]
    /// environment variable when set.
    ///
    /// An unreadable or incompatible checkpoint file degrades to a fresh
    /// run with a warning; a failed checkpoint *write* warns and continues
    /// (the optimization never dies for its life insurance).
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Registers a job-granular checkpoint observer: `hook` is called with
    /// every checkpoint state the run produces — after the initial analysis
    /// and after each completed iteration — whether or not a checkpoint
    /// *path* is configured. Services supervising many runs (e.g.
    /// `specwise-serve`) use this to publish per-job progress without
    /// re-reading checkpoint files.
    #[must_use]
    pub fn with_checkpoint_hook(
        mut self,
        hook: impl Fn(&Checkpoint) + Send + Sync + 'static,
    ) -> Self {
        self.checkpoint_hook = Some(Arc::new(hook));
        self
    }

    /// Stamps every checkpoint this run writes with an owner identity
    /// ([`Checkpoint::owner`]). Resume eligibility is unaffected — the
    /// stamp is observability: when a different process later resumes the
    /// checkpoint (a `specwise-serve` peer stealing an expired job lease),
    /// the `resumed` journal event reports whose work was taken over.
    #[must_use]
    pub fn with_checkpoint_owner(mut self, owner: impl Into<String>) -> Self {
        self.checkpoint_owner = Some(owner.into());
        self
    }

    /// Attaches a [`Tracer`]: the run then emits the full Fig. 6 span
    /// hierarchy (`run` → `feasible_start` / `wc_analysis` / per-iteration
    /// `iteration` with `constraints`, `coordinate_search`, `line_search`
    /// children / `mc_verify`) into the tracer's journal. The default
    /// disabled tracer records nothing and costs one branch per phase.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs the optimization from the environment's initial design.
    ///
    /// # Errors
    ///
    /// Propagates evaluation/analysis errors and feasible-start failure.
    pub fn run<E: Evaluator + ?Sized>(&self, env: &E) -> Result<OptimizationTrace, SpecwiseError> {
        self.run_from(env, &env.design_space().initial())
    }

    /// Runs the optimization from a caller-supplied starting design.
    ///
    /// # Errors
    ///
    /// Propagates evaluation/analysis errors and feasible-start failure.
    pub fn run_from<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        d0: &DVec,
    ) -> Result<OptimizationTrace, SpecwiseError> {
        let cfg = &self.config;
        if cfg.mc_samples == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "mc_samples must be > 0",
            });
        }
        if cfg.max_iterations == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "max_iterations must be > 0",
            });
        }
        let start = Instant::now();
        env.reset_sim_count();
        let n_spec = env.specs().len();

        let mut run_span = self.tracer.span("run");
        if run_span.is_enabled() {
            run_span.set_attr("env", env.name());
            run_span.set_attr("n_specs", n_spec);
            run_span.set_attr("mc_samples", cfg.mc_samples);
            run_span.set_attr("max_iterations", cfg.max_iterations);
            run_span.set_attr("use_constraints", cfg.use_constraints);
        }
        let tr = run_span.tracer();

        // Checkpoint/resume: an explicit path wins, then the environment
        // knob. A loadable checkpoint resumes the run from its last
        // completed iteration; anything else degrades to a fresh run.
        let ckpt_path: Option<PathBuf> = self.checkpoint.clone().or_else(|| {
            std::env::var(CHECKPOINT_ENV_VAR)
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
        });
        let resume = ckpt_path
            .as_deref()
            .and_then(|p| self.try_resume(env, p, &tr));
        let resumed = resume.is_some();
        if run_span.is_enabled() {
            run_span.set_attr("resumed", resumed);
        }

        // Degradation events observed by *this* process (restored
        // snapshots are not re-counted against the budget on resume).
        let mut degradation_events: u64 = 0;
        let mut aborted: Option<String> = None;

        let (mut d_f, mut analysis, mut model, mut snapshots, first_iter, sim_base, phase_base) =
            match resume {
                Some(ck) => {
                    // The model RNG stream is a pure function of (seed,
                    // iteration), so restoring the iteration count restores
                    // the stream position.
                    let model = LinearizedYield::new(
                        ck.analysis.linearizations().to_vec(),
                        n_spec,
                        cfg.mc_samples,
                        cfg.seed.wrapping_add(ck.iteration as u64),
                    )?;
                    (
                        ck.d_f,
                        ck.analysis,
                        model,
                        ck.snapshots,
                        ck.iteration + 1,
                        ck.sim_count,
                        ck.phase_sims,
                    )
                }
                None => {
                    // Step 0 (Sec. 5.5): feasible starting point.
                    let d_f = {
                        let mut span = tr.span("feasible_start");
                        let sims_before = env.sim_count();
                        let d_f = if cfg.use_constraints {
                            find_feasible_start(env, d0, &cfg.feasible_start)?
                        } else {
                            env.design_space().project(d0)?
                        };
                        span.add_count("sims", env.sim_count() - sims_before);
                        d_f
                    };
                    let analysis = WcAnalysis::new(env, cfg.wc_options)
                        .with_tracer(tr.clone())
                        .run(&d_f)?;
                    let model = LinearizedYield::new(
                        analysis.linearizations().to_vec(),
                        n_spec,
                        cfg.mc_samples,
                        cfg.seed,
                    )?;
                    let snapshots =
                        vec![self.snapshot(env, "Initial", &d_f, &analysis, &model, &tr, 0)?];
                    (
                        d_f,
                        analysis,
                        model,
                        snapshots,
                        1,
                        0u64,
                        [0u64; SimPhase::COUNT],
                    )
                }
            };

        if !resumed {
            degradation_events += snapshot_degradations(snapshots.last());
            self.save_checkpoint(
                ckpt_path.as_deref(),
                env,
                0,
                &d_f,
                &analysis,
                &snapshots,
                sim_base,
                &phase_base,
                &tr,
            );
            aborted = self.budget_exceeded(env, degradation_events, &tr);
        }

        for iter in first_iter..=cfg.max_iterations {
            if aborted.is_some() {
                break;
            }
            let mut iter_span = tr.span("iteration");
            if iter_span.is_enabled() {
                iter_span.set_attr("iter", iter);
                iter_span.set_attr("accepted", true);
            }
            let itr = iter_span.tracer();

            // Feasibility region linearization (Eq. 15) or box-only ablation.
            let constraints = {
                let mut span = itr.span("constraints");
                let sims_before = env.sim_count();
                let constraints = if cfg.use_constraints {
                    LinearConstraints::from_env(env, &d_f, cfg.wc_options.fd_step_d)?
                } else {
                    LinearConstraints::box_only(
                        &d_f,
                        env.design_space().lower(),
                        env.design_space().upper(),
                    )
                };
                span.add_count("sims", env.sim_count() - sims_before);
                constraints
            };

            // Inner maximization over the linear models.
            let mut search_span = itr.span("coordinate_search");
            let d_star = match cfg.objective {
                Objective::DirectYield => {
                    // Coordinate search on the MC yield estimate (Eq. 19).
                    let search = CoordinateSearch::new(cfg.coordinate_search);
                    let base = model.estimate(&d_f)?;
                    let (d_star, best) = search.run(&model, &constraints, &d_f)?;
                    if search_span.is_enabled() {
                        search_span.set_attr("base_passed", base.passed());
                        search_span.set_attr("best_passed", best.passed());
                    }
                    drop(search_span);
                    if best.passed() <= base.passed() {
                        iter_span.set_attr("accepted", false);
                        break; // Ȳ cannot be improved further (Fig. 6 exit).
                    }
                    d_star
                }
                Objective::MinWorstCaseDistance => {
                    let maximizer = WcdMaximizer::from_analysis(
                        analysis.worst_case_points(),
                        analysis.linearizations(),
                    )?;
                    let base = maximizer.min_beta(&d_f);
                    let (d_star, best) = maximizer.run(&constraints, &d_f)?;
                    if search_span.is_enabled() {
                        search_span.set_attr("base_min_beta", base);
                        search_span.set_attr("best_min_beta", best);
                    }
                    drop(search_span);
                    if best <= base + 1e-9 {
                        iter_span.set_attr("accepted", false);
                        break; // min-beta cannot be improved further
                    }
                    d_star
                }
            };

            // Line search back into the true feasibility region (Eq. 23).
            let d_new = if cfg.use_constraints {
                let mut span = itr.span("line_search");
                let sims_before = env.sim_count();
                let (d_new, gamma) =
                    line_search_feasible(env, &d_f, &d_star, cfg.line_search_evals)?;
                if span.is_enabled() {
                    span.set_attr("gamma", gamma);
                    span.set_attr("max_evals", cfg.line_search_evals);
                    span.add_count("sims", env.sim_count() - sims_before);
                }
                d_new
            } else {
                d_star
            };
            if (&d_new - &d_f).norm_inf() < 1e-12 {
                iter_span.set_attr("accepted", false);
                break; // constraint pull-back cancelled the whole move
            }
            d_f = d_new;

            // Re-linearize at the new point and take a snapshot.
            let label = match iter {
                1 => "1st Iter.".to_string(),
                2 => "2nd Iter.".to_string(),
                3 => "3rd Iter.".to_string(),
                n => format!("{n}th Iter."),
            };
            // The previous analysis arms the degradation ladder: a failed
            // per-spec search falls back to its last-known worst-case data
            // instead of killing the run.
            match WcAnalysis::new(env, cfg.wc_options)
                .with_tracer(itr.clone())
                .with_fallback(&analysis)
                .run(&d_f)
            {
                Ok(a) => {
                    analysis = a;
                    degradation_events += analysis.fallback_specs().len() as u64;
                    model = LinearizedYield::new(
                        analysis.linearizations().to_vec(),
                        n_spec,
                        cfg.mc_samples,
                        cfg.seed.wrapping_add(iter as u64),
                    )?;
                    snapshots
                        .push(self.snapshot(env, &label, &d_f, &analysis, &model, &itr, sim_base)?);
                    degradation_events += snapshot_degradations(snapshots.last());
                    drop(iter_span);
                    self.save_checkpoint(
                        ckpt_path.as_deref(),
                        env,
                        iter,
                        &d_f,
                        &analysis,
                        &snapshots,
                        sim_base,
                        &phase_base,
                        &tr,
                    );
                    aborted = self.budget_exceeded(env, degradation_events, &tr);
                }
                Err(e) if is_simulation_failure(&e) => {
                    // The move produced a nonfunctional circuit (possible
                    // only without the feasibility machinery — the Table 3
                    // ablation). Record it as a dead design and stop.
                    iter_span.set_attr("collapsed", true);
                    snapshots.push(collapsed_snapshot(
                        &label,
                        &d_f,
                        n_spec,
                        cfg.mc_samples,
                        sim_base + env.sim_count(),
                    ));
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }

        finish_run_span(&mut run_span, env);
        drop(run_span);
        if let Some(journal) = self.tracer.journal() {
            journal.flush();
        }

        let mut phase_sims = env.sim_phase_counts();
        for (total, base) in phase_sims.iter_mut().zip(&phase_base) {
            *total += base;
        }
        Ok(OptimizationTrace {
            snapshots,
            wall_time: start.elapsed(),
            total_sims: sim_base + env.sim_count(),
            phase_sims,
            adjoint_solves: env.adjoint_solve_count(),
            fd_sims_avoided: env.fd_sims_avoided(),
            exec: env.exec_report(),
            aborted,
            resumed,
        })
    }

    /// Attempts to load and validate a checkpoint; any problem degrades to
    /// a fresh run with a warning (stderr + journal), never an error.
    fn try_resume<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        path: &Path,
        tr: &Tracer,
    ) -> Option<Checkpoint> {
        if !path.exists() {
            return None;
        }
        let reject = |why: String| {
            eprintln!("specwise: ignoring checkpoint {path:?}: {why}; starting fresh");
            tr.warn(
                "checkpoint rejected",
                &[
                    ("path", path.display().to_string().into()),
                    ("reason", why.into()),
                ],
            );
            None
        };
        let ck = match Checkpoint::load(path) {
            Ok(ck) => ck,
            Err(e) => return reject(e.to_string()),
        };
        if ck.seed != self.config.seed {
            return reject(format!(
                "checkpoint seed {} does not match configured seed {}",
                ck.seed, self.config.seed
            ));
        }
        if ck.d_f.len() != env.design_space().dim() {
            return reject(format!(
                "checkpoint design has {} parameters, environment has {}",
                ck.d_f.len(),
                env.design_space().dim()
            ));
        }
        if ck.snapshots.is_empty() {
            return reject("checkpoint has no snapshots".to_string());
        }
        let mut attrs: Vec<(&str, specwise_trace::json::TraceValue)> = vec![
            ("path", path.display().to_string().into()),
            ("iteration", ck.iteration.into()),
            ("sim_count", ck.sim_count.into()),
        ];
        // When the checkpoint was written by someone else (a serve peer
        // whose lease expired), name them: this is the takeover record.
        if let Some(previous) = &ck.owner {
            if self.checkpoint_owner.as_deref() != Some(previous.as_str()) {
                attrs.push(("previous_owner", previous.clone().into()));
            }
        }
        tr.event("resumed", &attrs);
        Some(ck)
    }

    /// Writes a checkpoint; a failed write warns and continues (the run
    /// never dies for its life insurance).
    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint<E: Evaluator + ?Sized>(
        &self,
        path: Option<&Path>,
        env: &E,
        iteration: usize,
        d_f: &DVec,
        analysis: &WcResult,
        snapshots: &[IterationSnapshot],
        sim_base: u64,
        phase_base: &[u64; SimPhase::COUNT],
        tr: &Tracer,
    ) {
        if path.is_none() && self.checkpoint_hook.is_none() {
            return;
        }
        let mut phase_sims = env.sim_phase_counts();
        for (total, base) in phase_sims.iter_mut().zip(phase_base) {
            *total += base;
        }
        let ck = Checkpoint {
            version: CHECKPOINT_VERSION,
            seed: self.config.seed,
            iteration,
            d_f: d_f.clone(),
            sim_count: sim_base + env.sim_count(),
            phase_sims,
            analysis: analysis.clone(),
            snapshots: snapshots.to_vec(),
            owner: self.checkpoint_owner.clone(),
        };
        if let Some(hook) = &self.checkpoint_hook {
            hook(&ck);
        }
        let Some(path) = path else { return };
        if let Err(e) = ck.save(path) {
            eprintln!("specwise: checkpoint write to {path:?} failed: {e}; continuing without");
            tr.warn(
                "checkpoint write failed",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    }

    /// Checks the cumulative degradation count against the configured
    /// failure budget; `Some(reason)` aborts the loop.
    fn budget_exceeded<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        events: u64,
        tr: &Tracer,
    ) -> Option<String> {
        let budget = self.config.failure_budget?;
        let exec = env
            .exec_report()
            .map(|r| r.sim_failures + r.panics_caught)
            .unwrap_or(0);
        let total = events + exec;
        if total <= budget {
            return None;
        }
        let reason =
            format!("failure budget exhausted: {total} degradation events (budget {budget})");
        tr.warn(
            "run aborted",
            &[("reason", reason.as_str().into()), ("events", total.into())],
        );
        Some(reason)
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        label: &str,
        d_f: &DVec,
        analysis: &WcResult,
        model: &LinearizedYield,
        tracer: &Tracer,
        sim_base: u64,
    ) -> Result<IterationSnapshot, SpecwiseError> {
        let estimated_yield = model.estimate(d_f)?;
        let bad_per_mille = model.bad_per_mille(d_f)?;
        let mut verified = None;
        let mut verified_tail = None;
        if self.config.verify_samples > 0 {
            match self.config.estimator {
                EstimatorKind::Mc => {
                    let estimator = MonteCarlo {
                        options: McOptions {
                            n_samples: self.config.verify_samples,
                            seed: self.config.seed ^ 0xABCD,
                        },
                    };
                    verified = Some(estimate_yield(&estimator, env, d_f, tracer)?);
                }
                EstimatorKind::MeanShift => {
                    // Shift to the dominant worst-case point: the s_wc of
                    // the spec with the smallest sigma-distance.
                    let shift = analysis
                        .worst_case_points()
                        .iter()
                        .min_by(|a, b| a.beta_wc.total_cmp(&b.beta_wc))
                        .map(|p| p.s_wc.clone())
                        .unwrap_or_else(|| DVec::zeros(env.stat_dim()));
                    let estimator = MeanShiftIs {
                        shift,
                        options: IsOptions {
                            n: self.config.verify_samples,
                            seed: self.config.seed ^ 0xABCD,
                        },
                    };
                    let r = estimate_yield(&estimator, env, d_f, tracer)?;
                    let (yield_low, yield_high) = r.yield_interval();
                    verified_tail = Some(TailVerification {
                        estimator: EstimatorKind::MeanShift,
                        failure_probability: r.failure_probability,
                        yield_value: r.yield_value,
                        yield_low,
                        yield_high,
                        effective_sample_size: r.effective_sample_size,
                        sim_failures: r.sim_failures,
                        degraded: false,
                    });
                }
                EstimatorKind::NormMin => {
                    let estimator = NormMinIs {
                        options: NormMinOptions {
                            n: self.config.verify_samples,
                            seed: self.config.seed ^ 0xABCD,
                            ..NormMinOptions::default()
                        },
                    };
                    let r = estimate_yield(&estimator, env, d_f, tracer)?;
                    let (yield_low, yield_high) = r.yield_interval();
                    verified_tail = Some(TailVerification {
                        estimator: EstimatorKind::NormMin,
                        failure_probability: r.failure_probability,
                        yield_value: r.yield_value,
                        yield_low,
                        yield_high,
                        effective_sample_size: r.effective_sample_size,
                        sim_failures: r.sim_failures,
                        degraded: r.ess_degraded,
                    });
                }
            }
        }
        Ok(IterationSnapshot {
            label: label.to_string(),
            design: d_f.clone(),
            nominal_margins: analysis.nominal_margins().clone(),
            bad_per_mille,
            estimated_yield,
            verified,
            verified_tail,
            wc_points: analysis.worst_case_points().to_vec(),
            sim_count: sim_base + env.sim_count(),
            collapsed: false,
        })
    }
}

/// Degradations recorded in one snapshot: verification samples that failed
/// to simulate (and were counted-and-excluded instead of aborting).
fn snapshot_degradations(snapshot: Option<&IterationSnapshot>) -> u64 {
    let Some(s) = snapshot else { return 0 };
    let mc = s.verified.as_ref().map(|v| v.sim_failures as u64);
    let tail = s.verified_tail.as_ref().map(|v| v.sim_failures as u64);
    mc.or(tail).unwrap_or(0)
}

/// Attaches the end-of-run accounting to the root `run` span: total and
/// per-phase simulation counts (the `SimCounter` attribution), plus the
/// engine counters (cache hits, retries, batches) when the run went through
/// an [`EvalService`](specwise_exec::EvalService).
fn finish_run_span<E: Evaluator + ?Sized>(span: &mut Span, env: &E) {
    if !span.is_enabled() {
        return;
    }
    span.add_count("sims", env.sim_count());
    let adjoint = env.adjoint_solve_count();
    if adjoint > 0 {
        span.add_count("adjoint_solves", adjoint);
        span.add_count("fd_sims_avoided", env.fd_sims_avoided());
    }
    let per_phase = env.sim_phase_counts();
    for phase in SimPhase::ALL {
        let n = per_phase[phase.index()];
        if n > 0 {
            span.add_count(&format!("sims_{}", phase.label().replace(' ', "_")), n);
        }
    }
    if let Some(report) = env.exec_report() {
        span.set_attr("workers", report.workers);
        span.add_count("cache_hits", report.cache_hits);
        span.add_count("cache_misses", report.cache_misses);
        span.add_count("retries", report.retries);
        span.add_count("recovered", report.recovered);
        span.add_count("sim_failures", report.sim_failures);
        span.add_count("panics_caught", report.panics_caught);
        span.add_count("batches", report.batches);
        span.add_count("batch_points", report.batch_points);
    }
}

/// `true` for errors caused by an unsimulatable circuit (as opposed to
/// configuration or dimension errors, which must propagate).
fn is_simulation_failure(e: &specwise_wcd::WcdError) -> bool {
    matches!(e, specwise_wcd::WcdError::Circuit(c) if c.is_simulation_failure())
}

/// Snapshot of a nonfunctional design: NaN margins, every sample bad,
/// zero yield.
fn collapsed_snapshot(
    label: &str,
    d_f: &DVec,
    n_spec: usize,
    mc_samples: usize,
    sim_count: u64,
) -> IterationSnapshot {
    IterationSnapshot {
        label: label.to_string(),
        design: d_f.clone(),
        nominal_margins: DVec::filled(n_spec, f64::NAN),
        bad_per_mille: vec![1000.0; n_spec],
        estimated_yield: YieldEstimate::from_counts(0, mc_samples),
        verified: None,
        verified_tail: None,
        wc_points: Vec::new(),
        sim_count,
        collapsed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_wcd::LinearizationPoint;

    /// A two-spec analytic problem with a feasibility constraint:
    ///
    /// * f0 = d0 − 2 + s0 ≥ 0 — fails at the initial d0 = 1,
    /// * f1 = 6 − d0 + s1 ≥ 0 — caps d0 from above,
    /// * constraint: d0 ≤ 5 (c = 5 − d0).
    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 2.0 + s[0], 6.0 - d[0] + s[1]]))
            .constraints(vec!["c".into()], |d| DVec::from_slice(&[5.0 - d[0]]))
            .build()
            .unwrap()
    }

    fn quick_config() -> OptimizerConfig {
        let mut cfg = OptimizerConfig::default();
        cfg.mc_samples = 4_000;
        cfg.verify_samples = 500;
        cfg.max_iterations = 3;
        cfg
    }

    #[test]
    fn improves_yield_on_analytic_problem() {
        let e = env();
        let trace = YieldOptimizer::new(quick_config()).run(&e).unwrap();
        let y0 = trace
            .initial()
            .verified
            .as_ref()
            .unwrap()
            .yield_estimate
            .value();
        let y1 = trace
            .final_snapshot()
            .verified
            .as_ref()
            .unwrap()
            .yield_estimate
            .value();
        // Initial: P(Z > 1) ≈ 16 %. Optimum (d0 ≈ 4): ≈ 97 %.
        assert!(y0 < 0.25, "initial yield {y0}");
        assert!(y1 > 0.9, "final yield {y1}");
        // The optimizer must respect the true constraint d0 ≤ 5.
        assert!(trace.final_design()[0] <= 5.0 + 1e-9);
    }

    #[test]
    fn trace_has_monotone_sim_counts_and_labels() {
        let e = env();
        let trace = YieldOptimizer::new(quick_config()).run(&e).unwrap();
        assert!(trace.snapshots().len() >= 2);
        assert_eq!(trace.initial().label, "Initial");
        for w in trace.snapshots().windows(2) {
            assert!(w[1].sim_count >= w[0].sim_count);
        }
        assert!(trace.total_sims > 0);
    }

    #[test]
    fn snapshot_fields_consistent() {
        let e = env();
        let trace = YieldOptimizer::new(quick_config()).run(&e).unwrap();
        for s in trace.snapshots() {
            assert_eq!(s.nominal_margins.len(), 2);
            assert_eq!(s.bad_per_mille.len(), 2);
            assert_eq!(s.wc_points.len(), 2);
            assert!((0.0..=1.0).contains(&s.estimated_yield.value()));
        }
    }

    #[test]
    fn nominal_linearization_mode_runs() {
        let e = env();
        let mut cfg = quick_config();
        cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
        let trace = YieldOptimizer::new(cfg).run(&e).unwrap();
        // On this *linear* problem nominal anchoring is as good — the run
        // must simply complete and produce snapshots.
        assert!(!trace.snapshots().is_empty());
    }

    #[test]
    fn unconstrained_mode_can_overshoot() {
        let e = env();
        let mut cfg = quick_config();
        cfg.use_constraints = false;
        let trace = YieldOptimizer::new(cfg).run(&e).unwrap();
        // Without the constraint the search balances the two specs at
        // d0 ≈ 4 anyway (spec f1 caps it) — the run completes and the final
        // design may violate c(d) ≥ 0 … here it does not exceed 10 (box).
        assert!(trace.final_design()[0] <= 10.0);
    }

    #[test]
    fn rejects_bad_config() {
        let e = env();
        let mut cfg = quick_config();
        cfg.mc_samples = 0;
        assert!(YieldOptimizer::new(cfg).run(&e).is_err());
        let mut cfg = quick_config();
        cfg.max_iterations = 0;
        assert!(YieldOptimizer::new(cfg).run(&e).is_err());
    }

    #[test]
    fn run_through_eval_service_matches_bare_env_and_reports() {
        let e = env();
        let trace = YieldOptimizer::new(quick_config()).run(&e).unwrap();
        assert!(trace.exec.is_none(), "bare env has no exec report");
        // The phase attribution must cover every simulation of the run.
        let attributed: u64 = trace.phase_sims.iter().sum();
        assert_eq!(attributed, trace.total_sims);
        // Nothing lands in the unattributed bucket.
        assert_eq!(trace.phase_sims[specwise_ckt::SimPhase::Other.index()], 0);
        for phase in [
            specwise_ckt::SimPhase::Feasibility,
            specwise_ckt::SimPhase::Wcd,
            specwise_ckt::SimPhase::Linearization,
            specwise_ckt::SimPhase::Verification,
        ] {
            assert!(trace.phase_sims[phase.index()] > 0, "no sims in {phase:?}");
        }

        let e2 = env();
        let svc = specwise_exec::EvalService::new(
            &e2,
            specwise_exec::ExecConfig {
                workers: 4,
                cache_capacity: 1024,
                retry: specwise_exec::RetryPolicy::default(),
                min_parallel_batch: 2,
            },
        );
        let t2 = YieldOptimizer::new(quick_config()).run(&svc).unwrap();
        // Identical trajectory and yields through the parallel service.
        assert_eq!(trace.final_design(), t2.final_design());
        assert_eq!(
            trace
                .final_snapshot()
                .verified
                .as_ref()
                .unwrap()
                .yield_estimate,
            t2.final_snapshot()
                .verified
                .as_ref()
                .unwrap()
                .yield_estimate
        );
        let report = t2.exec.expect("EvalService attaches a report");
        assert!(report.cache_hits > 0, "repeated anchors must hit the cache");
        assert!(report.batches > 0, "batched loops must have fanned out");
    }

    fn unique_ckpt(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("specwise-optimizer-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run_bit_for_bit() {
        let e = env();
        let reference = YieldOptimizer::new(quick_config()).run(&e).unwrap();
        assert!(!reference.resumed);

        // "Kill" a checkpointed run after its first iteration…
        let path = unique_ckpt("resume");
        let mut short = quick_config();
        short.max_iterations = 1;
        let e2 = env();
        let partial = YieldOptimizer::new(short)
            .with_checkpoint(&path)
            .run(&e2)
            .unwrap();
        assert_eq!(partial.snapshots().len(), 2);
        assert!(path.exists(), "checkpoint must be on disk");

        // …and resume with the full iteration budget.
        let e3 = env();
        let resumed = YieldOptimizer::new(quick_config())
            .with_checkpoint(&path)
            .run(&e3)
            .unwrap();
        assert!(resumed.resumed);
        assert_eq!(resumed.snapshots().len(), reference.snapshots().len());
        for (a, b) in resumed.snapshots().iter().zip(reference.snapshots()) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.design
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                b.design
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "design at {} must be bit-identical",
                a.label
            );
            assert_eq!(a.estimated_yield, b.estimated_yield);
            assert_eq!(
                a.verified.as_ref().map(|v| v.yield_estimate),
                b.verified.as_ref().map(|v| v.yield_estimate)
            );
            assert_eq!(a.sim_count, b.sim_count, "sim accounting at {}", a.label);
        }
        assert_eq!(resumed.total_sims, reference.total_sims);
        assert_eq!(resumed.phase_sims, reference.phase_sims);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_checkpoint_degrades_to_fresh_run() {
        let path = unique_ckpt("mismatch");
        let e = env();
        let mut cfg = quick_config();
        cfg.seed = 7;
        YieldOptimizer::new(cfg)
            .with_checkpoint(&path)
            .run(&e)
            .unwrap();
        // A different seed must refuse the checkpoint and start fresh
        // (not error, not silently resume a diverging stream).
        let e2 = env();
        let trace = YieldOptimizer::new(quick_config())
            .with_checkpoint(&path)
            .run(&e2)
            .unwrap();
        assert!(!trace.resumed);
        assert_eq!(trace.initial().label, "Initial");
        // Corrupt bytes degrade the same way.
        std::fs::write(&path, "definitely not a checkpoint").unwrap();
        let e3 = env();
        let trace = YieldOptimizer::new(quick_config())
            .with_checkpoint(&path)
            .run(&e3)
            .unwrap();
        assert!(!trace.resumed);
        std::fs::remove_file(&path).unwrap();
    }

    /// Runs a checkpointed quick config against `path` and returns the
    /// trace plus every "checkpoint rejected" journal warning's reason.
    fn run_with_journal(path: &std::path::Path) -> (OptimizationTrace, Vec<String>) {
        let journal = std::sync::Arc::new(specwise_trace::Journal::in_memory());
        let e = env();
        let trace = YieldOptimizer::new(quick_config())
            .with_checkpoint(path)
            .with_tracer(Tracer::new(std::sync::Arc::clone(&journal)))
            .run(&e)
            .unwrap();
        let reasons = journal
            .records()
            .iter()
            .filter_map(|r| match r {
                specwise_trace::Record::Event(ev) if ev.name == "warn" => {
                    let msg = ev.attrs.iter().find(|(k, _)| k == "message")?;
                    let reason = ev.attrs.iter().find(|(k, _)| k == "reason")?;
                    match (&msg.1, &reason.1) {
                        (
                            specwise_trace::TraceValue::Str(m),
                            specwise_trace::TraceValue::Str(why),
                        ) if m == "checkpoint rejected" => Some(why.clone()),
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        (trace, reasons)
    }

    #[test]
    fn future_version_and_corrupt_checkpoints_degrade_to_fresh_with_warning() {
        let path = unique_ckpt("future-version");
        let e = env();
        YieldOptimizer::new(quick_config())
            .with_checkpoint(&path)
            .run(&e)
            .unwrap();

        // Bump the on-disk version to a future layout, as a newer build
        // would write. The loader must degrade to a fresh run and say why
        // in the journal — not abort, not resume garbage.
        let text = std::fs::read_to_string(&path).unwrap();
        let marker = format!("\"version\":{CHECKPOINT_VERSION}");
        assert!(text.contains(&marker), "checkpoint layout changed?");
        let future = CHECKPOINT_VERSION + 41;
        std::fs::write(
            &path,
            text.replacen(&marker, &format!("\"version\":{future}"), 1),
        )
        .unwrap();
        let (trace, reasons) = run_with_journal(&path);
        assert!(!trace.resumed, "future version must not resume");
        assert_eq!(reasons.len(), 1, "warnings: {reasons:?}");
        assert!(
            reasons[0].contains(&future.to_string()) && reasons[0].contains("newer build"),
            "reason: {}",
            reasons[0]
        );

        // A corrupt file takes the same degrade path with its own reason.
        std::fs::write(&path, "definitely not a checkpoint").unwrap();
        let (trace, reasons) = run_with_journal(&path);
        assert!(!trace.resumed, "corrupt file must not resume");
        assert_eq!(reasons.len(), 1, "warnings: {reasons:?}");
        assert!(
            reasons[0].contains("malformed checkpoint"),
            "reason: {}",
            reasons[0]
        );

        // An intact checkpoint still resumes (the happy path is untouched).
        let e2 = env();
        YieldOptimizer::new(quick_config())
            .with_checkpoint(&path)
            .run(&e2)
            .unwrap();
        let (trace, reasons) = run_with_journal(&path);
        assert!(trace.resumed);
        assert!(reasons.is_empty(), "warnings: {reasons:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_hook_observes_every_state_even_without_a_path() {
        let states: std::sync::Arc<std::sync::Mutex<Vec<(usize, usize)>>> =
            std::sync::Arc::default();
        let sink = std::sync::Arc::clone(&states);
        let e = env();
        let trace = YieldOptimizer::new(quick_config())
            .with_checkpoint_hook(move |ck| {
                sink.lock()
                    .unwrap()
                    .push((ck.iteration, ck.snapshots.len()));
            })
            .run(&e)
            .unwrap();
        let states = states.lock().unwrap();
        // One state after the initial analysis, one per completed iteration.
        assert_eq!(states.len(), trace.snapshots().len());
        for (i, (iteration, snaps)) in states.iter().enumerate() {
            assert_eq!(*iteration, i);
            assert_eq!(*snaps, i + 1);
        }
    }

    /// The optimizer test env with a failing corner of the sample space
    /// that only Monte-Carlo verification visits: the worst-case searches
    /// and mirror probes move along one coordinate at a time (the other
    /// stays ≈ 0), so they never enter `s0 > 1.2 ∧ s1 > 1.2`.
    fn flaky_env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 2.0 + s[0], 6.0 - d[0] + s[1]]))
            .constraints(vec!["c".into()], |d| DVec::from_slice(&[5.0 - d[0]]))
            .fail_when_stat(|_, s| s[0] > 1.2 && s[1] > 1.2)
            .build()
            .unwrap()
    }

    #[test]
    fn failure_budget_aborts_with_partial_trace() {
        let mut cfg = quick_config();
        cfg.failure_budget = Some(2);
        let trace = YieldOptimizer::new(cfg).run(&flaky_env()).unwrap();
        let reason = trace.aborted.as_ref().expect("budget must trip");
        assert!(reason.contains("failure budget"), "reason: {reason}");
        // Partial but well-formed: at least the initial snapshot, with its
        // verification interval reflecting the excluded samples.
        assert!(!trace.snapshots().is_empty());
        let v = trace.initial().verified.as_ref().unwrap();
        assert!(v.sim_failures > 2, "got {} failures", v.sim_failures);
        let (lo, hi) = v.yield_interval();
        assert!(hi >= lo);
        // An unlimited budget lets the same degraded run finish.
        let trace = YieldOptimizer::new(quick_config())
            .run(&flaky_env())
            .unwrap();
        assert!(trace.aborted.is_none());
        assert!(trace.snapshots().len() > 1);
    }

    #[test]
    fn verification_disabled_when_zero_samples() {
        let e = env();
        let mut cfg = quick_config();
        cfg.verify_samples = 0;
        let trace = YieldOptimizer::new(cfg).run(&e).unwrap();
        assert!(trace.snapshots().iter().all(|s| s.verified.is_none()));
    }
}
