//! Constrained coordinate search maximizing the linearized yield estimate
//! (paper Eq. 19 and Sec. 5.3).
//!
//! The paper motivates coordinate search over gradient methods because the
//! Monte-Carlo yield estimate is piecewise constant (non-continuous), often
//! exactly 0 over large regions, and strongly non-monotonic (Fig. 5). Each
//! coordinate move scans a grid of candidate values inside the
//! linearized-feasible interval and keeps the best; sweeps repeat until no
//! coordinate improves the estimate.

use specwise_linalg::DVec;
use specwise_stat::YieldEstimate;

use crate::{LinearConstraints, LinearizedYield, SpecwiseError};

/// Options of the coordinate search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinateSearchOptions {
    /// Candidate values per coordinate scan.
    pub grid_points: usize,
    /// Maximum full sweeps over all coordinates.
    pub max_sweeps: usize,
    /// Minimum pass-count improvement to accept a move.
    pub min_gain: usize,
    /// Optional multiplicative trust region around positive coordinates of
    /// the *starting* point: coordinate `k` may only move within
    /// `[d_start[k]/f, d_start[k]·f]` (ignored for non-positive starts).
    /// The paper relies on the sizing rules alone to keep the
    /// linearizations trustworthy; this cap is an extra safety for
    /// environments with loose constraint sets. `None` disables it.
    pub trust_factor: Option<f64>,
}

impl Default for CoordinateSearchOptions {
    fn default() -> Self {
        CoordinateSearchOptions {
            grid_points: 32,
            max_sweeps: 10,
            min_gain: 1,
            trust_factor: None,
        }
    }
}

/// The coordinate-search optimizer over linearized models.
#[derive(Debug, Clone)]
pub struct CoordinateSearch {
    options: CoordinateSearchOptions,
}

impl CoordinateSearch {
    /// Creates a search with the given options.
    pub fn new(options: CoordinateSearchOptions) -> Self {
        CoordinateSearch { options }
    }

    /// Maximizes `Ȳ(d)` starting from `d_start` subject to the linearized
    /// constraints. Returns the best design found and its estimate.
    ///
    /// # Errors
    ///
    /// Returns [`SpecwiseError::InvalidConfig`] for a zero grid and
    /// propagates dimension errors.
    pub fn run(
        &self,
        model: &LinearizedYield,
        constraints: &LinearConstraints,
        d_start: &DVec,
    ) -> Result<(DVec, YieldEstimate), SpecwiseError> {
        if self.options.grid_points < 2 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "grid_points must be >= 2",
            });
        }
        let n_d = d_start.len();
        let mut tracker = model.tracker(d_start)?;
        let mut best = tracker.estimate();

        for _sweep in 0..self.options.max_sweeps {
            let mut improved = false;
            for k in 0..n_d {
                let d_now = tracker.design().clone();
                let Some((mut lo, mut hi)) = constraints.coord_interval(&d_now, k) else {
                    continue;
                };
                if let Some(factor) = self.options.trust_factor {
                    if d_start[k] > 0.0 {
                        lo = lo.max(d_start[k] / factor);
                        hi = hi.min(d_start[k] * factor);
                    }
                }
                if hi - lo <= 0.0 {
                    continue;
                }
                let mut best_val = d_now[k];
                let mut best_here = best;
                for g in 0..self.options.grid_points {
                    let v = lo + (hi - lo) * g as f64 / (self.options.grid_points - 1) as f64;
                    let est = tracker.estimate_coord(k, v);
                    // Accept strictly better pass counts; on ties prefer the
                    // smaller move (stay near the anchor where the linear
                    // model is trustworthy).
                    let gain = est.passed() as isize - best_here.passed() as isize;
                    if gain >= self.options.min_gain as isize
                        || (gain >= 0 && (v - d_now[k]).abs() < (best_val - d_now[k]).abs() - 1e-15)
                    {
                        best_here = est;
                        best_val = v;
                    }
                }
                if best_val != d_now[k] {
                    tracker.set_coord(k, best_val);
                    if best_here.passed() > best.passed() {
                        improved = true;
                    }
                    best = best_here;
                }
            }
            if !improved {
                break;
            }
        }
        Ok((tracker.design().clone(), best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::OperatingPoint;
    use specwise_linalg::DMat;
    use specwise_wcd::SpecLinearization;

    fn lin(spec: usize, anchor: f64, grad_s: &[f64], grad_d: &[f64]) -> SpecLinearization {
        SpecLinearization {
            spec,
            mirrored: false,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::zeros(grad_s.len()),
            d_f: DVec::zeros(grad_d.len()),
            margin_at_anchor: anchor,
            grad_s: DVec::from_slice(grad_s),
            grad_d: DVec::from_slice(grad_d),
        }
    }

    fn box_constraints(n: usize, lo: f64, hi: f64) -> LinearConstraints {
        LinearConstraints::box_only(&DVec::zeros(n), DVec::filled(n, lo), DVec::filled(n, hi))
    }

    #[test]
    fn maximizes_single_margin() {
        // margin = s0 + d0 over d0 ∈ [−2, 2]: best at d0 = 2.
        let ly = LinearizedYield::new(vec![lin(0, 0.0, &[1.0], &[1.0])], 1, 20_000, 5).unwrap();
        let cs = CoordinateSearch::new(CoordinateSearchOptions::default());
        let (d, y) = cs
            .run(&ly, &box_constraints(1, -2.0, 2.0), &DVec::zeros(1))
            .unwrap();
        assert!((d[0] - 2.0).abs() < 1e-9, "d = {d}");
        assert!(y.value() > 0.97);
    }

    #[test]
    fn balances_competing_specs() {
        // Spec 0: margin = s0 + d0; spec 1: margin = s1 − d0.
        // Symmetric → optimum at d0 = 0 with Ȳ ≈ Φ(0)… the joint optimum of
        // P(Z1 > −d)·P(Z2 > d) is at d = 0.
        let ly = LinearizedYield::new(
            vec![
                lin(0, 1.0, &[1.0, 0.0], &[1.0]),
                lin(1, 1.0, &[0.0, 1.0], &[-1.0]),
            ],
            2,
            40_000,
            7,
        )
        .unwrap();
        let cs = CoordinateSearch::new(CoordinateSearchOptions::default());
        let (d, _) = cs
            .run(&ly, &box_constraints(1, -3.0, 3.0), &DVec::zeros(1))
            .unwrap();
        assert!(d[0].abs() < 0.35, "d = {d}");
    }

    #[test]
    fn respects_linear_constraints() {
        // Yield increases with d0, but constraint caps d0 ≤ 1.
        let ly = LinearizedYield::new(vec![lin(0, 0.0, &[1.0], &[1.0])], 1, 10_000, 3).unwrap();
        let lc = LinearConstraints::new(
            DVec::from_slice(&[1.0]),
            DMat::from_rows(&[&[-1.0]]).unwrap(),
            DVec::zeros(1),
            DVec::filled(1, -5.0),
            DVec::filled(1, 5.0),
        )
        .unwrap();
        let cs = CoordinateSearch::new(CoordinateSearchOptions::default());
        let (d, _) = cs.run(&ly, &lc, &DVec::zeros(1)).unwrap();
        assert!(d[0] <= 1.0 + 1e-9, "d = {d}");
        assert!(d[0] > 0.9, "should push to the constraint boundary: {d}");
    }

    #[test]
    fn two_dimensional_search_converges() {
        // margins: s0 + (d0 − 1), s1 + (d1 + 2)·0.5 — optimum at corner-ish
        // (max both shifts): d0 → hi, d1 → hi.
        let ly = LinearizedYield::new(
            vec![
                lin(0, -1.0, &[1.0, 0.0], &[1.0, 0.0]),
                lin(1, 1.0, &[0.0, 1.0], &[0.0, 0.5]),
            ],
            2,
            20_000,
            9,
        )
        .unwrap();
        let cs = CoordinateSearch::new(CoordinateSearchOptions::default());
        let (d, y) = cs
            .run(&ly, &box_constraints(2, -3.0, 3.0), &DVec::zeros(2))
            .unwrap();
        assert!((d[0] - 3.0).abs() < 1e-9);
        assert!((d[1] - 3.0).abs() < 1e-9);
        // Joint pass probability ≈ Φ(2)·Φ(2.5) ≈ 0.971.
        assert!(y.value() > 0.95, "y = {}", y.value());
    }

    #[test]
    fn zero_yield_plateau_does_not_move() {
        // Hopelessly violated spec that d cannot fix (zero design gradient):
        // the search must terminate and return the start.
        let ly = LinearizedYield::new(vec![lin(0, -100.0, &[1.0], &[0.0])], 1, 5_000, 1).unwrap();
        let cs = CoordinateSearch::new(CoordinateSearchOptions::default());
        let (d, y) = cs
            .run(&ly, &box_constraints(1, -2.0, 2.0), &DVec::zeros(1))
            .unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(y.passed(), 0);
    }

    #[test]
    fn rejects_degenerate_grid() {
        let ly = LinearizedYield::new(vec![lin(0, 0.0, &[1.0], &[1.0])], 1, 100, 1).unwrap();
        let mut opts = CoordinateSearchOptions::default();
        opts.grid_points = 1;
        let cs = CoordinateSearch::new(opts);
        assert!(cs
            .run(&ly, &box_constraints(1, -1.0, 1.0), &DVec::zeros(1))
            .is_err());
    }
}
