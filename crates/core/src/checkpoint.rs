//! Versioned checkpoint/resume state for [`YieldOptimizer`] runs.
//!
//! A production run is thousands of simulator calls; when the job dies
//! mid-flight the work up to the last completed iteration should not be
//! lost. [`Checkpoint`] captures everything the optimizer needs to
//! continue — the current feasible design, the completed iteration count
//! (which pins the per-iteration RNG streams), the worst-case analysis
//! (points + spec-wise linear models) and every snapshot taken so far —
//! and serializes it with the `specwise-trace` JSON writer, whose float
//! formatting round-trips `f64` values bit-exactly. That makes
//! "resume reproduces the uninterrupted run bit-for-bit" a provable
//! property (asserted by the workspace `resume` integration test).
//!
//! Files are written atomically (temp file + rename), so a crash during a
//! checkpoint write leaves the previous checkpoint intact, and carry a
//! [`version`](Checkpoint::version) field so future layout changes can be
//! detected instead of misparsed.
//!
//! [`YieldOptimizer`]: crate::YieldOptimizer

use std::fmt::{self, Write as _};
use std::fs;
use std::io::Write as _;
use std::path::Path;

use specwise_ckt::{OperatingPoint, SimPhase};
use specwise_linalg::DVec;
use specwise_stat::{RunningMoments, YieldEstimate};
use specwise_trace::json::{parse, write_f64, write_json_string, Json};
use specwise_wcd::{SpecLinearization, WcResult, WorstCasePoint};

use crate::{EstimatorKind, IterationSnapshot, McVerification, TailVerification};

/// Name of the environment variable holding the checkpoint path: set
/// `SPECWISE_CHECKPOINT=run.ckpt` and [`crate::YieldOptimizer::run`] will
/// write a checkpoint there after every completed iteration — and resume
/// from it when the file already exists.
pub const CHECKPOINT_ENV_VAR: &str = "SPECWISE_CHECKPOINT";

/// Current checkpoint layout version. Bump on any incompatible change;
/// [`Checkpoint::load`] rejects files with a different version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Serialized optimizer state at an iteration boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_VERSION`] when produced by this build).
    pub version: u64,
    /// RNG seed of the run that wrote the checkpoint. Resuming under a
    /// different configured seed is refused — the streams would diverge.
    pub seed: u64,
    /// Completed optimizer iterations (0 = only the initial analysis).
    /// Together with `seed` this pins every derived RNG stream position:
    /// the iteration-`k` yield model draws from `seed + k` and the
    /// verification from `seed ^ 0xABCD`.
    pub iteration: usize,
    /// The current feasible design point.
    pub d_f: DVec,
    /// Cumulative simulator calls at checkpoint time (resumed runs add
    /// this base so snapshot effort counts continue seamlessly).
    pub sim_count: u64,
    /// Per-phase simulator calls at checkpoint time.
    pub phase_sims: [u64; SimPhase::COUNT],
    /// The worst-case analysis at `d_f` (points + linear models).
    pub analysis: WcResult,
    /// Every snapshot recorded so far, `"Initial"` first.
    pub snapshots: Vec<IterationSnapshot>,
    /// Identity of the process that wrote the checkpoint, when one was
    /// configured ([`crate::YieldOptimizer::with_checkpoint_owner`]).
    /// `specwise-serve` stamps its daemon owner id here so a peer that
    /// steals an expired job lease can report whose work it resumed.
    /// Absent in older checkpoints; never affects resume eligibility.
    pub owner: Option<String>,
}

/// Error loading or saving a [`Checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open, write, rename).
    Io(std::io::Error),
    /// The file is not a valid checkpoint (parse failure or missing
    /// fields).
    Malformed(String),
    /// The file has an incompatible layout version — e.g. written by a
    /// *newer* build. Loaders treat this exactly like a corrupt file:
    /// degrade to a fresh run with a warning, never abort.
    Version {
        /// Version found in the file.
        found: u64,
        /// Version this build reads and writes ([`CHECKPOINT_VERSION`]).
        current: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Version { found, current } => {
                let hint = if *found > *current {
                    " — written by a newer build"
                } else {
                    ""
                };
                write!(
                    f,
                    "incompatible checkpoint version {found} (this build reads {current}{hint})"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Writes the checkpoint to `path` atomically: the state is serialized
    /// into a sibling temp file, synced, and renamed over `path`, so a
    /// crash mid-write can never leave a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure,
    /// [`CheckpointError::Version`] on a layout mismatch, and
    /// [`CheckpointError::Malformed`] when the file does not parse.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = fs::read_to_string(path)?;
        Checkpoint::from_json_str(&text)
    }

    /// Serializes the checkpoint to its JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"format\":\"specwise-checkpoint\",\"version\":");
        let _ = write!(out, "{}", self.version);
        let _ = write!(out, ",\"seed\":{}", self.seed);
        // Written only when present, so ownerless checkpoints keep the
        // exact pre-leasing byte shape (and old readers keep parsing).
        if let Some(owner) = &self.owner {
            out.push_str(",\"owner\":");
            write_json_string(&mut out, owner);
        }
        let _ = write!(out, ",\"iteration\":{}", self.iteration);
        let _ = write!(out, ",\"sim_count\":{}", self.sim_count);
        out.push_str(",\"phase_sims\":[");
        for (i, n) in self.phase_sims.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push(']');
        out.push_str(",\"d_f\":");
        write_floats(&mut out, self.d_f.as_slice());
        out.push_str(",\"analysis\":");
        write_analysis(&mut out, &self.analysis);
        out.push_str(",\"snapshots\":[");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_snapshot(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Parses a checkpoint from its JSON document (inverse of
    /// [`Checkpoint::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Version`] on a layout mismatch and
    /// [`CheckpointError::Malformed`] otherwise.
    pub fn from_json_str(text: &str) -> Result<Checkpoint, CheckpointError> {
        let json = parse(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if json.get("format").and_then(Json::as_str) != Some("specwise-checkpoint") {
            return Err(CheckpointError::Malformed(
                "missing \"format\": \"specwise-checkpoint\" marker".to_string(),
            ));
        }
        let version = get_u64(&json, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: version,
                current: CHECKPOINT_VERSION,
            });
        }
        let phase_json = get_arr(&json, "phase_sims")?;
        if phase_json.len() != SimPhase::COUNT {
            return Err(malformed("phase_sims length"));
        }
        let mut phase_sims = [0u64; SimPhase::COUNT];
        for (slot, j) in phase_sims.iter_mut().zip(phase_json) {
            *slot = j.as_u64().ok_or_else(|| malformed("phase_sims entry"))?;
        }
        let snapshots = get_arr(&json, "snapshots")?
            .iter()
            .map(read_snapshot)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            version,
            seed: get_u64(&json, "seed")?,
            iteration: get_u64(&json, "iteration")? as usize,
            d_f: get_dvec(&json, "d_f")?,
            sim_count: get_u64(&json, "sim_count")?,
            phase_sims,
            analysis: read_analysis(json.get("analysis").ok_or_else(|| malformed("analysis"))?)?,
            snapshots,
            owner: json.get("owner").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Reads just the resume-relevant header of a checkpoint file — who
    /// wrote it and how far it got — without materializing the analysis
    /// and snapshot payload.
    ///
    /// This is what a `specwise-serve` daemon calls before stealing an
    /// expired job lease: the metadata says whose work it is about to
    /// resume and from which iteration, which goes into the job journal
    /// as the takeover event.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure and
    /// [`CheckpointError::Malformed`] when the file is not a checkpoint
    /// document (a version mismatch is *not* an error here: the metadata
    /// of a foreign-version file is still reportable).
    pub fn peek(path: &Path) -> Result<CheckpointMeta, CheckpointError> {
        let text = fs::read_to_string(path)?;
        let json = parse(&text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if json.get("format").and_then(Json::as_str) != Some("specwise-checkpoint") {
            return Err(CheckpointError::Malformed(
                "missing \"format\": \"specwise-checkpoint\" marker".to_string(),
            ));
        }
        Ok(CheckpointMeta {
            version: get_u64(&json, "version")?,
            seed: get_u64(&json, "seed")?,
            iteration: get_u64(&json, "iteration")? as usize,
            sim_count: get_u64(&json, "sim_count")?,
            owner: json.get("owner").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// Checkpoint header returned by [`Checkpoint::peek`]: enough to report
/// on a checkpoint (owner, progress) without parsing its full payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Layout version found in the file.
    pub version: u64,
    /// RNG seed of the run that wrote the checkpoint.
    pub seed: u64,
    /// Completed optimizer iterations at checkpoint time.
    pub iteration: usize,
    /// Cumulative simulator calls at checkpoint time.
    pub sim_count: u64,
    /// Identity of the writing process, when stamped.
    pub owner: Option<String>,
}

// ---------------------------------------------------------------------------
// Writers. All floats go through `specwise_trace::json::write_f64`, whose
// shortest-round-trip formatting reproduces every finite f64 bit-exactly.

fn write_floats(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *x);
    }
    out.push(']');
}

fn write_theta(out: &mut String, theta: &OperatingPoint) {
    write_floats(out, &[theta.temp_c, theta.vdd]);
}

fn write_wc_point(out: &mut String, wc: &WorstCasePoint) {
    let _ = write!(out, "{{\"spec\":{}", wc.spec);
    out.push_str(",\"theta_wc\":");
    write_theta(out, &wc.theta_wc);
    out.push_str(",\"s_wc\":");
    write_floats(out, wc.s_wc.as_slice());
    out.push_str(",\"beta_wc\":");
    write_f64(out, wc.beta_wc);
    out.push_str(",\"nominal_margin\":");
    write_f64(out, wc.nominal_margin);
    out.push_str(",\"margin_at_wc\":");
    write_f64(out, wc.margin_at_wc);
    out.push_str(",\"grad_s\":");
    write_floats(out, wc.grad_s.as_slice());
    let _ = write!(out, ",\"converged\":{}}}", wc.converged);
}

fn write_linearization(out: &mut String, lin: &SpecLinearization) {
    let _ = write!(out, "{{\"spec\":{},\"mirrored\":{}", lin.spec, lin.mirrored);
    out.push_str(",\"theta_wc\":");
    write_theta(out, &lin.theta_wc);
    out.push_str(",\"s_wc\":");
    write_floats(out, lin.s_wc.as_slice());
    out.push_str(",\"d_f\":");
    write_floats(out, lin.d_f.as_slice());
    out.push_str(",\"margin_at_anchor\":");
    write_f64(out, lin.margin_at_anchor);
    out.push_str(",\"grad_s\":");
    write_floats(out, lin.grad_s.as_slice());
    out.push_str(",\"grad_d\":");
    write_floats(out, lin.grad_d.as_slice());
    out.push('}');
}

fn write_analysis(out: &mut String, a: &WcResult) {
    out.push_str("{\"d_f\":");
    write_floats(out, a.design().as_slice());
    out.push_str(",\"nominal_margins\":");
    write_floats(out, a.nominal_margins().as_slice());
    out.push_str(",\"fallbacks\":[");
    for (i, spec) in a.fallback_specs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{spec}");
    }
    out.push(']');
    out.push_str(",\"wc_points\":[");
    for (i, wc) in a.worst_case_points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_wc_point(out, wc);
    }
    out.push(']');
    out.push_str(",\"linearizations\":[");
    for (i, lin) in a.linearizations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_linearization(out, lin);
    }
    out.push_str("]}");
}

fn write_verification(out: &mut String, v: &McVerification) {
    let _ = write!(
        out,
        "{{\"passed\":{},\"total\":{}",
        v.yield_estimate.passed(),
        v.yield_estimate.total()
    );
    out.push_str(",\"per_spec_bad\":[");
    for (i, b) in v.per_spec_bad.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push(']');
    out.push_str(",\"moments\":[");
    for (i, m) in v.per_spec_margins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (count, mean, m2, min, max) = m.raw();
        let _ = write!(out, "[{count},");
        write_f64(out, mean);
        out.push(',');
        write_f64(out, m2);
        out.push(',');
        // The empty accumulator's infinite min/max cannot survive JSON;
        // `RunningMoments::from_raw` ignores them when count == 0.
        write_f64(out, if count == 0 { 0.0 } else { min });
        out.push(',');
        write_f64(out, if count == 0 { 0.0 } else { max });
        out.push(']');
    }
    out.push(']');
    out.push_str(",\"theta_wc\":[");
    for (i, t) in v.theta_wc.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_theta(out, t);
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"sim_failures\":{},\"degraded_samples\":{}}}",
        v.sim_failures, v.degraded_samples
    );
}

fn write_snapshot(out: &mut String, s: &IterationSnapshot) {
    out.push_str("{\"label\":");
    write_json_string(out, &s.label);
    out.push_str(",\"design\":");
    write_floats(out, s.design.as_slice());
    out.push_str(",\"nominal_margins\":");
    write_floats(out, s.nominal_margins.as_slice());
    out.push_str(",\"bad_per_mille\":");
    write_floats(out, &s.bad_per_mille);
    let _ = write!(
        out,
        ",\"passed\":{},\"total\":{}",
        s.estimated_yield.passed(),
        s.estimated_yield.total()
    );
    out.push_str(",\"verified\":");
    match &s.verified {
        Some(v) => write_verification(out, v),
        None => out.push_str("null"),
    }
    // Written only when present, so MC-only checkpoints keep the exact
    // pre-estimator-layer byte shape (and old readers keep parsing them).
    if let Some(t) = &s.verified_tail {
        out.push_str(",\"verified_tail\":{\"estimator\":");
        write_json_string(out, t.estimator.as_str());
        out.push_str(",\"failure_probability\":");
        write_f64(out, t.failure_probability);
        out.push_str(",\"yield_value\":");
        write_f64(out, t.yield_value);
        out.push_str(",\"yield_low\":");
        write_f64(out, t.yield_low);
        out.push_str(",\"yield_high\":");
        write_f64(out, t.yield_high);
        out.push_str(",\"ess\":");
        write_f64(out, t.effective_sample_size);
        let _ = write!(
            out,
            ",\"sim_failures\":{},\"degraded\":{}}}",
            t.sim_failures, t.degraded
        );
    }
    out.push_str(",\"wc_points\":[");
    for (i, wc) in s.wc_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_wc_point(out, wc);
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"sim_count\":{},\"collapsed\":{}}}",
        s.sim_count, s.collapsed
    );
}

// ---------------------------------------------------------------------------
// Readers.

fn malformed(what: &str) -> CheckpointError {
    CheckpointError::Malformed(format!("missing or invalid field {what:?}"))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, CheckpointError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed(key))
}

fn get_f64(j: &Json, key: &str) -> Result<f64, CheckpointError> {
    match j.get(key) {
        Some(Json::Num(x)) => Ok(*x),
        // `write_f64` serializes non-finite floats as null.
        Some(Json::Null) => Ok(f64::NAN),
        _ => Err(malformed(key)),
    }
}

fn get_bool(j: &Json, key: &str) -> Result<bool, CheckpointError> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(malformed(key)),
    }
}

fn get_str(j: &Json, key: &str) -> Result<String, CheckpointError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| malformed(key))
}

fn get_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed(key))
}

fn floats(items: &[Json], what: &str) -> Result<Vec<f64>, CheckpointError> {
    items
        .iter()
        .map(|x| match x {
            Json::Num(v) => Ok(*v),
            Json::Null => Ok(f64::NAN),
            _ => Err(malformed(what)),
        })
        .collect()
}

fn get_floats(j: &Json, key: &str) -> Result<Vec<f64>, CheckpointError> {
    floats(get_arr(j, key)?, key)
}

fn get_dvec(j: &Json, key: &str) -> Result<DVec, CheckpointError> {
    Ok(DVec::from_slice(&get_floats(j, key)?))
}

fn get_theta(j: &Json, key: &str) -> Result<OperatingPoint, CheckpointError> {
    let pair = get_floats(j, key)?;
    if pair.len() != 2 {
        return Err(malformed(key));
    }
    Ok(OperatingPoint::new(pair[0], pair[1]))
}

fn read_wc_point(j: &Json) -> Result<WorstCasePoint, CheckpointError> {
    Ok(WorstCasePoint {
        spec: get_u64(j, "spec")? as usize,
        theta_wc: get_theta(j, "theta_wc")?,
        s_wc: get_dvec(j, "s_wc")?,
        beta_wc: get_f64(j, "beta_wc")?,
        nominal_margin: get_f64(j, "nominal_margin")?,
        margin_at_wc: get_f64(j, "margin_at_wc")?,
        grad_s: get_dvec(j, "grad_s")?,
        converged: get_bool(j, "converged")?,
    })
}

fn read_linearization(j: &Json) -> Result<SpecLinearization, CheckpointError> {
    Ok(SpecLinearization {
        spec: get_u64(j, "spec")? as usize,
        mirrored: get_bool(j, "mirrored")?,
        theta_wc: get_theta(j, "theta_wc")?,
        s_wc: get_dvec(j, "s_wc")?,
        d_f: get_dvec(j, "d_f")?,
        margin_at_anchor: get_f64(j, "margin_at_anchor")?,
        grad_s: get_dvec(j, "grad_s")?,
        grad_d: get_dvec(j, "grad_d")?,
    })
}

fn read_analysis(j: &Json) -> Result<WcResult, CheckpointError> {
    let wc_points = get_arr(j, "wc_points")?
        .iter()
        .map(read_wc_point)
        .collect::<Result<Vec<_>, _>>()?;
    let linearizations = get_arr(j, "linearizations")?
        .iter()
        .map(read_linearization)
        .collect::<Result<Vec<_>, _>>()?;
    let fallbacks = get_arr(j, "fallbacks")?
        .iter()
        .map(|x| x.as_u64().map(|n| n as usize))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| malformed("fallbacks"))?;
    Ok(WcResult::from_parts(
        get_dvec(j, "d_f")?,
        wc_points,
        linearizations,
        get_dvec(j, "nominal_margins")?,
        fallbacks,
    ))
}

fn read_verification(j: &Json) -> Result<McVerification, CheckpointError> {
    let per_spec_bad = get_arr(j, "per_spec_bad")?
        .iter()
        .map(|x| x.as_u64().map(|n| n as usize))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| malformed("per_spec_bad"))?;
    let per_spec_margins = get_arr(j, "moments")?
        .iter()
        .map(|m| {
            let raw = floats(m.as_arr()?, "moments").ok()?;
            if raw.len() != 5 {
                return None;
            }
            Some(RunningMoments::from_raw(
                raw[0] as u64,
                raw[1],
                raw[2],
                raw[3],
                raw[4],
            ))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| malformed("moments"))?;
    let theta_wc = get_arr(j, "theta_wc")?
        .iter()
        .map(|t| {
            let pair = t.as_arr()?;
            match pair {
                [Json::Num(temp), Json::Num(vdd)] => Some(OperatingPoint::new(*temp, *vdd)),
                _ => None,
            }
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| malformed("theta_wc"))?;
    let passed = get_u64(j, "passed")? as usize;
    let total = get_u64(j, "total")? as usize;
    if total == 0 || passed > total {
        return Err(malformed("passed/total"));
    }
    Ok(McVerification {
        yield_estimate: YieldEstimate::from_counts(passed, total),
        per_spec_bad,
        per_spec_margins,
        theta_wc,
        sim_failures: get_u64(j, "sim_failures")? as usize,
        degraded_samples: get_u64(j, "degraded_samples")? as usize,
    })
}

fn read_snapshot(j: &Json) -> Result<IterationSnapshot, CheckpointError> {
    let passed = get_u64(j, "passed")? as usize;
    let total = get_u64(j, "total")? as usize;
    if total == 0 || passed > total {
        return Err(malformed("passed/total"));
    }
    let verified = match j.get("verified") {
        Some(Json::Null) | None => None,
        Some(v) => Some(read_verification(v)?),
    };
    // Optional field: absent in checkpoints written before the estimator
    // layer (and in every MC-only run).
    let verified_tail = match j.get("verified_tail") {
        Some(Json::Null) | None => None,
        Some(t) => Some(TailVerification {
            estimator: get_str(t, "estimator")?
                .parse::<EstimatorKind>()
                .map_err(|_| malformed("verified_tail.estimator"))?,
            failure_probability: get_f64(t, "failure_probability")?,
            yield_value: get_f64(t, "yield_value")?,
            yield_low: get_f64(t, "yield_low")?,
            yield_high: get_f64(t, "yield_high")?,
            effective_sample_size: get_f64(t, "ess")?,
            sim_failures: get_u64(t, "sim_failures")? as usize,
            degraded: get_bool(t, "degraded")?,
        }),
    };
    Ok(IterationSnapshot {
        label: get_str(j, "label")?,
        design: get_dvec(j, "design")?,
        nominal_margins: get_dvec(j, "nominal_margins")?,
        bad_per_mille: get_floats(j, "bad_per_mille")?,
        estimated_yield: YieldEstimate::from_counts(passed, total),
        verified,
        verified_tail,
        wc_points: get_arr(j, "wc_points")?
            .iter()
            .map(read_wc_point)
            .collect::<Result<Vec<_>, _>>()?,
        sim_count: get_u64(j, "sim_count")?,
        collapsed: get_bool(j, "collapsed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let wc = WorstCasePoint {
            spec: 0,
            theta_wc: OperatingPoint::new(125.0, 2.97),
            s_wc: DVec::from_slice(&[0.123456789012345, -1.5]),
            beta_wc: 1.9412354263456,
            nominal_margin: 0.3333333333333333,
            margin_at_wc: -1.25e-7,
            grad_s: DVec::from_slice(&[0.7172356811865476, -0.1]),
            converged: true,
        };
        let lin = SpecLinearization {
            spec: 0,
            mirrored: false,
            theta_wc: OperatingPoint::new(125.0, 2.97),
            s_wc: wc.s_wc.clone(),
            d_f: DVec::from_slice(&[3.0, 4.25]),
            margin_at_anchor: -1.25e-7,
            grad_s: wc.grad_s.clone(),
            grad_d: DVec::from_slice(&[0.5, 2.0e-3]),
        };
        let verified = McVerification {
            yield_estimate: YieldEstimate::from_counts(271, 300),
            per_spec_bad: vec![29],
            per_spec_margins: vec![[0.5, -0.25, 1.75, 0.1234].into_iter().collect()],
            theta_wc: vec![OperatingPoint::new(125.0, 2.97)],
            sim_failures: 3,
            degraded_samples: 2,
        };
        let snapshot = IterationSnapshot {
            label: "1st Iter.".to_string(),
            design: DVec::from_slice(&[3.0, 4.25]),
            nominal_margins: DVec::from_slice(&[0.3333333333333333]),
            bad_per_mille: vec![96.66666666666667],
            estimated_yield: YieldEstimate::from_counts(9033, 10000),
            verified: Some(verified),
            verified_tail: Some(TailVerification {
                estimator: EstimatorKind::NormMin,
                failure_probability: 7.933281519928365e-7,
                yield_value: 0.9999992066718481,
                yield_low: 0.9999992066718481,
                yield_high: 1.0,
                effective_sample_size: 123.456,
                sim_failures: 1,
                degraded: false,
            }),
            wc_points: vec![wc.clone()],
            sim_count: 1234,
            collapsed: false,
        };
        Checkpoint {
            version: CHECKPOINT_VERSION,
            seed: 2001,
            iteration: 1,
            d_f: DVec::from_slice(&[3.0, 4.25]),
            sim_count: 1234,
            phase_sims: [10, 20, 30, 40, 50, 0][..SimPhase::COUNT]
                .try_into()
                .unwrap(),
            analysis: WcResult::from_parts(
                DVec::from_slice(&[3.0, 4.25]),
                vec![wc],
                vec![lin],
                DVec::from_slice(&[0.3333333333333333]),
                vec![0],
            ),
            snapshots: vec![snapshot],
            owner: None,
        }
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let ck = sample_checkpoint();
        let text = ck.to_json();
        let back = Checkpoint::from_json_str(&text).unwrap();
        assert_eq!(back.version, ck.version);
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.iteration, ck.iteration);
        assert_eq!(back.sim_count, ck.sim_count);
        assert_eq!(back.phase_sims, ck.phase_sims);
        assert_eq!(bits(back.d_f.as_slice()), bits(ck.d_f.as_slice()));
        let (a, b) = (&back.analysis, &ck.analysis);
        assert_eq!(a.fallback_specs(), b.fallback_specs());
        for (x, y) in a.worst_case_points().iter().zip(b.worst_case_points()) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.theta_wc, y.theta_wc);
            assert_eq!(bits(x.s_wc.as_slice()), bits(y.s_wc.as_slice()));
            assert_eq!(x.beta_wc.to_bits(), y.beta_wc.to_bits());
            assert_eq!(x.margin_at_wc.to_bits(), y.margin_at_wc.to_bits());
            assert_eq!(x.converged, y.converged);
        }
        for (x, y) in a.linearizations().iter().zip(b.linearizations()) {
            assert_eq!(bits(x.grad_d.as_slice()), bits(y.grad_d.as_slice()));
            assert_eq!(x.margin_at_anchor.to_bits(), y.margin_at_anchor.to_bits());
        }
        let (s, t) = (&back.snapshots[0], &ck.snapshots[0]);
        assert_eq!(s.label, t.label);
        assert_eq!(s.estimated_yield, t.estimated_yield);
        assert_eq!(bits(&s.bad_per_mille), bits(&t.bad_per_mille));
        let (v, w) = (s.verified.as_ref().unwrap(), t.verified.as_ref().unwrap());
        assert_eq!(v.yield_estimate, w.yield_estimate);
        assert_eq!(v.per_spec_bad, w.per_spec_bad);
        assert_eq!(v.sim_failures, w.sim_failures);
        assert_eq!(v.degraded_samples, w.degraded_samples);
        assert_eq!(
            v.per_spec_margins[0].mean().to_bits(),
            w.per_spec_margins[0].mean().to_bits()
        );
        assert_eq!(
            v.per_spec_margins[0].sample_variance().to_bits(),
            w.per_spec_margins[0].sample_variance().to_bits()
        );
        let (p, q) = (
            s.verified_tail.as_ref().unwrap(),
            t.verified_tail.as_ref().unwrap(),
        );
        assert_eq!(p.estimator, q.estimator);
        assert_eq!(
            p.failure_probability.to_bits(),
            q.failure_probability.to_bits()
        );
        assert_eq!(
            p.effective_sample_size.to_bits(),
            q.effective_sample_size.to_bits()
        );
        assert_eq!(p.degraded, q.degraded);
    }

    #[test]
    fn snapshots_without_verified_tail_still_parse() {
        // Checkpoints written before the estimator layer have no
        // "verified_tail" field; they must load with `None`.
        let mut ck = sample_checkpoint();
        ck.snapshots[0].verified_tail = None;
        let text = ck.to_json();
        assert!(!text.contains("verified_tail"));
        let back = Checkpoint::from_json_str(&text).unwrap();
        assert!(back.snapshots[0].verified_tail.is_none());
    }

    #[test]
    fn owner_round_trips_and_is_absent_by_default() {
        // Ownerless checkpoints keep the pre-leasing byte shape.
        let ck = sample_checkpoint();
        assert!(!ck.to_json().contains("\"owner\""));
        // A stamped owner round-trips, and old readers would skip it.
        let mut ck = sample_checkpoint();
        ck.owner = Some("daemon-a".to_string());
        let back = Checkpoint::from_json_str(&ck.to_json()).unwrap();
        assert_eq!(back.owner.as_deref(), Some("daemon-a"));
    }

    #[test]
    fn peek_reads_the_header_without_the_payload() {
        let dir = std::env::temp_dir().join("specwise-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("peek-{}.ckpt", std::process::id()));
        let mut ck = sample_checkpoint();
        ck.owner = Some("daemon-b".to_string());
        ck.save(&path).unwrap();
        let meta = Checkpoint::peek(&path).unwrap();
        assert_eq!(meta.version, CHECKPOINT_VERSION);
        assert_eq!(meta.seed, ck.seed);
        assert_eq!(meta.iteration, ck.iteration);
        assert_eq!(meta.sim_count, ck.sim_count);
        assert_eq!(meta.owner.as_deref(), Some("daemon-b"));
        // Unlike `load`, a foreign version still peeks: the header is
        // reportable even when the payload is not resumable.
        let mut future = sample_checkpoint();
        future.version = CHECKPOINT_VERSION + 7;
        future.save(&path).unwrap();
        let meta = Checkpoint::peek(&path).unwrap();
        assert_eq!(meta.version, CHECKPOINT_VERSION + 7);
        assert_eq!(meta.owner, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join("specwise-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = sample_checkpoint();
        ck.save(&path).unwrap();
        // The temp file is gone once the rename lands.
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.iteration, ck.iteration);
        assert_eq!(bits(back.d_f.as_slice()), bits(ck.d_f.as_slice()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        assert!(matches!(
            Checkpoint::from_json_str("not json"),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            Checkpoint::from_json_str("{\"format\":\"something-else\",\"version\":1}"),
            Err(CheckpointError::Malformed(_))
        ));
        // A *future* version (written by a newer build) is a typed Version
        // error carrying both versions, so loaders can warn precisely.
        let mut ck = sample_checkpoint();
        ck.version = CHECKPOINT_VERSION + 1;
        let err = Checkpoint::from_json_str(&ck.to_json()).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Version { found, current }
                if found == CHECKPOINT_VERSION + 1 && current == CHECKPOINT_VERSION
        ));
        assert!(err.to_string().contains("newer build"), "{err}");
        // A past version is the same typed error, without the hint.
        let mut ck = sample_checkpoint();
        ck.version = 0;
        let err = Checkpoint::from_json_str(&ck.to_json()).unwrap_err();
        assert!(matches!(err, CheckpointError::Version { found: 0, .. }));
        assert!(!err.to_string().contains("newer build"), "{err}");
    }
}
