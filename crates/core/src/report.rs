//! Text renderings of the paper's result tables.
//!
//! Each function produces a plain-text table matching the structure of the
//! corresponding table in the paper (Tables 1–7); the benchmark harness
//! prints these next to the paper's reference values.

use std::fmt::Write as _;

use specwise_ckt::CircuitEnv;
use specwise_trace::Tracer;

use crate::{IterationSnapshot, MismatchEntry, OptimizationTrace};

/// Renders an optimization trace in the layout of the paper's
/// Tables 1/3/4/6: per snapshot the margins `f − f_b`, the bad samples in
/// the linearized models (‰), and the verified yield `Ỹ`.
pub fn iteration_table(env: &dyn CircuitEnv, trace: &OptimizationTrace) -> String {
    let specs = env.specs();
    let mut out = String::new();
    let _ = write!(out, "{:<14}", "Performance");
    for s in specs {
        let _ = write!(out, "{:>12}", format!("{} [{}]", s.name(), s.unit()));
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<14}", "Spec");
    for s in specs {
        let op = match s.kind() {
            specwise_ckt::SpecKind::LowerBound => ">",
            specwise_ckt::SpecKind::UpperBound => "<",
        };
        let _ = write!(out, "{:>12}", format!("{op} {}", s.bound()));
    }
    let _ = writeln!(out);
    for snap in trace.snapshots() {
        if snap.collapsed {
            let _ = writeln!(
                out,
                "--- {} (collapsed: unsimulatable design) ---",
                snap.label
            );
        } else {
            let _ = writeln!(out, "--- {} ---", snap.label);
        }
        let _ = write!(out, "{:<14}", "f - fb");
        for i in 0..specs.len() {
            let _ = write!(out, "{:>12.3}", snap.nominal_margins[i]);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<14}", "bad [permil]");
        for i in 0..specs.len() {
            let _ = write!(out, "{:>12.1}", snap.bad_per_mille[i]);
        }
        let _ = writeln!(out);
        match &snap.verified {
            Some(mc) => {
                let _ = writeln!(
                    out,
                    "{:<14}{:.1}%",
                    "Y (verified)",
                    mc.yield_estimate.percent()
                );
            }
            None if snap.verified_tail.is_some() => {
                let t = snap.verified_tail.as_ref().unwrap();
                let _ = writeln!(
                    out,
                    "{:<14}{:.4}% ({})",
                    "Y (verified)",
                    100.0 * t.yield_value,
                    t.estimator
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<14}{:.1}% (linearized)",
                    "Y (estimate)",
                    snap.estimated_yield.percent()
                );
            }
        }
    }
    out
}

/// Renders the paper's Table 2: between two snapshots, the relative change
/// of the margin mean `Δµ_f/(µ_f − f_b)` and of the performance standard
/// deviation `Δσ_f/σ_f`, per spec, in percent.
///
/// Returns `None` when either snapshot lacks verification data.
pub fn improvement_table(
    env: &dyn CircuitEnv,
    from: &IterationSnapshot,
    to: &IterationSnapshot,
) -> Option<String> {
    let a = from.verified.as_ref()?;
    let b = to.verified.as_ref()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>16}{:>16}",
        "Performance", "d_mu/(mu-fb) %", "d_sigma/sigma %"
    );
    for (i, s) in env.specs().iter().enumerate() {
        let mu1 = a.per_spec_margins[i].mean();
        let mu2 = b.per_spec_margins[i].mean();
        let s1 = a.per_spec_margins[i].std_dev();
        let s2 = b.per_spec_margins[i].std_dev();
        let dmu = if mu1.abs() > 1e-30 {
            100.0 * (mu2 - mu1) / mu1
        } else {
            f64::NAN
        };
        let dsig = if s1.abs() > 1e-30 {
            100.0 * (s2 - s1) / s1
        } else {
            f64::NAN
        };
        let _ = writeln!(out, "{:<14}{:>16.1}{:>16.1}", s.name(), dmu, dsig);
    }
    Some(out)
}

/// Renders the paper's Table 5: the top mismatch pairs with their measure,
/// resolving statistical-parameter indices to names.
pub fn mismatch_table(env: &dyn CircuitEnv, entries: &[MismatchEntry], top: usize) -> String {
    let names = env.stat_space().names();
    let mut out = String::new();
    let _ = writeln!(out, "{:<10}{:<28}{:>10}", "Spec", "Pair", "m_kl");
    for e in entries.iter().take(top) {
        let spec_name = env.specs()[e.spec].name();
        let k = names.get(e.k).copied().unwrap_or("?");
        let l = names.get(e.l).copied().unwrap_or("?");
        let _ = writeln!(
            out,
            "{:<10}{:<28}{:>10.2}",
            spec_name,
            format!("{k} / {l}"),
            e.measure
        );
    }
    out
}

/// Renders a design-sensitivity table from a worst-case analysis: one row
/// per design parameter, one column per specification, entries are the
/// margin change per 1 % full-range move of the parameter, evaluated at the
/// spec's worst-case anchor — the designer's view of "which knob fixes
/// which spec".
pub fn sensitivity_table(env: &dyn CircuitEnv, analysis: &specwise_wcd::WcResult) -> String {
    let specs = env.specs();
    let params = env.design_space().params();
    let mut out = String::new();
    let _ = write!(out, "{:<10}", "Param");
    for s in specs {
        let _ = write!(out, "{:>12}", s.name());
    }
    let _ = writeln!(out, "    (margin per 1% range move)");
    for (k, p) in params.iter().enumerate() {
        let _ = write!(out, "{:<10}", p.name);
        let step = 0.01 * (p.upper - p.lower);
        for spec in 0..specs.len() {
            let lin = analysis
                .linearizations()
                .iter()
                .find(|l| l.spec == spec && !l.mirrored);
            match lin {
                Some(l) => {
                    let _ = write!(out, "{:>12.4}", l.grad_d[k] * step);
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the paper's Table 7: per-circuit simulation counts and wall
/// times.
pub fn effort_table(rows: &[(String, u64, std::time::Duration)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22}{:>14}{:>18}",
        "Circuit", "# Simulations", "Wall Clock Time"
    );
    for (name, sims, wall) in rows {
        let _ = writeln!(out, "{:<22}{:>14}{:>17.1}s", name, sims, wall.as_secs_f64());
    }
    out
}

/// Renders the extended Table 7 breakdown: per run, the simulation count of
/// every algorithm phase, plus — when the run went through an
/// [`EvalService`](specwise_exec::EvalService) — the cache hit rate and the
/// worker count of the parallel engine.
pub fn effort_breakdown_table(rows: &[(String, &OptimizationTrace)]) -> String {
    use specwise_ckt::SimPhase;
    let mut out = String::new();
    let short = ["Feas", "Wcd", "Lin", "LineS", "Verify", "Other"];
    let _ = write!(out, "{:<22}{:>9}", "Circuit", "Total");
    for label in short {
        let _ = write!(out, "{:>9}", label);
    }
    let _ = writeln!(out, "{:>9}{:>9}{:>10}", "Hit %", "Workers", "Wall");
    for (name, trace) in rows {
        let _ = write!(out, "{:<22}{:>9}", name, trace.total_sims);
        for phase in SimPhase::ALL {
            let _ = write!(out, "{:>9}", trace.phase_sims[phase.index()]);
        }
        match &trace.exec {
            Some(r) => {
                let _ = write!(out, "{:>8.1}%{:>9}", 100.0 * r.hit_rate(), r.workers);
            }
            None => {
                let _ = write!(out, "{:>9}{:>9}", "-", "1");
            }
        }
        let _ = writeln!(out, "{:>9.2}s", trace.wall_time.as_secs_f64());
    }
    out
}

/// Renders the complete end-of-run report the examples print: the
/// iteration table, the final design, the simulation effort line, and —
/// when `tracer` is enabled — the journal path and the per-phase span
/// summary of the run (flushing the journal first so the JSONL file is
/// complete on disk by the time the path is shown).
///
/// When the journal is backed by a file (`SPECWISE_TRACE=run.jsonl`), a
/// `run.jsonl.chrome.json` sidecar in Chrome Trace Event format is written
/// next to it, ready to load in `chrome://tracing` or Perfetto.
pub fn run_report(env: &dyn CircuitEnv, trace: &OptimizationTrace, tracer: &Tracer) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", iteration_table(env, trace));
    let _ = writeln!(out, "final design:");
    for (p, v) in env
        .design_space()
        .params()
        .iter()
        .zip(trace.final_design().iter())
    {
        let _ = writeln!(out, "  {:<4} = {:>8.2} {}", p.name, v, p.unit);
    }
    let _ = writeln!(
        out,
        "\neffort: {} simulator calls, {:.1} s wall clock (cf. paper Table 7)",
        trace.total_sims,
        trace.wall_time.as_secs_f64()
    );
    if trace.adjoint_solves > 0 {
        let _ = writeln!(
            out,
            "adjoint shortcut: {} sensitivity solves on cached factors, \
             {} full simulations avoided",
            trace.adjoint_solves, trace.fd_sims_avoided
        );
    }
    if trace.resumed {
        let _ = writeln!(out, "resumed from checkpoint (effort counts continued)");
    }
    if let Some(reason) = &trace.aborted {
        let _ = writeln!(out, "RUN ABORTED EARLY: {reason}");
        let _ = writeln!(
            out,
            "  (snapshots up to the abort point are reported above)"
        );
    }
    // Which estimator verified the run — mixed-estimator runs must be
    // distinguishable from the logs alone. Tail estimators also report
    // their effective sample size next to the interval.
    if trace.final_snapshot().verified.is_some() {
        let _ = writeln!(out, "estimator: mc");
    }
    if let Some(t) = &trace.final_snapshot().verified_tail {
        let _ = writeln!(
            out,
            "estimator: {} (yield interval [{:.4} %, {:.4} %], ESS {:.1}{})",
            t.estimator,
            100.0 * t.yield_low,
            100.0 * t.yield_high,
            t.effective_sample_size,
            if t.degraded { ", DEGRADED" } else { "" }
        );
    }
    // Verification robustness: surface the degraded-sample yield interval
    // whenever degradation widened it beyond the point estimate.
    if let Some(v) = &trace.final_snapshot().verified {
        let (lo, hi) = v.yield_interval();
        if v.degraded_samples > 0 {
            let _ = writeln!(
                out,
                "verified yield interval: [{:.1} %, {:.1} %] ({} samples excluded after \
                 exhausting retries, {} simulation failures)",
                100.0 * lo,
                100.0 * hi,
                v.degraded_samples,
                v.sim_failures
            );
        }
    }
    if let Some(report) = &trace.exec {
        let _ = writeln!(out, "\n{report}");
    }
    if let Some(journal) = tracer.journal() {
        journal.flush();
        let _ = writeln!(out);
        out.push_str(&journal.summary());
        if let Some(path) = journal.path() {
            let mut chrome = path.as_os_str().to_owned();
            chrome.push(".chrome.json");
            match journal.write_chrome_trace(&chrome) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "chrome trace:  {} (load in chrome://tracing or Perfetto)",
                        std::path::Path::new(&chrome).display()
                    );
                }
                Err(err) => {
                    let _ = writeln!(
                        out,
                        "chrome trace:  export failed ({}): {err}",
                        std::path::Path::new(&chrome).display()
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptimizerConfig, YieldOptimizer};
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_linalg::DVec;

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("gain", "dB", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 2.0 + s[0]]))
            .build()
            .unwrap()
    }

    fn trace() -> (AnalyticEnv, OptimizationTrace) {
        let e = env();
        let mut cfg = OptimizerConfig::default();
        cfg.mc_samples = 2_000;
        cfg.verify_samples = 400;
        let t = YieldOptimizer::new(cfg).run(&e).unwrap();
        (e, t)
    }

    #[test]
    fn iteration_table_contains_rows() {
        let (e, t) = trace();
        let s = iteration_table(&e, &t);
        assert!(s.contains("gain"));
        assert!(s.contains("Initial"));
        assert!(s.contains("f - fb"));
        assert!(s.contains("bad [permil]"));
        assert!(s.contains('%'));
    }

    #[test]
    fn improvement_table_between_snapshots() {
        let (e, t) = trace();
        if t.snapshots().len() >= 2 {
            let s = improvement_table(&e, t.initial(), t.final_snapshot()).unwrap();
            assert!(s.contains("gain"));
            assert!(s.contains("d_mu"));
        }
    }

    #[test]
    fn improvement_table_none_without_verification() {
        let (e, t) = trace();
        let mut s0 = t.initial().clone();
        s0.verified = None;
        assert!(improvement_table(&e, &s0, t.final_snapshot()).is_none());
    }

    #[test]
    fn mismatch_table_resolves_names() {
        let (e, t) = trace();
        let analysis = crate::MismatchAnalysis::new();
        let entries = analysis.rank_all(&t.initial().wc_points, -1.0);
        let s = mismatch_table(&e, &entries, 3);
        assert!(s.contains("m_kl"));
    }

    #[test]
    fn sensitivity_table_shows_design_levers() {
        let e = env();
        let analysis = specwise_wcd::WcAnalysis::new(&e, specwise_wcd::WcOptions::default())
            .run(&DVec::from_slice(&[1.0]))
            .unwrap();
        let s = sensitivity_table(&e, &analysis);
        assert!(s.contains("d0"));
        assert!(s.contains("gain"));
        // margin = d0 − 2 + s0: ∂/∂d0 = 1, so a 1 % move of the [0, 10]
        // range shifts the margin by 0.1.
        assert!(s.contains("0.1000"), "table:\n{s}");
    }

    #[test]
    fn collapsed_snapshots_are_marked() {
        // An environment that stops simulating once the design leaves
        // [0, 2]: the unconstrained optimizer walks into the fail region
        // and must record a collapsed snapshot.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("gain", "dB", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 2.0 + s[0]]))
            .fail_when(|d| d[0] > 2.0)
            .build()
            .unwrap();
        let mut cfg = OptimizerConfig::default();
        cfg.mc_samples = 1_000;
        cfg.verify_samples = 100;
        cfg.use_constraints = false;
        cfg.max_iterations = 1;
        let t = YieldOptimizer::new(cfg).run(&e).unwrap();
        assert!(
            t.final_snapshot().collapsed,
            "optimizer must record the collapse"
        );
        let s = iteration_table(&e, &t);
        assert!(
            s.contains("collapsed"),
            "table must mark the collapsed row:\n{s}"
        );
    }

    #[test]
    fn effort_breakdown_covers_phases_and_engine() {
        let (_, t) = trace();
        let s = effort_breakdown_table(&[("Analytic".to_string(), &t)]);
        assert!(s.contains("Wcd"), "phase columns expected:\n{s}");
        assert!(s.contains("Verify"), "phase columns expected:\n{s}");
        assert!(s.contains("Analytic"));
        // Bare-env run: no cache column value, worker count 1.
        assert!(s.contains('-'));
    }

    #[test]
    fn effort_table_lists_rows() {
        let rows = vec![
            (
                "Folded-Cascode".to_string(),
                689u64,
                std::time::Duration::from_secs(60),
            ),
            (
                "Miller".to_string(),
                627u64,
                std::time::Duration::from_secs(30),
            ),
        ];
        let s = effort_table(&rows);
        assert!(s.contains("689"));
        assert!(s.contains("Miller"));
    }
}
