//! Simulation-based Monte-Carlo yield verification (paper Eqs. 6–7).
//!
//! Each sample is evaluated at the per-spec worst-case operating points;
//! samples sharing a worst-case corner share one simulation, which is the
//! sharing behind the paper's effort bound `N* ≤ N·min(n_spec, 2^dim(Θ))`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{CircuitEnv, OperatingPoint};
use specwise_linalg::DVec;
use specwise_stat::{RunningMoments, StandardNormal, YieldEstimate};
use specwise_wcd::worst_case_corners;

use crate::SpecwiseError;

/// Result of a simulation-based Monte-Carlo verification.
#[derive(Debug, Clone)]
pub struct McVerification {
    /// The verified yield `Ỹ`.
    pub yield_estimate: YieldEstimate,
    /// Per-spec failing sample counts.
    pub per_spec_bad: Vec<usize>,
    /// Per-spec streaming moments of the *margins* over the samples
    /// (mean = `µ_f − f_b`, std-dev = `σ_f`) — the inputs of the paper's
    /// Table 2 improvement decomposition.
    pub per_spec_margins: Vec<RunningMoments>,
    /// The worst-case operating point used for each spec.
    pub theta_wc: Vec<OperatingPoint>,
}

impl McVerification {
    /// Per-spec bad counts in per mille.
    pub fn bad_per_mille(&self) -> Vec<f64> {
        let n = self.yield_estimate.total() as f64;
        self.per_spec_bad.iter().map(|&b| 1000.0 * b as f64 / n).collect()
    }
}

/// Runs a simulation-based Monte-Carlo verification of `n_samples`
/// standardized samples at design `d`.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n_samples == 0`.
pub fn mc_verify(
    env: &dyn CircuitEnv,
    d: &DVec,
    n_samples: usize,
    seed: u64,
) -> Result<McVerification, SpecwiseError> {
    if n_samples == 0 {
        return Err(SpecwiseError::InvalidConfig { reason: "need at least one sample" });
    }
    let n_spec = env.specs().len();

    // Per-spec worst-case corners at the nominal statistical point.
    let corners = worst_case_corners(env, d, &DVec::zeros(env.stat_dim()))?;
    let theta_wc: Vec<OperatingPoint> = corners.iter().map(|(t, _)| *t).collect();

    // Group specs by identical worst-case corner to share simulations.
    let mut groups: Vec<(OperatingPoint, Vec<usize>)> = Vec::new();
    for (i, t) in theta_wc.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == t) {
            Some((_, specs)) => specs.push(i),
            None => groups.push((*t, vec![i])),
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let normal = StandardNormal::new();
    let mut per_spec_bad = vec![0usize; n_spec];
    let mut per_spec_margins = vec![RunningMoments::new(); n_spec];
    let mut passed = 0usize;
    let mut s = DVec::zeros(env.stat_dim());

    for _ in 0..n_samples {
        normal.fill(&mut rng, s.as_mut_slice());
        let mut all_ok = true;
        for (theta, specs) in &groups {
            // A sample whose circuit fails to simulate is a nonfunctional
            // circuit: count it as failing every spec of this group.
            let margins = match env.eval_margins(d, &s, theta) {
                Ok(m) => m,
                Err(specwise_ckt::CktError::Simulation(_)) => {
                    for &i in specs {
                        per_spec_bad[i] += 1;
                    }
                    all_ok = false;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            for &i in specs {
                per_spec_margins[i].push(margins[i]);
                if margins[i] < 0.0 {
                    per_spec_bad[i] += 1;
                    all_ok = false;
                }
            }
        }
        if all_ok {
            passed += 1;
        }
    }

    Ok(McVerification {
        yield_estimate: YieldEstimate::from_counts(passed, n_samples),
        per_spec_bad,
        per_spec_margins,
        theta_wc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new("a", "", -10.0, 10.0, 1.0)]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[d[0] + s[0], 2.0 + s[1]])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn yield_matches_analytic_probability() {
        let e = env();
        // Pass: Z0 > −1 AND Z1 > −2 → Φ(1)·Φ(2) ≈ 0.8413·0.9772 ≈ 0.8222.
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), 20_000, 11).unwrap();
        assert!((v.yield_estimate.value() - 0.8222).abs() < 0.01);
        // Per-spec bad rates: 1 − Φ(1) ≈ 15.9 %, 1 − Φ(2) ≈ 2.3 %.
        let bad = v.bad_per_mille();
        assert!((bad[0] - 158.7).abs() < 12.0, "bad0 = {}", bad[0]);
        assert!((bad[1] - 22.8).abs() < 6.0, "bad1 = {}", bad[1]);
    }

    #[test]
    fn margin_moments_match_distribution() {
        let e = env();
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), 20_000, 5).unwrap();
        // Margin of spec 0 is 1 + Z: mean 1, std 1.
        assert!((v.per_spec_margins[0].mean() - 1.0).abs() < 0.03);
        assert!((v.per_spec_margins[0].std_dev() - 1.0).abs() < 0.03);
        assert!((v.per_spec_margins[1].mean() - 2.0).abs() < 0.03);
    }

    #[test]
    fn shares_simulations_across_specs() {
        let e = env();
        e.reset_sim_count();
        let n = 500;
        let _ = mc_verify(&e, &DVec::from_slice(&[1.0]), n, 1).unwrap();
        // 4 corner sims + N (both specs share one θ_wc since the margins
        // are θ-independent → single group).
        assert_eq!(e.sim_count(), 4 + n as u64);
    }

    #[test]
    fn deterministic_for_seed() {
        let e = env();
        let a = mc_verify(&e, &DVec::from_slice(&[0.5]), 2_000, 42).unwrap();
        let b = mc_verify(&e, &DVec::from_slice(&[0.5]), 2_000, 42).unwrap();
        assert_eq!(a.yield_estimate, b.yield_estimate);
        assert_eq!(a.per_spec_bad, b.per_spec_bad);
    }

    #[test]
    fn rejects_zero_samples() {
        let e = env();
        assert!(mc_verify(&e, &DVec::from_slice(&[1.0]), 0, 1).is_err());
    }
}
