//! Simulation-based Monte-Carlo yield verification (paper Eqs. 6–7).
//!
//! Each sample is evaluated at the per-spec worst-case operating points;
//! samples sharing a worst-case corner share one simulation, which is the
//! sharing behind the paper's effort bound `N* ≤ N·min(n_spec, 2^dim(Θ))`.
//!
//! All samples are drawn up front (in the same RNG order a serial loop
//! would use) and evaluated as one batch per corner group, so running
//! against an [`EvalService`](specwise_exec::EvalService) spreads the
//! simulations over its worker pool without changing any result bit.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{CktError, OperatingPoint};
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_stat::{RunningMoments, StandardNormal, YieldEstimate};
use specwise_trace::{Span, Tracer};

use crate::estimator::{classify_sample, estimate_yield, SampleOutcome, YieldEstimator};
use crate::SpecwiseError;

/// Options of the simulation-based Monte-Carlo verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOptions {
    /// Number of standardized samples (the paper used 300 per snapshot).
    pub n_samples: usize,
    /// RNG seed of the sample draw — explicit so that every run is
    /// reproducible by construction.
    pub seed: u64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            n_samples: 300,
            seed: 2001,
        }
    }
}

/// Result of a simulation-based Monte-Carlo verification.
#[derive(Debug, Clone)]
pub struct McVerification {
    /// The verified yield `Ỹ`.
    pub yield_estimate: YieldEstimate,
    /// Per-spec failing sample counts.
    pub per_spec_bad: Vec<usize>,
    /// Per-spec streaming moments of the *margins* over the samples
    /// (mean = `µ_f − f_b`, std-dev = `σ_f`) — the inputs of the paper's
    /// Table 2 improvement decomposition.
    pub per_spec_margins: Vec<RunningMoments>,
    /// The worst-case operating point used for each spec.
    pub theta_wc: Vec<OperatingPoint>,
    /// Number of sample evaluations that failed to simulate (non-converged
    /// DC solves that survived any retries) or produced non-finite margins.
    /// Such samples are counted as failing every spec of their corner group
    /// instead of aborting the verification.
    pub sim_failures: usize,
    /// Samples that were degraded (simulation failure or non-finite
    /// margins) without any *observed* spec violation. Their true pass/fail
    /// status is unknown; they widen [`McVerification::yield_interval`].
    pub degraded_samples: usize,
}

impl McVerification {
    /// Per-spec bad counts in per mille.
    pub fn bad_per_mille(&self) -> Vec<f64> {
        let n = self.yield_estimate.total() as f64;
        self.per_spec_bad
            .iter()
            .map(|&b| 1000.0 * b as f64 / n)
            .collect()
    }

    /// The yield interval `[low, high]` implied by counting-and-excluding
    /// degraded samples: `low` counts every degraded sample as failing
    /// (this is [`McVerification::yield_estimate`], the conservative
    /// point estimate), `high` counts every degraded sample with no
    /// observed spec violation as passing. With no degradation the
    /// interval collapses to the point estimate.
    pub fn yield_interval(&self) -> (f64, f64) {
        let n = self.yield_estimate.total() as f64;
        let low = self.yield_estimate.value();
        let high = (low + self.degraded_samples as f64 / n).min(1.0);
        (low, high)
    }
}

/// Runs a simulation-based Monte-Carlo verification of `n_samples`
/// standardized samples at design `d`.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n_samples == 0`.
pub fn mc_verify<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    n_samples: usize,
    seed: u64,
) -> Result<McVerification, SpecwiseError> {
    mc_verify_with(env, d, &McOptions { n_samples, seed })
}

/// Runs a simulation-based Monte-Carlo verification with explicit options.
///
/// # Errors
///
/// Propagates evaluation errors; rejects `n_samples == 0`.
pub fn mc_verify_with<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    options: &McOptions,
) -> Result<McVerification, SpecwiseError> {
    estimate_yield(
        &MonteCarlo { options: *options },
        env,
        d,
        &Tracer::disabled(),
    )
}

/// Plain simulation Monte Carlo as a [`YieldEstimator`]: every sample is
/// evaluated in every corner group (the per-spec margin moments need all
/// margins), degraded samples are counted-and-excluded. This is the
/// estimator behind [`mc_verify`]/[`mc_verify_with`]; run it through
/// [`estimate_yield`] to record an `mc_verify` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Sample count and RNG seed.
    pub options: McOptions,
}

/// Accumulator state of [`MonteCarlo`].
#[derive(Debug, Clone)]
pub struct McState {
    per_spec_bad: Vec<usize>,
    per_spec_margins: Vec<RunningMoments>,
    ok: Vec<bool>,
    // A sample observed violating a spec is a true failure; a sample that
    // only ever failed to evaluate might still pass — the split feeds the
    // reported yield interval.
    violated: Vec<bool>,
    degraded: Vec<bool>,
    sim_failures: usize,
}

impl YieldEstimator for MonteCarlo {
    type State = McState;
    type Output = McVerification;

    fn name(&self) -> &'static str {
        "mc"
    }

    fn span_name(&self) -> &'static str {
        "mc_verify"
    }

    fn validate<E: Evaluator + ?Sized>(&self, _env: &E) -> Result<(), SpecwiseError> {
        if self.options.n_samples == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "need at least one sample",
            });
        }
        Ok(())
    }

    fn propose<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        _d: &DVec,
        _theta_wc: &[OperatingPoint],
    ) -> Result<(Vec<DVec>, McState), SpecwiseError> {
        let n_samples = self.options.n_samples;
        // Draw every sample first — one `fill` per sample, exactly the RNG
        // call order of a serial evaluate-as-you-draw loop.
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let normal = StandardNormal::new();
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let mut s = DVec::zeros(env.stat_dim());
            normal.fill(&mut rng, s.as_mut_slice());
            samples.push(s);
        }
        let n_spec = env.specs().len();
        Ok((
            samples,
            McState {
                per_spec_bad: vec![0; n_spec],
                per_spec_margins: vec![RunningMoments::new(); n_spec],
                ok: vec![true; n_samples],
                violated: vec![false; n_samples],
                degraded: vec![false; n_samples],
                sim_failures: 0,
            },
        ))
    }

    fn accumulate(
        &self,
        state: &mut McState,
        group_specs: &[usize],
        sample: usize,
        result: Result<DVec, CktError>,
    ) -> Result<(), SpecwiseError> {
        match classify_sample(result, group_specs)? {
            SampleOutcome::Valid(margins) => {
                for &i in group_specs {
                    state.per_spec_margins[i].push(margins[i]);
                    if margins[i] < 0.0 {
                        state.per_spec_bad[i] += 1;
                        state.ok[sample] = false;
                        state.violated[sample] = true;
                    }
                }
            }
            // A degraded sample is a nonfunctional circuit: count it as
            // failing every spec of this group instead of aborting the
            // verification, keeping any finite margins for the moments.
            SampleOutcome::Degraded(margins) => {
                state.sim_failures += 1;
                state.degraded[sample] = true;
                for &i in group_specs {
                    state.per_spec_bad[i] += 1;
                    if let Some(m) = &margins {
                        if m[i].is_finite() {
                            state.per_spec_margins[i].push(m[i]);
                        }
                    }
                }
                state.ok[sample] = false;
            }
        }
        Ok(())
    }

    fn finalize<E: Evaluator + ?Sized>(
        &self,
        _env: &E,
        state: McState,
        theta_wc: Vec<OperatingPoint>,
    ) -> McVerification {
        let n_samples = self.options.n_samples;
        let passed = state.ok.iter().filter(|&&x| x).count();
        let degraded_samples = (0..n_samples)
            .filter(|&j| state.degraded[j] && !state.violated[j])
            .count();
        McVerification {
            yield_estimate: YieldEstimate::from_counts(passed, n_samples),
            per_spec_bad: state.per_spec_bad,
            per_spec_margins: state.per_spec_margins,
            theta_wc,
            sim_failures: state.sim_failures,
            degraded_samples,
        }
    }

    fn annotate(&self, span: &mut Span, output: &McVerification) {
        span.set_attr("n_samples", self.options.n_samples);
        span.set_attr("passed", output.yield_estimate.passed());
        span.set_attr("yield", output.yield_estimate.value());
        span.set_attr("sim_failures", output.sim_failures);
        span.set_attr("degraded_samples", output.degraded_samples);
        let (lo, hi) = output.yield_interval();
        span.set_attr("yield_low", lo);
        span.set_attr("yield_high", hi);
        span.set_attr(
            "per_spec_bad",
            output
                .per_spec_bad
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<f64>>(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, SimPhase, Spec, SpecKind};
    use specwise_exec::{EvalService, ExecConfig, RetryPolicy};

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0], 2.0 + s[1]]))
            .build()
            .unwrap()
    }

    #[test]
    fn yield_matches_analytic_probability() {
        let e = env();
        // Pass: Z0 > −1 AND Z1 > −2 → Φ(1)·Φ(2) ≈ 0.8413·0.9772 ≈ 0.8222.
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), 20_000, 11).unwrap();
        assert!((v.yield_estimate.value() - 0.8222).abs() < 0.01);
        // Per-spec bad rates: 1 − Φ(1) ≈ 15.9 %, 1 − Φ(2) ≈ 2.3 %.
        let bad = v.bad_per_mille();
        assert!((bad[0] - 158.7).abs() < 12.0, "bad0 = {}", bad[0]);
        assert!((bad[1] - 22.8).abs() < 6.0, "bad1 = {}", bad[1]);
        assert_eq!(v.sim_failures, 0);
    }

    #[test]
    fn margin_moments_match_distribution() {
        let e = env();
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), 20_000, 5).unwrap();
        // Margin of spec 0 is 1 + Z: mean 1, std 1.
        assert!((v.per_spec_margins[0].mean() - 1.0).abs() < 0.03);
        assert!((v.per_spec_margins[0].std_dev() - 1.0).abs() < 0.03);
        assert!((v.per_spec_margins[1].mean() - 2.0).abs() < 0.03);
    }

    #[test]
    fn shares_simulations_across_specs() {
        let e = env();
        e.reset_sim_count();
        let n = 500;
        let _ = mc_verify(&e, &DVec::from_slice(&[1.0]), n, 1).unwrap();
        // 4 corner sims + N (both specs share one θ_wc since the margins
        // are θ-independent → single group).
        assert_eq!(e.sim_count(), 4 + n as u64);
        // All of them are attributed to the verification phase.
        let by_phase = e.sim_phase_counts();
        assert_eq!(by_phase[SimPhase::Verification.index()], 4 + n as u64);
    }

    #[test]
    fn deterministic_for_seed() {
        let e = env();
        let a = mc_verify(&e, &DVec::from_slice(&[0.5]), 2_000, 42).unwrap();
        let b = mc_verify(&e, &DVec::from_slice(&[0.5]), 2_000, 42).unwrap();
        assert_eq!(a.yield_estimate, b.yield_estimate);
        assert_eq!(a.per_spec_bad, b.per_spec_bad);
    }

    #[test]
    fn parallel_service_matches_bare_env_bit_for_bit() {
        let e = env();
        let d = DVec::from_slice(&[0.5]);
        let serial = mc_verify(&e, &d, 2_000, 42).unwrap();
        for workers in [1usize, 2, 8] {
            let cfg = ExecConfig {
                workers,
                cache_capacity: 0,
                retry: RetryPolicy::none(),
                min_parallel_batch: 2,
            };
            let svc = EvalService::new(&e, cfg);
            let par = mc_verify(&svc, &d, 2_000, 42).unwrap();
            assert_eq!(
                serial.yield_estimate, par.yield_estimate,
                "workers = {workers}"
            );
            assert_eq!(serial.per_spec_bad, par.per_spec_bad);
            for (a, b) in serial.per_spec_margins.iter().zip(&par.per_spec_margins) {
                assert_eq!(a.mean().to_bits(), b.mean().to_bits());
                assert_eq!(a.std_dev().to_bits(), b.std_dev().to_bits());
            }
        }
    }

    #[test]
    fn non_converging_sample_degrades_to_counted_failure() {
        // The DC solve "diverges" whenever s0 > 1.5 — roughly Φ(−1.5) ≈
        // 6.7 % of the samples. The verification must not abort: those
        // samples count as failing every spec of their group.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0], 2.0 + s[1]]))
            .fail_when_stat(|_, s| s[0] > 1.5)
            .build()
            .unwrap();
        let d = DVec::from_slice(&[1.0]);
        let n = 4_000;
        let v = mc_verify(&e, &d, n, 7).unwrap();
        let frac = v.sim_failures as f64 / n as f64;
        assert!(frac > 0.03 && frac < 0.12, "Φ(−1.5) ≈ 6.7 %, got {frac}");
        // Both specs of the shared group inherit every degraded sample.
        assert!(v.per_spec_bad[1] >= v.sim_failures);
        // The same run through a retrying EvalService degrades identically
        // (the failure region is open — no perturbation recovers it) and
        // reports the failures in its counters.
        let svc = EvalService::new(
            &e,
            ExecConfig {
                workers: 2,
                cache_capacity: 0,
                retry: RetryPolicy {
                    max_retries: 2,
                    perturb: 1e-9,
                },
                min_parallel_batch: 2,
            },
        );
        let vs = mc_verify(&svc, &d, n, 7).unwrap();
        assert_eq!(vs.sim_failures, v.sim_failures);
        assert_eq!(vs.yield_estimate, v.yield_estimate);
        let report = svc.report();
        assert_eq!(report.sim_failures, v.sim_failures as u64);
        assert!(report.retries >= 2 * report.sim_failures);
    }

    #[test]
    fn degraded_samples_widen_the_yield_interval() {
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0], 2.0 + s[1]]))
            .fail_when_stat(|_, s| s[0] > 1.5)
            .build()
            .unwrap();
        let n = 4_000;
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), n, 7).unwrap();
        assert!(v.sim_failures > 0);
        assert!(v.degraded_samples > 0);
        let (lo, hi) = v.yield_interval();
        // Low end is the conservative point estimate (degraded = failing);
        // the width is exactly the unresolved degraded fraction.
        assert_eq!(lo, v.yield_estimate.value());
        let width = v.degraded_samples as f64 / n as f64;
        assert!((hi - lo - width).abs() < 1e-12, "({lo}, {hi}) vs {width}");
    }

    #[test]
    fn non_finite_margins_never_count_as_passing() {
        // NaN margins in a band of samples: without the guard `NaN < 0.0`
        // is false and the sample would silently pass.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                let f0 = if s[0] > 1.5 { f64::NAN } else { d[0] + s[0] };
                DVec::from_slice(&[f0, 2.0 + s[1]])
            })
            .build()
            .unwrap();
        let n = 4_000;
        let v = mc_verify(&e, &DVec::from_slice(&[1.0]), n, 7).unwrap();
        assert!(v.sim_failures > 0, "NaN band must register as degradation");
        assert!(v.yield_estimate.value() < 1.0);
        // The margin moments are not poisoned by the NaNs.
        assert!(v.per_spec_margins[0].mean().is_finite());
        assert!(v.per_spec_margins[1].mean().is_finite());
        // NaN samples count as failing spec 0 (conservatively).
        assert!(v.per_spec_bad[0] >= v.sim_failures);
    }

    #[test]
    fn rejects_zero_samples() {
        let e = env();
        assert!(mc_verify(&e, &DVec::from_slice(&[1.0]), 0, 1).is_err());
    }

    #[test]
    fn options_struct_defaults_are_explicit() {
        let o = McOptions::default();
        assert_eq!(o.n_samples, 300);
        assert_eq!(o.seed, 2001);
        let e = env();
        let v = mc_verify_with(&e, &DVec::from_slice(&[1.0]), &o).unwrap();
        assert_eq!(v.yield_estimate.total(), 300);
    }
}
