//! The pluggable yield-estimation layer: one trait, one driver, many
//! estimators.
//!
//! Yield verification used to exist as near-copies of one loop — plain,
//! traced, batched, fault-hardened, budget-wrapped — spread over
//! `mc_verify`, `importance`, and their `*_traced` forks. This module
//! collapses them into a single four-stage contract:
//!
//! 1. **propose** — the estimator draws every sample up front, in the
//!    exact RNG order a serial draw-then-evaluate loop would use, so the
//!    result is bit-identical at any worker count;
//! 2. **evaluate-batch** — the shared driver groups specs by identical
//!    worst-case operating corner and dispatches one batch per group
//!    (preferring the environment's lockstep sample path, `SPECWISE_BATCH`,
//!    falling back to the generic [`EvalPoint`] batch), so an
//!    [`EvalService`](specwise_exec::EvalService) spreads the simulations
//!    over its worker pool without changing any result bit;
//! 3. **accumulate** — the estimator folds each sample result through the
//!    shared degradation ladder ([`classify_sample`]): retry exhaustion,
//!    soft `KillSwitch` budget starvation and non-finite
//!    margins all surface as `is_simulation_failure()` style degradations
//!    and become counted-and-excluded samples instead of aborts;
//! 4. **interval** — the estimator finalizes a result whose yield interval
//!    widens by the unresolved degraded mass instead of silently biasing
//!    the point estimate.
//!
//! The driver — [`estimate_yield`] — also owns span emission: tracing is
//! pure observation (one span per verification with the estimator's
//! attributes and the simulation effort), so there are no separate
//! `*_traced` entry points anymore.

use std::sync::Arc;

use specwise_ckt::{CktError, OperatingPoint, SimPhase};
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::DVec;
use specwise_trace::{Span, Tracer};
use specwise_wcd::worst_case_corners;

use crate::SpecwiseError;

/// The four-stage yield-estimation contract (see the module docs).
///
/// Implementors own the proposal distribution, the per-sample bookkeeping
/// and the final interval; the shared driver [`estimate_yield`] owns
/// worst-case-corner grouping, batch dispatch and span emission. The
/// estimators shipped with the crate are
/// [`MonteCarlo`](crate::MonteCarlo) (paper Eqs. 6–7),
/// [`MeanShiftIs`](crate::MeanShiftIs) (paper Eqs. 11–12) and
/// [`NormMinIs`](crate::NormMinIs) (minimum-norm failure-point importance
/// sampling for the high-sigma regime where mean-shift collapses).
pub trait YieldEstimator {
    /// Mutable per-run state threaded from `propose` through `accumulate`
    /// into `finalize`.
    type State;
    /// The estimator's result type.
    type Output;

    /// Short machine-readable name reported in logs and `status`
    /// (`"mc"`, `"is"`, `"norm-min"`).
    fn name(&self) -> &'static str;

    /// Span name recorded in the journal (`"mc_verify"`, `"is_verify"`,
    /// `"norm_min_verify"`).
    fn span_name(&self) -> &'static str;

    /// Validates the options against the environment before any
    /// simulation runs.
    ///
    /// # Errors
    ///
    /// Rejects empty sample budgets and dimension mismatches.
    fn validate<E: Evaluator + ?Sized>(&self, env: &E) -> Result<(), SpecwiseError>;

    /// Draws every sample up front (serial RNG call order) and returns the
    /// initial accumulator state. `theta_wc` holds the per-spec worst-case
    /// corners; estimators that search for a proposal center (e.g. the
    /// minimum-norm failure point) may simulate here — the driver counts
    /// that effort into the verification span.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors of any proposal-construction search.
    fn propose<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        d: &DVec,
        theta_wc: &[OperatingPoint],
    ) -> Result<(Vec<DVec>, Self::State), SpecwiseError>;

    /// Whether sample `j` still needs evaluation in the next corner group.
    /// Short-circuiting estimators (importance sampling) exclude samples
    /// that already failed an earlier group, preserving the simulation
    /// count of the serial loop; plain Monte Carlo evaluates every sample
    /// in every group (its per-spec moments need all margins).
    fn live(&self, _state: &Self::State, _sample: usize) -> bool {
        true
    }

    /// Folds one batched sample result into the state. `group_specs` are
    /// the spec indices sharing this corner group's simulation.
    ///
    /// # Errors
    ///
    /// Propagates non-degradable evaluation errors (see
    /// [`classify_sample`]).
    fn accumulate(
        &self,
        state: &mut Self::State,
        group_specs: &[usize],
        sample: usize,
        result: Result<DVec, CktError>,
    ) -> Result<(), SpecwiseError>;

    /// Builds the final result from the settled state.
    fn finalize<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        state: Self::State,
        theta_wc: Vec<OperatingPoint>,
    ) -> Self::Output;

    /// Records the estimator's span attributes (the driver adds the
    /// `sims` counter).
    fn annotate(&self, span: &mut Span, output: &Self::Output);
}

/// How one batched sample evaluation settles under the shared degradation
/// ladder. This is the single place where the fault-hardening contract is
/// interpreted: an [`EvalService`](specwise_exec::EvalService) retry
/// exhaustion and a soft `KillSwitch` budget starvation (`specwise-harden`)
/// both surface as simulation failures, and a non-finite margin is as
/// unusable as a failed solve (`NaN < 0.0` is false — without the guard a
/// NaN sample would silently count as passing).
#[derive(Debug, Clone, PartialEq)]
pub enum SampleOutcome {
    /// Usable margins for every spec of the sample's corner group.
    Valid(DVec),
    /// Counted-and-excluded: the margins are carried along when the solve
    /// produced any (so per-spec moments can still use the finite
    /// entries), `None` when the simulation itself failed.
    Degraded(Option<DVec>),
}

/// Classifies one sample result for `group_specs` (the accumulator policy
/// shared by every estimator — see [`SampleOutcome`]).
///
/// # Errors
///
/// Propagates errors that are not simulation failures (dimension
/// mismatches, poisoned workers): those abort the verification.
pub fn classify_sample(
    result: Result<DVec, CktError>,
    group_specs: &[usize],
) -> Result<SampleOutcome, SpecwiseError> {
    match result {
        Ok(margins) if group_specs.iter().any(|&i| !margins[i].is_finite()) => {
            Ok(SampleOutcome::Degraded(Some(margins)))
        }
        Ok(margins) => Ok(SampleOutcome::Valid(margins)),
        Err(e) if e.is_simulation_failure() => Ok(SampleOutcome::Degraded(None)),
        Err(e) => Err(e.into()),
    }
}

/// Runs `estimator` at design `d`, recording one span (named
/// [`YieldEstimator::span_name`], carrying the estimator's attributes and
/// the simulation effort) into `tracer`'s journal. The disabled tracer
/// records nothing and costs one branch.
///
/// This is the shared driver of every yield verification: per-spec
/// worst-case corners at the nominal statistical point, specs grouped by
/// identical corner to share simulations (the sharing behind the paper's
/// effort bound `N* ≤ N·min(n_spec, 2^dim(Θ))`), one batch per group.
///
/// # Errors
///
/// Propagates validation and evaluation errors.
pub fn estimate_yield<X: YieldEstimator, E: Evaluator + ?Sized>(
    estimator: &X,
    env: &E,
    d: &DVec,
    tracer: &Tracer,
) -> Result<X::Output, SpecwiseError> {
    let mut span = tracer.span(estimator.span_name());
    let sims_before = if span.is_enabled() {
        env.sim_count()
    } else {
        0
    };
    let result = estimate_inner(estimator, env, d)?;
    if span.is_enabled() {
        estimator.annotate(&mut span, &result);
        span.add_count("sims", env.sim_count() - sims_before);
    }
    Ok(result)
}

fn estimate_inner<X: YieldEstimator, E: Evaluator + ?Sized>(
    estimator: &X,
    env: &E,
    d: &DVec,
) -> Result<X::Output, SpecwiseError> {
    estimator.validate(env)?;
    env.set_sim_phase(SimPhase::Verification);

    // Per-spec worst-case corners at the nominal statistical point.
    let corners = worst_case_corners(env, d, &DVec::zeros(env.stat_dim()))?;
    let theta_wc: Vec<OperatingPoint> = corners.iter().map(|(t, _)| *t).collect();

    // Group specs by identical worst-case corner to share simulations.
    let mut groups: Vec<(OperatingPoint, Vec<usize>)> = Vec::new();
    for (i, t) in theta_wc.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == t) {
            Some((_, specs)) => specs.push(i),
            None => groups.push((*t, vec![i])),
        }
    }

    let (samples, mut state) = estimator.propose(env, d, &theta_wc)?;
    let n = samples.len();

    // The design vector is shared by reference across every point of every
    // corner group.
    let d_arc: Arc<DVec> = Arc::new(d.clone());
    for (theta, specs) in &groups {
        // Samples a short-circuiting estimator has already settled are
        // excluded — the serial loop would have `break`ed before
        // simulating them here.
        let live: Vec<usize> = (0..n).filter(|&j| estimator.live(&state, j)).collect();
        if live.is_empty() {
            break;
        }
        // Prefer the environment's lockstep sample evaluator (one batched
        // Newton sweep per corner group, bit-identical to the point loop);
        // environments without one take the generic batch path.
        let sample_points: Vec<(DVec, OperatingPoint)> =
            live.iter().map(|&j| (samples[j].clone(), *theta)).collect();
        let results = match env.eval_margins_samples(d, &sample_points) {
            Some(results) => results,
            None => {
                let points: Vec<EvalPoint> = live
                    .iter()
                    .map(|&j| EvalPoint::new(Arc::clone(&d_arc), samples[j].clone(), *theta))
                    .collect();
                env.eval_margins_batch(&points)
            }
        };
        for (&j, result) in live.iter().zip(results) {
            estimator.accumulate(&mut state, specs, j, result)?;
        }
    }

    Ok(estimator.finalize(env, state, theta_wc))
}

/// Which yield estimator verifies a run — selectable per job in
/// `specwise-serve` and via the `SPECWISE_ESTIMATOR` environment knob
/// (`mc` | `is` | `norm-min`, malformed values warn and keep the
/// default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// Plain simulation Monte Carlo at the worst-case corners (Eqs. 6–7).
    #[default]
    Mc,
    /// Mean-shift importance sampling at the dominant worst-case point
    /// (Eqs. 11–12).
    MeanShift,
    /// Minimum-norm failure-point importance sampling with self-normalized
    /// weights and an effective-sample-size guard (high-sigma regime).
    NormMin,
}

impl EstimatorKind {
    /// The knob/wire name of the estimator.
    pub fn as_str(&self) -> &'static str {
        match self {
            EstimatorKind::Mc => "mc",
            EstimatorKind::MeanShift => "is",
            EstimatorKind::NormMin => "norm-min",
        }
    }

    /// Reads `SPECWISE_ESTIMATOR` through the shared warn-and-default
    /// parser: unset or malformed values keep [`EstimatorKind::Mc`] (a
    /// malformed value prints a one-line stderr warning naming the
    /// variable and the rejected value).
    pub fn from_env() -> EstimatorKind {
        specwise_exec::config::parse_env_knob("SPECWISE_ESTIMATOR").unwrap_or_default()
    }
}

impl std::str::FromStr for EstimatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EstimatorKind, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mc" => Ok(EstimatorKind::Mc),
            "is" => Ok(EstimatorKind::MeanShift),
            "norm-min" => Ok(EstimatorKind::NormMin),
            other => Err(format!("unknown estimator {other:?} (mc | is | norm-min)")),
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unified summary of a tail (non-MC) verification attached to an
/// optimizer snapshot: what `run_report` and the serve `status` need to
/// distinguish mixed-estimator runs without carrying each estimator's full
/// result type through the checkpoint format.
#[derive(Debug, Clone, PartialEq)]
pub struct TailVerification {
    /// Which estimator produced the numbers.
    pub estimator: EstimatorKind,
    /// Estimated failure probability `P(any spec fails)`.
    pub failure_probability: f64,
    /// Estimated yield (degraded samples counted as failing).
    pub yield_value: f64,
    /// Low end of the yield interval.
    pub yield_low: f64,
    /// High end of the yield interval (degraded mass returned to passing).
    pub yield_high: f64,
    /// Effective sample size over the failing samples' weights.
    pub effective_sample_size: f64,
    /// Sample evaluations that failed to simulate or produced non-finite
    /// margins (counted-and-excluded).
    pub sim_failures: usize,
    /// `true` when the estimator's quality guard tripped (e.g. the
    /// norm-min ESS guard) and the interval was widened to cover its
    /// ignorance instead of reporting a confident wrong number.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_kind_parses_knob_values() {
        assert_eq!("mc".parse::<EstimatorKind>().unwrap(), EstimatorKind::Mc);
        assert_eq!(
            " IS ".parse::<EstimatorKind>().unwrap(),
            EstimatorKind::MeanShift
        );
        assert_eq!(
            "norm-min".parse::<EstimatorKind>().unwrap(),
            EstimatorKind::NormMin
        );
        assert!("normmin".parse::<EstimatorKind>().is_err());
        assert_eq!(EstimatorKind::default(), EstimatorKind::Mc);
        assert_eq!(EstimatorKind::NormMin.to_string(), "norm-min");
    }

    #[test]
    fn classify_routes_the_degradation_ladder() {
        use specwise_linalg::DVec;
        let specs = [0usize, 1];
        let ok = classify_sample(Ok(DVec::from_slice(&[1.0, -2.0])), &specs).unwrap();
        assert_eq!(ok, SampleOutcome::Valid(DVec::from_slice(&[1.0, -2.0])));
        let nan = classify_sample(Ok(DVec::from_slice(&[f64::NAN, 0.5])), &specs).unwrap();
        assert!(matches!(nan, SampleOutcome::Degraded(Some(_))));
        // A NaN outside the group's specs is not this group's problem.
        let other = classify_sample(Ok(DVec::from_slice(&[f64::NAN, 0.5])), &[1]).unwrap();
        assert!(matches!(other, SampleOutcome::Valid(_)));
    }
}
