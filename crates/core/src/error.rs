use std::error::Error;
use std::fmt;

use specwise_ckt::CktError;
use specwise_stat::StatError;
use specwise_wcd::WcdError;

/// Errors produced by the yield-optimization core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecwiseError {
    /// Worst-case analysis failed.
    WorstCase(WcdError),
    /// Circuit evaluation failed.
    Circuit(CktError),
    /// Statistical machinery failed.
    Stat(StatError),
    /// No feasible starting point could be found.
    NoFeasibleStart {
        /// Largest remaining constraint violation.
        worst_violation: f64,
    },
    /// Invalid configuration value.
    InvalidConfig {
        /// What was wrong.
        reason: &'static str,
    },
    /// Dimension mismatch between model pieces.
    DimensionMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
}

impl fmt::Display for SpecwiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecwiseError::WorstCase(e) => write!(f, "worst-case analysis failed: {e}"),
            SpecwiseError::Circuit(e) => write!(f, "circuit evaluation failed: {e}"),
            SpecwiseError::Stat(e) => write!(f, "statistical computation failed: {e}"),
            SpecwiseError::NoFeasibleStart { worst_violation } => {
                write!(
                    f,
                    "no feasible starting point found (violation {worst_violation:.3e})"
                )
            }
            SpecwiseError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SpecwiseError::DimensionMismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} vector has length {found}, expected {expected}")
            }
        }
    }
}

impl Error for SpecwiseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecwiseError::WorstCase(e) => Some(e),
            SpecwiseError::Circuit(e) => Some(e),
            SpecwiseError::Stat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WcdError> for SpecwiseError {
    fn from(e: WcdError) -> Self {
        SpecwiseError::WorstCase(e)
    }
}

impl From<CktError> for SpecwiseError {
    fn from(e: CktError) -> Self {
        SpecwiseError::Circuit(e)
    }
}

impl From<StatError> for SpecwiseError {
    fn from(e: StatError) -> Self {
        SpecwiseError::Stat(e)
    }
}
