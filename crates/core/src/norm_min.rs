//! Minimum-norm failure-point importance sampling for the high-sigma
//! regime.
//!
//! Mean-shift IS ([`MeanShiftIs`](crate::MeanShiftIs)) needs a caller-
//! supplied proposal mean, and the natural choice — the worst-case point of
//! the *linearized* model — degrades at 4–6σ: the linearization point is
//! far from the true most-likely failure point, the shifted proposal
//! barely overlaps the failure region, and a handful of enormous weights
//! dominate the estimate. `NormMinIs` instead *searches* for the
//! minimum-norm failure point (the most likely failure in the standardized
//! space, where probability density is a decreasing function of `‖ŝ‖`
//! alone): Gauss–Newton steps on the critical spec's margin along its
//! gradient — computed through the adjoint path on cached LU factors when
//! the environment provides it — followed by a projected coordinate-
//! descent polish that shrinks coordinates toward the origin while the
//! point stays failing. The proposal is then `N(µ, I)` centred slightly
//! beyond that point, weighted with exact density ratios
//! (`p = Σ_fail w / n`; the self-normalized ratio `Σ_fail w / Σ w` was
//! measured and rejected — its denominator has `exp(‖µ‖²)` relative
//! variance, which is catastrophic in exactly the high-sigma regime this
//! estimator targets), and an effective-sample-size guard widens the yield
//! interval to `[0, 1]` instead of reporting a confident wrong number when
//! the proposal turns out degenerate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{CktError, OperatingPoint};
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_stat::StandardNormal;
use specwise_trace::Span;
use specwise_wcd::margins_gradient_s;

use crate::estimator::{classify_sample, SampleOutcome, YieldEstimator};
use crate::SpecwiseError;

/// Options of the minimum-norm failure-point IS verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormMinOptions {
    /// Number of proposal samples.
    pub n: usize,
    /// RNG seed of the proposal draw — explicit so that every run is
    /// reproducible by construction.
    pub seed: u64,
    /// Minimum effective sample size over the failing weights below which
    /// the result is marked degraded and the yield interval widens to
    /// `[0, 1]`.
    pub min_ess: f64,
    /// Maximum Gauss–Newton re-linearizations of the failure-point search.
    pub max_steps: usize,
    /// Coordinate-descent polish sweeps over the statistical dimensions.
    pub polish_sweeps: usize,
    /// Factor pushing the proposal mean past the failure boundary so the
    /// center itself fails (must be ≥ 1).
    pub overshoot: f64,
    /// Forward-difference step of the margin gradients when the adjoint
    /// shortcut is unavailable.
    pub grad_step: f64,
}

impl Default for NormMinOptions {
    fn default() -> Self {
        NormMinOptions {
            n: 4_000,
            seed: 2001,
            min_ess: 20.0,
            max_steps: 30,
            polish_sweeps: 2,
            overshoot: 1.05,
            grad_step: 1e-4,
        }
    }
}

/// Result of a minimum-norm failure-point IS verification.
#[derive(Debug, Clone, PartialEq)]
pub struct NormMinResult {
    /// The proposal mean: the (overshot) minimum-norm failure point.
    pub shift: DVec,
    /// Norm of the located failure-boundary point — the worst-case
    /// distance of the critical spec in sigma.
    pub beta: f64,
    /// Index of the spec whose boundary the search converged to.
    pub critical_spec: usize,
    /// Importance-sampled estimate of `P(any spec fails)`.
    pub failure_probability: f64,
    /// Estimated yield `1 − P(fail)` (degraded samples counted as failing).
    pub yield_value: f64,
    /// Standard error of the failure-probability estimate.
    pub std_error: f64,
    /// Effective sample size `(Σw)²/Σw²` over the failing samples' weights.
    pub effective_sample_size: f64,
    /// Number of proposal samples drawn.
    pub n: usize,
    /// Sample evaluations that failed to simulate or produced non-finite
    /// margins; such samples count as failures.
    pub sim_failures: usize,
    /// Importance weight (normalized by `n`) carried by degraded samples
    /// with no observed spec violation.
    pub degraded_weight: f64,
    /// `true` when the ESS guard tripped (degenerate proposal, weight
    /// under/overflow, or no failure point found): the point estimate is
    /// untrustworthy and [`NormMinResult::yield_interval`] is `[0, 1]`.
    pub ess_degraded: bool,
    /// Simulations spent by the failure-point search (included in the
    /// span's total `sims` counter).
    pub search_sims: u64,
}

impl NormMinResult {
    /// The yield interval `[low, high]`: the degraded-sample interval of
    /// the other estimators when the ESS guard holds, the whole `[0, 1]`
    /// (explicit ignorance) when it tripped.
    pub fn yield_interval(&self) -> (f64, f64) {
        if self.ess_degraded {
            return (0.0, 1.0);
        }
        let low = self.yield_value;
        let high = (low + self.degraded_weight).min(1.0);
        (low, high)
    }
}

/// Minimum-norm failure-point importance sampling as a
/// [`YieldEstimator`] (see the module docs). Selectable through
/// `SPECWISE_ESTIMATOR=norm-min`; run it through
/// [`estimate_yield`](crate::estimate_yield) to record a `norm_min_verify`
/// span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormMinIs {
    /// Search and sampling options.
    pub options: NormMinOptions,
}

/// Accumulator state of [`NormMinIs`].
#[derive(Debug, Clone)]
pub struct NormMinState {
    shift: DVec,
    beta: f64,
    critical_spec: usize,
    search_sims: u64,
    weights: Vec<f64>,
    failed: Vec<bool>,
    violated: Vec<bool>,
    degraded: Vec<bool>,
    sim_failures: usize,
}

/// Outcome of the failure-point search: the proposal center, the boundary
/// distance, and the spec whose boundary was located. When no failing
/// point was confirmed the shift may still be usable — sampling runs
/// anyway, and the ESS guard settles whether the result is trustworthy.
struct SearchOutcome {
    shift: DVec,
    beta: f64,
    critical_spec: usize,
}

impl NormMinIs {
    /// Gauss–Newton + coordinate-descent search for the minimum-norm
    /// failure point (module docs). Only simulation-failure evaluation
    /// errors are tolerated mid-search (the search stops where it stands);
    /// structural errors propagate.
    fn search_failure_point<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        d: &DVec,
        theta_wc: &[OperatingPoint],
    ) -> Result<SearchOutcome, SpecwiseError> {
        let dim = env.stat_dim();
        let h = self.options.grad_step;
        let origin = DVec::zeros(dim);

        // One linearization per distinct worst-case corner: β_i = m_i/‖g_i‖
        // is the linearized sigma-distance of spec i; the smallest picks
        // the critical spec.
        let mut critical: Option<(usize, f64, DVec)> = None;
        let mut done: Vec<&OperatingPoint> = Vec::new();
        for (i0, theta) in theta_wc.iter().enumerate() {
            if done.contains(&theta) {
                continue;
            }
            done.push(theta);
            let (margins, jac) = margins_gradient_s(env, d, &origin, theta, h)?;
            for (i, t) in theta_wc.iter().enumerate().skip(i0) {
                if t != theta {
                    continue;
                }
                let g = jac.row(i);
                let gn = g.norm2();
                let m = margins[i];
                if !(gn > 0.0) || !m.is_finite() {
                    continue;
                }
                let beta = m / gn;
                if critical.as_ref().is_none_or(|(_, b, _)| beta < *b) {
                    critical = Some((i, beta, g.scaled(-1.0 / gn)));
                }
            }
        }
        let Some((spec, beta0, dir)) = critical else {
            // Nothing linearizable: sample from the prior and let the ESS
            // guard report the failure honestly.
            return Ok(SearchOutcome {
                shift: origin,
                beta: 0.0,
                critical_spec: 0,
            });
        };
        let theta = theta_wc[spec];

        // Gauss–Newton on the critical margin: step to the re-linearized
        // boundary until the margin changes sign (or stalls).
        let mut s = dir.scaled(beta0.max(0.0));
        let mut boundary = s.clone();
        let mut on_boundary = false;
        for _ in 0..self.options.max_steps {
            let (margins, jac) = match margins_gradient_s(env, d, &s, &theta, h) {
                Ok(r) => r,
                Err(e) if e.is_simulation_failure() => break,
                Err(e) => return Err(e.into()),
            };
            let m = margins[spec];
            if !m.is_finite() {
                break;
            }
            let g = jac.row(spec);
            let g2 = g.dot(&g);
            if !(g2 > 0.0) || !g2.is_finite() {
                break;
            }
            boundary = s.clone();
            on_boundary = true;
            // Converged when the remaining margin moves the point by a
            // negligible fraction of its norm.
            let step = m / g2;
            if (step * step * g2).sqrt() <= 1e-10 * (1.0 + s.norm2()) {
                break;
            }
            s = s.axpy(-step, &g);
        }
        if on_boundary {
            boundary = s;
        }

        // Push past the boundary so the proposal center itself fails, then
        // coordinate-descent polish: shrink coordinates toward the origin
        // (strictly reducing ‖µ‖) while the point keeps failing.
        let mut center = boundary.scaled(self.options.overshoot);
        let fails = |p: &DVec| match env.eval_margins(d, p, &theta) {
            Ok(m) => m[spec].is_finite() && m[spec] < 0.0,
            Err(_) => false,
        };
        let mut found = fails(&center);
        for _ in 0..4 {
            if found {
                break;
            }
            center = center.scaled(1.1);
            found = fails(&center);
        }
        if found {
            for _ in 0..self.options.polish_sweeps {
                let mut improved = false;
                for k in 0..dim {
                    if center[k] == 0.0 {
                        continue;
                    }
                    let candidate =
                        DVec::from_fn(dim, |j| if j == k { 0.7 * center[j] } else { center[j] });
                    if fails(&candidate) {
                        center = candidate;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        Ok(SearchOutcome {
            beta: center.norm2() / self.options.overshoot.max(1.0),
            shift: center,
            critical_spec: spec,
        })
    }
}

impl YieldEstimator for NormMinIs {
    type State = NormMinState;
    type Output = NormMinResult;

    fn name(&self) -> &'static str {
        "norm-min"
    }

    fn span_name(&self) -> &'static str {
        "norm_min_verify"
    }

    fn validate<E: Evaluator + ?Sized>(&self, _env: &E) -> Result<(), SpecwiseError> {
        if self.options.n == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "need at least one sample",
            });
        }
        if !(self.options.overshoot >= 1.0) {
            return Err(SpecwiseError::InvalidConfig {
                reason: "overshoot must be ≥ 1",
            });
        }
        if !(self.options.grad_step > 0.0) {
            return Err(SpecwiseError::InvalidConfig {
                reason: "gradient step must be > 0",
            });
        }
        Ok(())
    }

    fn propose<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        d: &DVec,
        theta_wc: &[OperatingPoint],
    ) -> Result<(Vec<DVec>, NormMinState), SpecwiseError> {
        let sims_before = env.sim_count();
        let search = self.search_failure_point(env, d, theta_wc)?;
        let search_sims = env.sim_count() - sims_before;

        // The proposal draw mirrors `MeanShiftIs` exactly: the same RNG
        // call order as a serial draw-then-evaluate loop, one raw-density
        // ratio per sample. Self-normalization happens in `finalize`.
        let n = self.options.n;
        let shift = &search.shift;
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let normal = StandardNormal::new();
        let half_mu2 = 0.5 * shift.dot(shift);
        let mut samples = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut z = DVec::zeros(env.stat_dim());
        for _ in 0..n {
            normal.fill(&mut rng, z.as_mut_slice());
            let s = &z + shift;
            weights.push((half_mu2 - shift.dot(&s)).exp());
            samples.push(s);
        }
        Ok((
            samples,
            NormMinState {
                shift: search.shift.clone(),
                beta: search.beta,
                critical_spec: search.critical_spec,
                search_sims,
                weights,
                failed: vec![false; n],
                violated: vec![false; n],
                degraded: vec![false; n],
                sim_failures: 0,
            },
        ))
    }

    // Samples that already failed an earlier group are settled — the
    // serial loop would have `break`ed before simulating them here.
    fn live(&self, state: &NormMinState, sample: usize) -> bool {
        !state.failed[sample]
    }

    fn accumulate(
        &self,
        state: &mut NormMinState,
        group_specs: &[usize],
        sample: usize,
        result: Result<DVec, CktError>,
    ) -> Result<(), SpecwiseError> {
        match classify_sample(result, group_specs)? {
            SampleOutcome::Valid(margins) => {
                if group_specs.iter().any(|&i| margins[i] < 0.0) {
                    state.failed[sample] = true;
                    state.violated[sample] = true;
                }
            }
            SampleOutcome::Degraded(_) => {
                state.sim_failures += 1;
                state.degraded[sample] = true;
                state.failed[sample] = true;
            }
        }
        Ok(())
    }

    fn finalize<E: Evaluator + ?Sized>(
        &self,
        _env: &E,
        state: NormMinState,
        _theta_wc: Vec<OperatingPoint>,
    ) -> NormMinResult {
        let n = self.options.n;
        let mut fail_w = 0.0;
        let mut fail_w2 = 0.0;
        let mut degraded_w = 0.0;
        for j in 0..n {
            if state.failed[j] {
                fail_w += state.weights[j];
                fail_w2 += state.weights[j] * state.weights[j];
            }
            if state.degraded[j] && !state.violated[j] {
                degraded_w += state.weights[j];
            }
        }

        // Exact-density importance estimate, as in `MeanShiftIs`. The
        // weights of failing samples under an overshot proposal are bounded
        // (the shift sits past the boundary), so the raw estimator stays
        // well-conditioned; what can still go wrong — too few failing
        // samples, a weight blow-up through a degenerate search — is
        // precisely what the ESS guard below converts into an honest
        // `[0, 1]` interval.
        let nf = n as f64;
        let mut p_fail = (fail_w / nf).clamp(0.0, 1.0);
        let mut var = ((fail_w2 / nf) - p_fail * p_fail).max(0.0) / nf;
        let ess = if fail_w2 > 0.0 && fail_w2.is_finite() {
            fail_w * fail_w / fail_w2
        } else {
            0.0
        };
        let ess_degraded = !p_fail.is_finite()
            || !var.is_finite()
            || !ess.is_finite()
            || ess < self.options.min_ess;
        if !p_fail.is_finite() {
            p_fail = 0.0;
            var = 0.0;
        }
        NormMinResult {
            shift: state.shift,
            beta: state.beta,
            critical_spec: state.critical_spec,
            failure_probability: p_fail,
            yield_value: 1.0 - p_fail,
            std_error: var.sqrt(),
            effective_sample_size: ess,
            n,
            sim_failures: state.sim_failures,
            degraded_weight: (degraded_w / nf).clamp(0.0, 1.0),
            ess_degraded,
            search_sims: state.search_sims,
        }
    }

    fn annotate(&self, span: &mut Span, output: &NormMinResult) {
        span.set_attr("n", self.options.n);
        span.set_attr("beta", output.beta);
        span.set_attr("critical_spec", output.critical_spec);
        span.set_attr("failure_probability", output.failure_probability);
        span.set_attr("std_error", output.std_error);
        span.set_attr("effective_sample_size", output.effective_sample_size);
        span.set_attr("sim_failures", output.sim_failures);
        span.set_attr("ess_degraded", output.ess_degraded);
        span.set_attr("search_sims", output.search_sims);
        let (lo, hi) = output.yield_interval();
        span.set_attr("yield_low", lo);
        span.set_attr("yield_high", hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_yield, mc_verify};
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_stat::std_normal_cdf;
    use specwise_trace::Tracer;

    /// margin = b + s0 → P(fail) = Φ(−b), minimum-norm failure point
    /// (−b, 0).
    fn env(b: f64) -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, b,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .build()
            .unwrap()
    }

    fn run(e: &AnalyticEnv, d: &DVec, options: NormMinOptions) -> NormMinResult {
        estimate_yield(&NormMinIs { options }, e, d, &Tracer::disabled()).unwrap()
    }

    #[test]
    fn finds_the_tail_plain_mc_misses() {
        // 4.8σ spec: plain MC at 4000 samples almost surely sees zero
        // failures; norm-min locates the failure point without being told
        // where it is and recovers the analytic tail probability.
        let b = 4.8;
        let e = env(b);
        let d = DVec::from_slice(&[b]);
        let plain = mc_verify(&e, &d, 4_000, 3).unwrap();
        assert_eq!(plain.yield_estimate.bad_samples(), 0);
        let r = run(&e, &d, NormMinOptions::default());
        let truth = std_normal_cdf(-b); // ≈ 7.9e-7
        assert!(
            !r.ess_degraded,
            "guard must hold: ESS = {}",
            r.effective_sample_size
        );
        assert!(
            (r.failure_probability / truth - 1.0).abs() < 0.5,
            "norm-min estimate {} vs truth {truth}",
            r.failure_probability
        );
        assert!(r.effective_sample_size >= 20.0);
        // The search found (≈ −b, 0): β is the sigma-distance.
        assert!((r.beta - b).abs() < 0.1, "beta = {}", r.beta);
        assert!(r.shift[0] < -b * 0.9 && r.shift[1].abs() < 0.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let e = env(3.5);
        let d = DVec::from_slice(&[3.5]);
        let a = run(&e, &d, NormMinOptions::default());
        let b = run(&e, &d, NormMinOptions::default());
        assert_eq!(
            a.failure_probability.to_bits(),
            b.failure_probability.to_bits()
        );
        assert_eq!(a.shift, b.shift);
    }

    #[test]
    fn guard_trips_on_unreachable_failure_region() {
        // The margin is constant in ŝ: there is no failure point to find,
        // the proposal stays at the origin, no sample fails, and the
        // result must say "I don't know" instead of "yield = 1".
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "b", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, _, _| DVec::from_slice(&[d[0] + 1.0]))
            .build()
            .unwrap();
        let d = DVec::from_slice(&[1.0]);
        let r = run(
            &e,
            &d,
            NormMinOptions {
                n: 200,
                ..NormMinOptions::default()
            },
        );
        assert!(r.ess_degraded);
        assert_eq!(r.yield_interval(), (0.0, 1.0));
        assert!(r.failure_probability.is_finite());
    }

    #[test]
    fn input_validation() {
        let e = env(1.0);
        let d = DVec::from_slice(&[1.0]);
        let bad_n = NormMinOptions {
            n: 0,
            ..NormMinOptions::default()
        };
        assert!(
            estimate_yield(&NormMinIs { options: bad_n }, &e, &d, &Tracer::disabled()).is_err()
        );
        let bad_o = NormMinOptions {
            overshoot: 0.5,
            ..NormMinOptions::default()
        };
        assert!(
            estimate_yield(&NormMinIs { options: bad_o }, &e, &d, &Tracer::disabled()).is_err()
        );
    }
}
