//! Property-based tests of the yield-optimization core on randomly
//! generated linear model sets.

use proptest::prelude::*;
use specwise::{LinearConstraints, LinearizedYield};
use specwise_ckt::OperatingPoint;
use specwise_linalg::{DMat, DVec};
use specwise_wcd::SpecLinearization;

fn lin_from(seed: u64, spec: usize, n_s: usize, n_d: usize) -> SpecLinearization {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(spec as u64 + 1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    SpecLinearization {
        spec,
        mirrored: false,
        theta_wc: OperatingPoint::new(25.0, 3.3),
        s_wc: DVec::from_fn(n_s, |_| next()),
        d_f: DVec::from_fn(n_d, |_| next()),
        margin_at_anchor: next().abs(),
        grad_s: DVec::from_fn(n_s, |_| next()),
        grad_d: DVec::from_fn(n_d, |_| next()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn tracker_equals_direct_estimate_after_arbitrary_moves(
        seed in 0u64..500,
        moves in prop::collection::vec((0usize..4, -2.0..2.0f64), 1..8),
    ) {
        let models: Vec<_> = (0..3).map(|i| lin_from(seed, i, 5, 4)).collect();
        let ly = LinearizedYield::new(models, 3, 3_000, seed).unwrap();
        let d_f = ly.anchor().clone();
        let mut tracker = ly.tracker(&d_f).unwrap();
        let mut d = d_f.clone();
        for (k, v) in moves {
            tracker.set_coord(k, v);
            d[k] = v;
        }
        let direct = ly.estimate(&d).unwrap();
        prop_assert_eq!(tracker.estimate().passed(), direct.passed());
    }

    #[test]
    fn raising_every_margin_never_lowers_yield(
        seed in 0u64..500,
        boost in 0.0..3.0f64,
    ) {
        // Design direction that raises every model's margin: set grad_d of
        // every model to +1 on one coordinate and move along it.
        let mut models: Vec<_> = (0..3).map(|i| lin_from(seed, i, 5, 1)).collect();
        for m in &mut models {
            m.grad_d = DVec::from_slice(&[1.0]);
            m.d_f = DVec::zeros(1);
        }
        let ly = LinearizedYield::new(models, 3, 3_000, seed).unwrap();
        let y0 = ly.estimate(&DVec::zeros(1)).unwrap().passed();
        let y1 = ly.estimate(&DVec::from_slice(&[boost])).unwrap().passed();
        prop_assert!(y1 >= y0, "monotone in uniform margin boosts: {y1} vs {y0}");
    }

    #[test]
    fn bad_sample_counts_bound_total_failures(seed in 0u64..500) {
        let models: Vec<_> = (0..4).map(|i| lin_from(seed, i, 6, 3)).collect();
        let ly = LinearizedYield::new(models, 4, 2_000, seed).unwrap();
        let d = ly.anchor().clone();
        let y = ly.estimate(&d).unwrap();
        let bad = ly.bad_samples_per_spec(&d).unwrap();
        let total_bad = 2_000 - y.passed();
        // Union bound: the per-spec bad counts each ≤ total failing samples
        // is false in general, but their max is ≤ total and their sum ≥ total.
        let max_bad = *bad.iter().max().unwrap();
        let sum_bad: usize = bad.iter().sum();
        prop_assert!(max_bad <= total_bad);
        prop_assert!(sum_bad >= total_bad);
    }

    #[test]
    fn coord_interval_points_are_feasible(
        c0 in prop::collection::vec(0.1..3.0f64, 1..4),
        jrow in prop::collection::vec(-2.0..2.0f64, 1..4),
        k in 0usize..3,
    ) {
        let n_c = c0.len();
        let n_d = 3;
        let k = k.min(n_d - 1);
        let jac = DMat::from_fn(n_c, n_d, |i, j| jrow[i % jrow.len()] * ((i + j) as f64 * 0.7).sin());
        let lc = LinearConstraints::new(
            DVec::from(c0),
            jac,
            DVec::zeros(n_d),
            DVec::filled(n_d, -5.0),
            DVec::filled(n_d, 5.0),
        )
        .unwrap();
        let d = DVec::zeros(n_d);
        // The anchor is feasible by construction (c0 > 0).
        prop_assert!(lc.feasible(&d));
        if let Some((lo, hi)) = lc.coord_interval(&d, k) {
            for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let mut probe = d.clone();
                probe[k] = lo + t * (hi - lo);
                prop_assert!(
                    lc.eval(&probe).iter().all(|&c| c >= -1e-6),
                    "interval point must stay linear-feasible"
                );
            }
        }
    }

    #[test]
    fn mirrored_yield_never_exceeds_single_sided(seed in 0u64..300) {
        // Adding the mirrored twin can only remove passing samples.
        let base = lin_from(seed, 0, 4, 2);
        let single = LinearizedYield::new(vec![base.clone()], 1, 4_000, seed).unwrap();
        let both =
            LinearizedYield::new(vec![base.clone(), base.to_mirrored()], 1, 4_000, seed)
                .unwrap();
        let d = base.d_f.clone();
        prop_assert!(
            both.estimate(&d).unwrap().passed() <= single.estimate(&d).unwrap().passed()
        );
    }
}
