//! specwise-serve: yield optimization as a service.
//!
//! A zero-external-dependency daemon (std [`TcpListener`] +
//! thread-per-connection over a shared job scheduler) that accepts
//! annotated circuit decks over line-delimited JSON, compiles them at an
//! untrusted-input boundary through the hardened limited deck parser, and
//! runs the paper's full Fig. 6 flow — worst-case analysis, spec-wise
//! linearization, feasibility-guided search, Monte-Carlo verification —
//! as queued jobs across a sharded worker pool on `specwise-exec`.
//!
//! Per job, the daemon
//!
//! * charges every simulator call against a per-tenant evaluation budget
//!   (a soft [`KillSwitch`](specwise_harden::KillSwitch): exhaustion
//!   degrades Monte-Carlo samples into a wider yield interval instead of
//!   crashing the run),
//! * persists the optimizer state as a checkpoint after every iteration,
//!   so killing and restarting the daemon resumes in-flight jobs
//!   **bit-for-bit** (warm starts are off by default for exactly this
//!   reason), and
//! * streams the live run journal — the Fig. 6 span tree — to every
//!   subscribed client, backlog included.
//!
//! `status` reports the job table, the evaluation-cache hit rate, and
//! per-tenant simulation counts.
//!
//! # Wire protocol
//!
//! One JSON object per line in both directions (see [`protocol`]):
//!
//! ```text
//! → {"cmd":"submit","deck":"...","tenant":"acme","mc_samples":2000}
//! ← {"ok":true,"job":"job-0001"}
//! → {"cmd":"result","job":"job-0001","wait":true}
//! ← {"ok":true,"job":"job-0001","state":"done","outcome":{"design":[...],...}}
//! → {"cmd":"subscribe","job":"job-0001"}
//! ← {"ok":true,"job":"job-0001"}
//! ← {"type":"span","name":"run",...}            (journal records …)
//! ← {"end":true,"job":"job-0001","state":"done"}
//! ```
//!
//! Malformed requests and hostile decks (oversized, brace bombs,
//! truncated bytes) get structured `{"ok":false,"error":{...}}` responses
//! while the daemon keeps serving.
//!
//! # In-process use
//!
//! The daemon also embeds directly (the end-to-end tests and the
//! throughput bench run it in-process):
//!
//! ```no_run
//! use specwise_serve::{Client, Daemon, ServeConfig, SubmitOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = ServeConfig::default();
//! cfg.addr = "127.0.0.1:0".into(); // pick a free port
//! let daemon = Daemon::start(cfg)?;
//! let mut client = Client::connect(daemon.local_addr())?;
//! let job = client.submit(specwise_ckt::MillerOpamp::deck(), &SubmitOptions::default())?;
//! let outcome = client.result_wait(&job)?;
//! println!("optimized design: {:?}", outcome.design);
//! daemon.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! [`TcpListener`]: std::net::TcpListener

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod job;
pub mod lease;
pub mod ledger;
pub mod protocol;
pub mod state;

pub use client::{Client, ClientError, SubmitOptions};
pub use daemon::{Daemon, ServeConfig};
pub use job::{run_job, JobOptions, JobOutcome, JobRequest, JobSpec};
pub use lease::{Acquire, Lease, LeaseInfo};
pub use ledger::TenantLedger;
pub use protocol::{Request, WireError};
pub use state::{FleetStatus, JobState, Metrics, ServeState};
