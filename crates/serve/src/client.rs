//! A blocking client for the daemon's wire protocol, used by the
//! end-to-end tests and by scripts driving a long-lived daemon.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use specwise_trace::json::{self, Json};
use specwise_trace::Record;

use crate::job::{JobOutcome, JobRequest};
use crate::protocol::{is_end_marker, Request};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon sent something the client cannot interpret.
    Protocol(String),
    /// The daemon answered with a structured error.
    Server {
        /// Machine-readable category (see
        /// [`WireError`](crate::protocol::WireError)).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Per-submission options; unset fields take the daemon's defaults.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Tenant name (`"default"` when empty); jobs of one tenant share
    /// one simulation budget.
    pub tenant: String,
    /// RNG seed override.
    pub seed: Option<u64>,
    /// Monte-Carlo samples on the linearized models.
    pub mc_samples: Option<u64>,
    /// Verification samples per snapshot (0 disables).
    pub verify_samples: Option<u64>,
    /// Optimizer iterations.
    pub max_iterations: Option<u64>,
    /// Verification estimator (`"mc"` | `"is"` | `"norm-min"`); unset
    /// takes the daemon's `SPECWISE_ESTIMATOR` default.
    pub estimator: Option<String>,
}

/// A connected client. One request runs at a time per connection; open
/// several clients for concurrent submissions.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_json(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Reads one response and converts `{"ok":false,...}` into
    /// [`ClientError::Server`].
    fn read_ok(&mut self) -> Result<Json, ClientError> {
        let j = self.read_json()?;
        match j.get("ok") {
            Some(Json::Bool(true)) => Ok(j),
            Some(Json::Bool(false)) => {
                let err = j.get("error");
                let get = |key: &str| {
                    err.and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_owned()
                };
                Err(ClientError::Server {
                    kind: get("kind"),
                    message: get("message"),
                })
            }
            _ => Err(ClientError::Protocol(
                "response is missing the \"ok\" field".into(),
            )),
        }
    }

    /// Submits a deck; returns the daemon-assigned job id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] of kind `"deck"` when the deck is
    /// rejected at the ingestion boundary.
    pub fn submit(&mut self, deck: &str, opts: &SubmitOptions) -> Result<String, ClientError> {
        let tenant = if opts.tenant.is_empty() {
            "default".to_owned()
        } else {
            opts.tenant.clone()
        };
        let mut request = JobRequest::new(deck.to_owned(), tenant);
        request.seed = opts.seed;
        request.mc_samples = opts.mc_samples;
        request.verify_samples = opts.verify_samples;
        request.max_iterations = opts.max_iterations;
        request.estimator = opts.estimator.clone();
        self.send(&Request::Submit(request))?;
        let j = self.read_ok()?;
        j.get("job")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("submit response lacks a job id".into()))
    }

    /// Fetches the parsed `status` response (job table + metrics).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Status)?;
        self.read_ok()
    }

    /// Polls a job without blocking: its state string plus the outcome
    /// once done.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` for never-submitted ids.
    pub fn poll(&mut self, job: &str) -> Result<(String, Option<JobOutcome>), ClientError> {
        self.send(&Request::Result {
            job: job.to_owned(),
            wait: false,
        })?;
        let j = self.read_ok()?;
        let state = j
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("result response lacks a state".into()))?
            .to_owned();
        let outcome = match j.get("outcome") {
            Some(out) => Some(JobOutcome::from_json(out).map_err(ClientError::Protocol)?),
            None => None,
        };
        Ok((state, outcome))
    }

    /// Blocks until the job settles and returns its outcome.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] of kind `"job-failed"` when the job
    /// settled with an error, `"unknown-job"` for never-submitted ids.
    pub fn result_wait(&mut self, job: &str) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Result {
            job: job.to_owned(),
            wait: true,
        })?;
        let j = self.read_ok()?;
        match j.get("outcome") {
            Some(out) => JobOutcome::from_json(out).map_err(ClientError::Protocol),
            None => {
                let message = j
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("job settled without an outcome")
                    .to_owned();
                Err(ClientError::Server {
                    kind: "job-failed".into(),
                    message,
                })
            }
        }
    }

    /// Subscribes to a job's journal and collects the streamed records
    /// until the end-of-stream marker: the run's full Fig. 6 span tree
    /// (backlog plus live records, loss-free and in emission order).
    /// Returns the records and the job's final state string.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` for never-submitted ids; protocol errors for
    /// undecodable records.
    pub fn subscribe(&mut self, job: &str) -> Result<(Vec<Record>, String), ClientError> {
        self.send(&Request::Subscribe {
            job: job.to_owned(),
        })?;
        self.read_ok()?;
        let mut records = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "stream ended without an end marker".into(),
                ));
            }
            let text = line.trim_end();
            if text.is_empty() {
                continue;
            }
            let j = json::parse(text)
                .map_err(|e| ClientError::Protocol(format!("unparseable stream line: {e}")))?;
            if is_end_marker(&j) {
                let state = j
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned();
                return Ok((records, state));
            }
            let record = Record::from_json_str(text)
                .map_err(|e| ClientError::Protocol(format!("undecodable record: {e}")))?;
            records.push(record);
        }
    }
}
