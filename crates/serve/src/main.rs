//! The `specwise-serve` binary: starts the daemon from `SPECWISE_SERVE_*`
//! environment knobs and serves until the process is killed. Queued and
//! running jobs survive the kill in the spool; the next start resumes
//! them from their checkpoints bit-for-bit.

use std::io::Write;

use specwise_serve::{Daemon, ServeConfig};

fn main() {
    let cfg = ServeConfig::from_env();
    let spool = cfg.spool.display().to_string();
    match Daemon::start(cfg) {
        Ok(daemon) => {
            // The handshake line tells wrappers (and the e2e test) the
            // resolved address when the config asked for port 0.
            println!("specwise-serve listening on {}", daemon.local_addr());
            println!("specwise-serve spool at {spool}");
            let _ = std::io::stdout().flush();
            daemon.join();
        }
        Err(e) => {
            eprintln!("specwise-serve: failed to start: {e}");
            std::process::exit(1);
        }
    }
}
