//! The durable per-tenant budget ledger: append-only charge records in
//! the spool, so tenant simulation budgets hold across every daemon
//! sharing it — and across restarts.
//!
//! Layout: `spool/ledger/<tenant>@<owner>.ledger`, one file per
//! (tenant, daemon) pair, each line the daemon's *cumulative* local
//! charge total for that tenant at write time. Single writer per file
//! (the owning daemon, in append mode), any number of readers. The
//! last parseable line wins: totals are monotone, so a crash that
//! truncates the final line merely under-reports until the next append —
//! charges are never lost, only reported late. Identifiers are encoded
//! with [`crate::lease::sanitize`], so arbitrary tenant names are safe.
//!
//! Reconciliation: each daemon periodically appends its own totals
//! (skipping no-change appends) and folds the *other* owners' totals
//! into the in-process [`SharedBudget`]
//! via `set_external`, which enforces `local + external ≤ budget`. The
//! scheme is conservative — a daemon that loses its lease mid-job still
//! reports its charges — so fleet-wide spend can be over-counted briefly,
//! never under-counted beyond one reconcile interval.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use specwise_harden::SharedBudget;

use crate::lease::sanitize;

/// Handle on the spool ledger for one daemon (`owner`).
#[derive(Debug)]
pub struct TenantLedger {
    dir: PathBuf,
    owner: String,
    /// Last value appended per tenant, to skip no-change appends.
    last_written: Mutex<HashMap<String, u64>>,
}

/// Directory holding the ledger files.
pub fn ledger_dir(spool: &Path) -> PathBuf {
    spool.join("ledger")
}

fn last_total(path: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    // Last parseable line wins; a torn final line falls back to the
    // previous complete one.
    text.lines()
        .rev()
        .find_map(|line| line.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

impl TenantLedger {
    /// Opens (creating if needed) the ledger directory under `spool` for
    /// daemon `owner`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failure.
    pub fn open(spool: &Path, owner: &str) -> io::Result<TenantLedger> {
        let dir = ledger_dir(spool);
        std::fs::create_dir_all(&dir)?;
        Ok(TenantLedger {
            dir,
            owner: owner.to_string(),
            last_written: Mutex::new(HashMap::new()),
        })
    }

    fn file_for(&self, tenant: &str, owner: &str) -> PathBuf {
        self.dir
            .join(format!("{}@{}.ledger", sanitize(tenant), sanitize(owner)))
    }

    /// Appends this daemon's cumulative charge total for `tenant`. A
    /// value equal to the last appended one is skipped (heartbeat-driven
    /// reconciliation would otherwise grow the file without information).
    ///
    /// # Errors
    ///
    /// Propagates append failures; callers warn and continue (a missed
    /// append under-reports for one interval, nothing more).
    pub fn record(&self, tenant: &str, used: u64) -> io::Result<()> {
        {
            let last = self.last_written.lock().unwrap();
            if last.get(tenant) == Some(&used) {
                return Ok(());
            }
        }
        let path = self.file_for(tenant, &self.owner);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(file, "{used}")?;
        file.sync_data()?;
        self.last_written
            .lock()
            .unwrap()
            .insert(tenant.to_string(), used);
        Ok(())
    }

    /// Sum of the cumulative totals every *other* owner has recorded for
    /// `tenant` — the value to fold into the local meter via
    /// `SharedBudget::set_external`.
    pub fn others_used(&self, tenant: &str) -> u64 {
        let own = self.file_for(tenant, &self.owner);
        self.tenant_files(tenant)
            .filter(|path| *path != own)
            .map(|path| last_total(&path))
            .sum()
    }

    /// Fleet-wide charge total for `tenant`: every owner's recorded total
    /// plus `local_unrecorded` (the live local count, which may be ahead
    /// of this daemon's last append).
    pub fn fleet_used(&self, tenant: &str, local_used: u64) -> u64 {
        self.others_used(tenant).saturating_add(local_used)
    }

    /// Every tenant with at least one ledger file, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut tenants: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let stem = name.strip_suffix(".ledger")?;
                let (tenant, _owner) = stem.split_once('@')?;
                Some(decode(tenant))
            })
            .collect();
        tenants.sort();
        tenants.dedup();
        tenants
    }

    /// Reconciles one tenant budget against the spool: appends the local
    /// total, reads the peers' totals, and folds them into the meter.
    /// Ledger I/O failures warn and keep the in-process semantics.
    pub fn reconcile(&self, tenant: &str, budget: &SharedBudget) {
        if let Err(e) = self.record(tenant, budget.used()) {
            eprintln!("specwise-serve: ledger append for tenant {tenant:?} failed: {e}");
        }
        budget.set_external(self.others_used(tenant));
    }
}

/// Inverse of [`sanitize`]: decodes `%XX` escapes (lossy on malformed
/// escapes, which only unsanitized hand-made files can contain).
fn decode(name: &str) -> String {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(b) = name
                .get(i + 1..i + 3)
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
            {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl TenantLedger {
    fn tenant_files<'a>(&'a self, tenant: &str) -> impl Iterator<Item = PathBuf> + 'a {
        let prefix = format!("{}@", sanitize(tenant));
        std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(move |e| {
                let name = e.file_name().into_string().ok()?;
                (name.starts_with(&prefix) && name.ends_with(".ledger")).then(|| e.path())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spool(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "specwise-ledger-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn totals_are_cumulative_and_fleet_wide() {
        let dir = spool("fleet");
        let a = TenantLedger::open(&dir, "daemon-a").unwrap();
        let b = TenantLedger::open(&dir, "daemon-b").unwrap();
        a.record("acme", 10).unwrap();
        a.record("acme", 25).unwrap();
        b.record("acme", 7).unwrap();
        // Each daemon sees only the *others'* totals as external.
        assert_eq!(a.others_used("acme"), 7);
        assert_eq!(b.others_used("acme"), 25);
        assert_eq!(a.fleet_used("acme", 25), 32);
        assert_eq!(a.others_used("unknown"), 0);
        assert_eq!(a.tenants(), vec!["acme".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconcile_folds_peers_into_the_budget() {
        let dir = spool("reconcile");
        let a = TenantLedger::open(&dir, "a").unwrap();
        let b = TenantLedger::open(&dir, "b").unwrap();
        b.record("acme", 60).unwrap();
        let budget = SharedBudget::new(100);
        a.reconcile("acme", &budget);
        assert_eq!(budget.external(), 60);
        assert!(!budget.tripped());
        // The peer over-spends; the next reconcile trips the local meter
        // without a single local charge.
        b.record("acme", 130).unwrap();
        a.reconcile("acme", &budget);
        assert!(budget.tripped());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_lines_fall_back_to_the_previous_total() {
        let dir = spool("torn");
        let a = TenantLedger::open(&dir, "a").unwrap();
        let b = TenantLedger::open(&dir, "b").unwrap();
        b.record("acme", 40).unwrap();
        // Simulate a crash mid-append on b's file: a tail that never
        // finished writing does not parse, so the previous total stands.
        let path = ledger_dir(&dir).join("acme@b.ledger");
        std::fs::write(&path, "40\n58garbage").unwrap();
        assert_eq!(a.others_used("acme"), 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn odd_tenant_names_round_trip_through_the_filesystem() {
        let dir = spool("names");
        let a = TenantLedger::open(&dir, "a").unwrap();
        let tenant = "acme corp/eu@2";
        a.record(tenant, 5).unwrap();
        assert_eq!(a.tenants(), vec![tenant.to_string()]);
        assert_eq!(a.others_used(tenant), 0);
        let b = TenantLedger::open(&dir, "b").unwrap();
        assert_eq!(b.others_used(tenant), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_change_appends_are_skipped() {
        let dir = spool("dedupe");
        let a = TenantLedger::open(&dir, "a").unwrap();
        a.record("acme", 10).unwrap();
        a.record("acme", 10).unwrap();
        a.record("acme", 10).unwrap();
        let path = ledger_dir(&dir).join("acme@a.ledger");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "10\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
