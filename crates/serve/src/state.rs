//! Shared daemon state: the job table, the FIFO queue the worker pool
//! drains, per-tenant simulation budgets, and service metrics.
//!
//! One mutex guards the whole state (job turnover is a few per minute —
//! contention is not a concern); two condvars signal the two things
//! threads wait for: queued work (worker pool) and settled jobs
//! (`result --wait` connections).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use specwise_harden::SharedBudget;
use specwise_trace::json::{self};
use specwise_trace::Journal;

use crate::job::{JobOutcome, JobSpec};
use crate::protocol::WireError;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker slot.
    Queued,
    /// A worker is running the optimization.
    Running,
    /// A peer daemon holds the job's spool lease and is running it; this
    /// daemon tracks it and settles it from the spool when the peer's
    /// outcome lands (or re-queues it when the peer's lease expires).
    Remote,
    /// Settled successfully; the outcome is available.
    Done,
    /// Settled with an error.
    Failed,
}

impl JobState {
    /// The state's wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Remote => "remote",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn settled(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// One job's full record in the table.
#[derive(Clone)]
pub struct JobEntry {
    /// The accepted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's run journal; subscribers attach here for the live span
    /// stream (backlog included, so late subscribers see the whole run).
    pub journal: Arc<Journal>,
    /// The result, once [`JobState::Done`].
    pub outcome: Option<JobOutcome>,
    /// The failure reason, once [`JobState::Failed`].
    pub error: Option<String>,
    /// The daemon owner id running the job, once known: this daemon's
    /// own id for local runs, the lease holder's for [`JobState::Remote`]
    /// jobs. Reported in the `status` job rows.
    pub holder: Option<String>,
}

impl std::fmt::Debug for JobEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEntry")
            .field("spec", &self.spec)
            .field("state", &self.state)
            .field("journal_records", &self.journal.len())
            .field("outcome", &self.outcome)
            .field("error", &self.error)
            .finish()
    }
}

/// Service-level counters reported by `status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Jobs accepted since daemon start (including recovered ones).
    pub jobs_submitted: u64,
    /// Jobs settled successfully by this daemon's own workers.
    pub jobs_done: u64,
    /// Jobs settled with an error.
    pub jobs_failed: u64,
    /// Jobs settled from the spool after a peer daemon ran them (their
    /// sims/cache counters belong to the peer and are *not* folded into
    /// this daemon's totals).
    pub jobs_remote: u64,
    /// Evaluation-cache hits summed over settled jobs.
    pub cache_hits: u64,
    /// Evaluation-cache misses summed over settled jobs.
    pub cache_misses: u64,
    /// Simulator calls summed over settled jobs.
    pub total_sims: u64,
    /// Adjoint/sensitivity solves summed over settled jobs (tracked
    /// beside, never inside, [`Metrics::total_sims`]).
    pub adjoint_solves: u64,
    /// Full simulations the adjoint shortcut avoided, summed over settled
    /// jobs.
    pub fd_sims_avoided: u64,
}

impl Metrics {
    /// Cache hit rate over settled jobs (`None` before any lookup).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// Fleet-level figures assembled by the daemon (lease registry, liveness
/// files, spool ledger) and rendered into the `status` response.
#[derive(Debug, Clone, Default)]
pub struct FleetStatus {
    /// This daemon's owner id.
    pub owner: String,
    /// Daemons with a fresh liveness file in the spool (incl. this one).
    pub daemons_live: usize,
    /// Leases this daemon currently holds.
    pub leases_held: usize,
    /// Leases this daemon stole from expired holders since start.
    pub leases_stolen: u64,
    /// Expired peer leases this daemon observed (and re-queued) since
    /// start.
    pub leases_expired: u64,
    /// Leases this daemon lost to a thief while running (paused past the
    /// expiry window) since start.
    pub leases_lost: u64,
    /// Fleet-wide cumulative sim charges per tenant, from the spool
    /// ledger (covers tenants active on *any* daemon, sorted by name).
    pub tenants_fleet: Vec<(String, u64)>,
}

#[derive(Debug)]
struct Inner {
    jobs: HashMap<String, JobEntry>,
    /// Submission order, for a stable `status` listing.
    order: Vec<String>,
    queue: VecDeque<String>,
    tenants: HashMap<String, Arc<SharedBudget>>,
    /// Per-tenant `(adjoint_solves, fd_sims_avoided)` sums over settled
    /// jobs, reported in the `status` tenant rows.
    tenant_adjoint: HashMap<String, (u64, u64)>,
    metrics: Metrics,
    next_id: u64,
    shutdown: bool,
}

/// The daemon's shared state. All methods are safe to call from any
/// connection-handler or worker thread.
#[derive(Debug)]
pub struct ServeState {
    inner: Mutex<Inner>,
    queue_cv: Condvar,
    done_cv: Condvar,
    tenant_budget: u64,
}

impl ServeState {
    /// Creates empty state; each new tenant gets a fresh simulation
    /// budget of `tenant_budget` evaluation calls.
    pub fn new(tenant_budget: u64) -> ServeState {
        ServeState {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                order: Vec::new(),
                queue: VecDeque::new(),
                tenants: HashMap::new(),
                tenant_adjoint: HashMap::new(),
                metrics: Metrics::default(),
                next_id: 1,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            tenant_budget,
        }
    }

    /// Allocates the next job id (`job-0001`, `job-0002`, …).
    pub fn next_id(&self) -> String {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        format!("job-{id:04}")
    }

    /// Ensures future [`ServeState::next_id`] calls start above `seen`
    /// (used when recovering spooled jobs after a restart).
    pub fn reserve_ids_through(&self, seen: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.next_id = inner.next_id.max(seen + 1);
    }

    /// Inserts an accepted job and queues it for the worker pool.
    pub fn enqueue(&self, spec: JobSpec) -> Arc<Journal> {
        let journal = Arc::new(Journal::in_memory());
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id.clone();
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                journal: Arc::clone(&journal),
                outcome: None,
                error: None,
                holder: None,
            },
        );
        inner.order.push(id.clone());
        inner.queue.push_back(id);
        inner.metrics.jobs_submitted += 1;
        drop(inner);
        self.queue_cv.notify_one();
        journal
    }

    /// Like [`ServeState::enqueue`], but only when the id is not already
    /// known — the spool-scan path, where this daemon discovers jobs a
    /// peer submitted to the shared spool. Returns `false` (and changes
    /// nothing) for known ids.
    pub fn adopt(&self, spec: JobSpec) -> bool {
        {
            let inner = self.inner.lock().unwrap();
            if inner.jobs.contains_key(&spec.id) {
                return false;
            }
        }
        self.enqueue(spec);
        true
    }

    /// `true` when the job id is in the table (any state).
    pub fn known(&self, id: &str) -> bool {
        self.inner.lock().unwrap().jobs.contains_key(id)
    }

    /// Inserts an already-settled job recovered from the spool (its
    /// `.out` was written by a previous process or by a peer daemon),
    /// so clients can still fetch it. Counted as remote work: this
    /// process did not run it, so `jobs_done` — runs completed *here* —
    /// is untouched and stays fleet-additive.
    pub fn insert_settled(&self, spec: JobSpec, outcome: JobOutcome) {
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id.clone();
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Done,
                journal: Arc::new(Journal::in_memory()),
                outcome: Some(outcome),
                error: None,
                holder: None,
            },
        );
        inner.order.push(id);
        inner.metrics.jobs_submitted += 1;
        inner.metrics.jobs_remote += 1;
    }

    /// Inserts a job that settled with an error in some previous process
    /// (its `.fail` marker survived in the spool), so clients get the
    /// failure instead of an automatic — and likely identical — re-run.
    pub fn insert_failed(&self, spec: JobSpec, reason: String) {
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id.clone();
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Failed,
                journal: Arc::new(Journal::in_memory()),
                outcome: None,
                error: Some(reason),
                holder: None,
            },
        );
        inner.order.push(id);
        inner.metrics.jobs_submitted += 1;
        inner.metrics.jobs_remote += 1;
        inner.metrics.jobs_failed += 1;
    }

    /// Blocks until a job is queued (returning its spec, journal, and the
    /// tenant's budget) or the daemon shuts down (returning `None`).
    pub fn claim(&self) -> Option<(JobSpec, Arc<Journal>, Arc<SharedBudget>)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let budget_cap = self.tenant_budget;
                let entry = inner.jobs.get_mut(&id).expect("queued job has an entry");
                entry.state = JobState::Running;
                let spec = entry.spec.clone();
                let journal = Arc::clone(&entry.journal);
                let budget = Arc::clone(
                    inner
                        .tenants
                        .entry(spec.tenant.clone())
                        .or_insert_with(|| Arc::new(SharedBudget::new(budget_cap))),
                );
                return Some((spec, journal, budget));
            }
            inner = self.queue_cv.wait(inner).unwrap();
        }
    }

    /// Settles a job with its result and wakes `result --wait` clients.
    pub fn finish(&self, id: &str, result: Result<JobOutcome, String>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            match result {
                Ok(outcome) => {
                    entry.state = JobState::Done;
                    entry.outcome = Some(outcome.clone());
                    let tenant = entry.spec.tenant.clone();
                    inner.metrics.jobs_done += 1;
                    inner.metrics.cache_hits += outcome.cache_hits;
                    inner.metrics.cache_misses += outcome.cache_misses;
                    inner.metrics.total_sims += outcome.total_sims;
                    inner.metrics.adjoint_solves += outcome.adjoint_solves;
                    inner.metrics.fd_sims_avoided += outcome.fd_sims_avoided;
                    let t = inner.tenant_adjoint.entry(tenant).or_default();
                    t.0 += outcome.adjoint_solves;
                    t.1 += outcome.fd_sims_avoided;
                }
                Err(reason) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(reason);
                    inner.metrics.jobs_failed += 1;
                }
            }
        }
        drop(inner);
        self.done_cv.notify_all();
    }

    /// Marks a claimed-but-not-runnable job as held by a peer daemon:
    /// the worker popped it from the queue, tried the spool lease, and
    /// found `holder`'s fresh lease on it. The fleet loop settles it from
    /// the spool (peer finished) or re-queues it (peer's lease expired).
    pub fn mark_remote(&self, id: &str, holder: String) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            if !entry.state.settled() {
                entry.state = JobState::Remote;
                entry.holder = Some(holder);
            }
        }
    }

    /// Records which daemon is running a job (local claims stamp their
    /// own owner id here, so `status` shows the holder of every job).
    pub fn set_holder(&self, id: &str, holder: String) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            entry.holder = Some(holder);
        }
    }

    /// Puts a [`JobState::Remote`] job back in the queue — its holder's
    /// lease expired, so a local worker should try to steal it.
    pub fn requeue(&self, id: &str) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            if entry.state == JobState::Remote {
                entry.state = JobState::Queued;
                entry.holder = None;
                inner.queue.push_back(id.to_string());
                drop(inner);
                self.queue_cv.notify_one();
            }
        }
    }

    /// Settles a remote job with the outcome its peer wrote to the spool
    /// and wakes `result --wait` clients. Unlike [`ServeState::finish`],
    /// the peer's sim/cache counters are *not* folded into this daemon's
    /// metrics — they are the peer's work.
    pub fn settle_remote(&self, id: &str, outcome: JobOutcome) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            if !entry.state.settled() {
                entry.state = JobState::Done;
                entry.outcome = Some(outcome);
                inner.metrics.jobs_remote += 1;
            }
        }
        drop(inner);
        self.done_cv.notify_all();
    }

    /// Settles a remote job with the failure its peer recorded.
    pub fn fail_remote(&self, id: &str, reason: String) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            if !entry.state.settled() {
                entry.state = JobState::Failed;
                entry.error = Some(reason);
                inner.metrics.jobs_remote += 1;
                inner.metrics.jobs_failed += 1;
            }
        }
        drop(inner);
        self.done_cv.notify_all();
    }

    /// Ids of jobs currently in [`JobState::Remote`].
    pub fn remote_jobs(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        inner
            .order
            .iter()
            .filter(|id| inner.jobs[*id].state == JobState::Remote)
            .cloned()
            .collect()
    }

    /// Snapshot of every tenant budget this daemon has instantiated
    /// (the fleet loop reconciles each against the spool ledger).
    pub fn tenant_budgets(&self) -> Vec<(String, Arc<SharedBudget>)> {
        let inner = self.inner.lock().unwrap();
        inner
            .tenants
            .iter()
            .map(|(tenant, budget)| (tenant.clone(), Arc::clone(budget)))
            .collect()
    }

    /// Blocks for up to `timeout` or until shutdown; `true` on shutdown.
    /// The fleet loop's tick timer, so a shutting-down daemon never waits
    /// out a full heartbeat interval.
    pub fn wait_shutdown(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        while !inner.shutdown {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _) = self.done_cv.wait_timeout(inner, remaining).unwrap();
            inner = guard;
        }
        true
    }

    /// A snapshot of one job's entry.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` when the id was never accepted.
    pub fn entry(&self, id: &str) -> Result<JobEntry, WireError> {
        let inner = self.inner.lock().unwrap();
        inner
            .jobs
            .get(id)
            .cloned()
            .ok_or_else(|| WireError::new("unknown-job", format!("no such job {id:?}")))
    }

    /// Blocks until the job settles, then returns its entry.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` when the id was never accepted.
    pub fn wait_settled(&self, id: &str) -> Result<JobEntry, WireError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.jobs.get(id) {
                None => return Err(WireError::new("unknown-job", format!("no such job {id:?}"))),
                Some(entry) if entry.state.settled() => return Ok(entry.clone()),
                Some(_) => inner = self.done_cv.wait(inner).unwrap(),
            }
        }
    }

    /// Signals shutdown: wakes the worker pool (which exits after its
    /// current jobs) and any waiting clients.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.queue_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// `true` once [`ServeState::shutdown`] was called.
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }

    /// A snapshot of the service metrics.
    pub fn metrics(&self) -> Metrics {
        self.inner.lock().unwrap().metrics
    }

    /// The `status` response: job table, metrics with cache hit rate, and
    /// per-tenant simulation counts (the tenant budget is reported only
    /// when finite). With a [`FleetStatus`] (a daemon sharing its spool),
    /// job rows carry the holding daemon, tenant rows carry fleet-wide
    /// sim totals, and a `fleet` object reports lease/liveness figures.
    pub fn status_line(&self, fleet: Option<&FleetStatus>) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"ok\":true,\"jobs\":[");
        for (i, id) in inner.order.iter().enumerate() {
            let entry = &inner.jobs[id];
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"job\":");
            json::write_json_string(&mut out, id);
            out.push_str(",\"tenant\":");
            json::write_json_string(&mut out, &entry.spec.tenant);
            out.push_str(",\"state\":");
            json::write_json_string(&mut out, entry.state.as_str());
            out.push_str(",\"estimator\":");
            json::write_json_string(&mut out, &entry.spec.options.estimator.to_string());
            if let Some(holder) = &entry.holder {
                out.push_str(",\"holder\":");
                json::write_json_string(&mut out, holder);
            }
            if let Some(ess) = entry.outcome.as_ref().and_then(|o| o.ess) {
                out.push_str(",\"ess\":");
                json::write_f64(&mut out, ess);
            }
            out.push('}');
        }
        let m = &inner.metrics;
        out.push_str(&format!(
            "],\"metrics\":{{\"jobs_submitted\":{},\"jobs_done\":{},\"jobs_failed\":{},\
             \"jobs_remote\":{},\
             \"queue_depth\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":",
            m.jobs_submitted,
            m.jobs_done,
            m.jobs_failed,
            m.jobs_remote,
            inner.queue.len(),
            m.cache_hits,
            m.cache_misses,
        ));
        match m.cache_hit_rate() {
            Some(rate) => json::write_f64(&mut out, rate),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"total_sims\":{},\"adjoint_solves\":{},\"fd_sims_avoided\":{},\"tenants\":[",
            m.total_sims, m.adjoint_solves, m.fd_sims_avoided
        ));
        let mut tenants: Vec<_> = inner.tenants.iter().collect();
        tenants.sort_by(|a, b| a.0.cmp(b.0));
        for (i, (tenant, budget)) in tenants.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            json::write_json_string(&mut out, tenant);
            out.push_str(&format!(",\"sims\":{}", budget.used()));
            if fleet.is_some() {
                out.push_str(&format!(",\"sims_fleet\":{}", budget.total_used()));
            }
            let (adj, avoided) = inner
                .tenant_adjoint
                .get(tenant)
                .copied()
                .unwrap_or_default();
            out.push_str(&format!(
                ",\"adjoint_solves\":{adj},\"fd_sims_avoided\":{avoided}"
            ));
            if budget.budget() != u64::MAX {
                out.push_str(&format!(",\"budget\":{}", budget.budget()));
            }
            out.push_str(&format!(",\"tripped\":{}}}", budget.tripped()));
        }
        out.push_str("]}");
        if let Some(f) = fleet {
            out.push_str(",\"fleet\":{\"owner\":");
            json::write_json_string(&mut out, &f.owner);
            out.push_str(&format!(
                ",\"daemons_live\":{},\"leases_held\":{},\"leases_stolen\":{},\
                 \"leases_expired\":{},\"leases_lost\":{},\"tenants\":[",
                f.daemons_live, f.leases_held, f.leases_stolen, f.leases_expired, f.leases_lost
            ));
            for (i, (tenant, sims)) in f.tenants_fleet.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"tenant\":");
                json::write_json_string(&mut out, tenant);
                out.push_str(&format!(",\"sims\":{sims}}}"));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOptions;

    fn spec(id: &str, tenant: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: tenant.into(),
            deck: "vdd vdd 0 3.3".into(),
            options: JobOptions::default(),
        }
    }

    fn outcome() -> JobOutcome {
        JobOutcome {
            design: vec![1.0],
            estimated_yield: 0.9,
            verified_yield: None,
            yield_interval: None,
            estimator: "mc".into(),
            ess: None,
            total_sims: 10,
            adjoint_solves: 4,
            fd_sims_avoided: 12,
            resumed: false,
            cache_hits: 3,
            cache_misses: 1,
        }
    }

    #[test]
    fn jobs_flow_queued_running_done_and_wake_waiters() {
        let state = Arc::new(ServeState::new(u64::MAX));
        state.enqueue(spec("job-0001", "a"));
        let (claimed, _journal, budget) = state.claim().unwrap();
        assert_eq!(claimed.id, "job-0001");
        assert_eq!(state.entry("job-0001").unwrap().state, JobState::Running);
        assert_eq!(budget.budget(), u64::MAX);

        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.wait_settled("job-0001").unwrap())
        };
        state.finish("job-0001", Ok(outcome()));
        let entry = waiter.join().unwrap();
        assert_eq!(entry.state, JobState::Done);
        assert_eq!(entry.outcome.unwrap().total_sims, 10);
        let m = state.metrics();
        assert_eq!((m.jobs_done, m.cache_hits, m.cache_misses), (1, 3, 1));
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn tenants_share_one_budget_and_ids_respect_recovery() {
        let state = ServeState::new(100);
        state.enqueue(spec("job-0001", "acme"));
        state.enqueue(spec("job-0002", "acme"));
        state.enqueue(spec("job-0003", "other"));
        let (_, _, b1) = state.claim().unwrap();
        let (_, _, b2) = state.claim().unwrap();
        let (_, _, b3) = state.claim().unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "same tenant ⇒ same budget");
        assert!(!Arc::ptr_eq(&b1, &b3), "different tenant ⇒ own budget");
        assert_eq!(b1.budget(), 100);

        state.reserve_ids_through(7);
        assert_eq!(state.next_id(), "job-0008");
    }

    #[test]
    fn unknown_jobs_and_shutdown_are_clean() {
        let state = ServeState::new(u64::MAX);
        assert_eq!(state.entry("job-9999").unwrap_err().kind, "unknown-job");
        assert_eq!(
            state.wait_settled("job-9999").unwrap_err().kind,
            "unknown-job"
        );
        state.shutdown();
        assert!(state.claim().is_none(), "shutdown unblocks the pool");
        assert!(state.is_shutdown());
    }

    #[test]
    fn status_line_is_valid_json_with_tenant_rows() {
        let state = ServeState::new(50);
        state.enqueue(spec("job-0001", "acme"));
        let (_, _, budget) = state.claim().unwrap();
        let _ = budget;
        state.finish("job-0001", Err("deck rejected: bad".into()));
        let j = json::parse(&state.status_line(None)).unwrap();
        let jobs = j.get("jobs").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0].get("estimator").and_then(|x| x.as_str()),
            Some("mc")
        );
        let metrics = j.get("metrics").unwrap();
        assert_eq!(metrics.get("jobs_failed").and_then(|x| x.as_u64()), Some(1));
        let tenants = metrics.get("tenants").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(
            tenants[0].get("tenant").and_then(|x| x.as_str()),
            Some("acme")
        );
        assert_eq!(tenants[0].get("budget").and_then(|x| x.as_u64()), Some(50));
    }

    #[test]
    fn status_line_reports_ess_of_settled_is_jobs() {
        let state = ServeState::new(u64::MAX);
        let mut is_spec = spec("job-0001", "acme");
        is_spec.options.estimator = specwise::EstimatorKind::NormMin;
        state.enqueue(is_spec);
        let _ = state.claim().unwrap();
        state.finish(
            "job-0001",
            Ok(JobOutcome {
                estimator: "norm-min".into(),
                ess: Some(44.5),
                ..outcome()
            }),
        );
        let j = json::parse(&state.status_line(None)).unwrap();
        let jobs = j.get("jobs").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(
            jobs[0].get("estimator").and_then(|x| x.as_str()),
            Some("norm-min")
        );
        assert_eq!(jobs[0].get("ess").and_then(|x| x.as_f64()), Some(44.5));
    }

    #[test]
    fn remote_jobs_settle_without_polluting_local_counters() {
        let state = Arc::new(ServeState::new(u64::MAX));
        state.enqueue(spec("job-0001", "acme"));
        let _ = state.claim().unwrap();
        // The worker lost the lease race: the job is a peer's now.
        state.mark_remote("job-0001", "peer-1".into());
        assert_eq!(state.entry("job-0001").unwrap().state, JobState::Remote);
        assert_eq!(state.remote_jobs(), vec!["job-0001".to_string()]);

        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.wait_settled("job-0001").unwrap())
        };
        state.settle_remote("job-0001", outcome());
        let entry = waiter.join().unwrap();
        assert_eq!(entry.state, JobState::Done);
        assert_eq!(entry.holder.as_deref(), Some("peer-1"));
        let m = state.metrics();
        assert_eq!(m.jobs_remote, 1);
        assert_eq!(m.jobs_done, 0, "the peer's work is not local work");
        assert_eq!(m.total_sims, 0);
    }

    #[test]
    fn expired_remote_jobs_requeue_for_a_local_steal() {
        let state = ServeState::new(u64::MAX);
        state.enqueue(spec("job-0001", "acme"));
        let _ = state.claim().unwrap();
        state.mark_remote("job-0001", "peer-1".into());
        state.requeue("job-0001");
        let entry = state.entry("job-0001").unwrap();
        assert_eq!(entry.state, JobState::Queued);
        assert_eq!(entry.holder, None);
        // And it is actually claimable again.
        let (claimed, _, _) = state.claim().unwrap();
        assert_eq!(claimed.id, "job-0001");
        // requeue on a non-Remote job is a no-op.
        state.requeue("job-0001");
        assert_eq!(state.entry("job-0001").unwrap().state, JobState::Running);
    }

    #[test]
    fn adoption_skips_known_ids_and_failures_persist() {
        let state = ServeState::new(u64::MAX);
        assert!(state.adopt(spec("job-0001", "a")));
        assert!(!state.adopt(spec("job-0001", "a")), "already known");
        assert!(state.known("job-0001"));
        state.insert_failed(spec("job-0002", "a"), "diverged".into());
        let entry = state.entry("job-0002").unwrap();
        assert_eq!(entry.state, JobState::Failed);
        assert_eq!(entry.error.as_deref(), Some("diverged"));
        assert_eq!(state.metrics().jobs_failed, 1);
    }

    #[test]
    fn status_line_renders_fleet_and_holder_fields() {
        let state = ServeState::new(50);
        state.enqueue(spec("job-0001", "acme"));
        let (_, _, budget) = state.claim().unwrap();
        state.set_holder("job-0001", "d-1".into());
        budget.set_external(7);
        let fleet = FleetStatus {
            owner: "d-1".into(),
            daemons_live: 2,
            leases_held: 1,
            leases_stolen: 3,
            leases_expired: 4,
            leases_lost: 0,
            tenants_fleet: vec![("acme".into(), 7)],
        };
        let j = json::parse(&state.status_line(Some(&fleet))).unwrap();
        let jobs = j.get("jobs").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(jobs[0].get("holder").and_then(|x| x.as_str()), Some("d-1"));
        let tenants = j
            .get("metrics")
            .and_then(|m| m.get("tenants"))
            .and_then(|x| x.as_arr())
            .unwrap();
        assert_eq!(
            tenants[0].get("sims_fleet").and_then(|x| x.as_u64()),
            Some(7)
        );
        let f = j.get("fleet").unwrap();
        assert_eq!(f.get("owner").and_then(|x| x.as_str()), Some("d-1"));
        assert_eq!(f.get("daemons_live").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(f.get("leases_stolen").and_then(|x| x.as_u64()), Some(3));
        let ft = f.get("tenants").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(ft[0].get("sims").and_then(|x| x.as_u64()), Some(7));
        // Without fleet context neither the fleet object nor the
        // fleet-only tenant field appears.
        let plain = json::parse(&state.status_line(None)).unwrap();
        assert!(plain.get("fleet").is_none());
    }
}
