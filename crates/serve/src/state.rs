//! Shared daemon state: the job table, the FIFO queue the worker pool
//! drains, per-tenant simulation budgets, and service metrics.
//!
//! One mutex guards the whole state (job turnover is a few per minute —
//! contention is not a concern); two condvars signal the two things
//! threads wait for: queued work (worker pool) and settled jobs
//! (`result --wait` connections).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use specwise_harden::SharedBudget;
use specwise_trace::json::{self};
use specwise_trace::Journal;

use crate::job::{JobOutcome, JobSpec};
use crate::protocol::WireError;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker slot.
    Queued,
    /// A worker is running the optimization.
    Running,
    /// Settled successfully; the outcome is available.
    Done,
    /// Settled with an error.
    Failed,
}

impl JobState {
    /// The state's wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn settled(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// One job's full record in the table.
#[derive(Clone)]
pub struct JobEntry {
    /// The accepted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's run journal; subscribers attach here for the live span
    /// stream (backlog included, so late subscribers see the whole run).
    pub journal: Arc<Journal>,
    /// The result, once [`JobState::Done`].
    pub outcome: Option<JobOutcome>,
    /// The failure reason, once [`JobState::Failed`].
    pub error: Option<String>,
}

impl std::fmt::Debug for JobEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEntry")
            .field("spec", &self.spec)
            .field("state", &self.state)
            .field("journal_records", &self.journal.len())
            .field("outcome", &self.outcome)
            .field("error", &self.error)
            .finish()
    }
}

/// Service-level counters reported by `status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Jobs accepted since daemon start (including recovered ones).
    pub jobs_submitted: u64,
    /// Jobs settled successfully.
    pub jobs_done: u64,
    /// Jobs settled with an error.
    pub jobs_failed: u64,
    /// Evaluation-cache hits summed over settled jobs.
    pub cache_hits: u64,
    /// Evaluation-cache misses summed over settled jobs.
    pub cache_misses: u64,
    /// Simulator calls summed over settled jobs.
    pub total_sims: u64,
    /// Adjoint/sensitivity solves summed over settled jobs (tracked
    /// beside, never inside, [`Metrics::total_sims`]).
    pub adjoint_solves: u64,
    /// Full simulations the adjoint shortcut avoided, summed over settled
    /// jobs.
    pub fd_sims_avoided: u64,
}

impl Metrics {
    /// Cache hit rate over settled jobs (`None` before any lookup).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[derive(Debug)]
struct Inner {
    jobs: HashMap<String, JobEntry>,
    /// Submission order, for a stable `status` listing.
    order: Vec<String>,
    queue: VecDeque<String>,
    tenants: HashMap<String, Arc<SharedBudget>>,
    /// Per-tenant `(adjoint_solves, fd_sims_avoided)` sums over settled
    /// jobs, reported in the `status` tenant rows.
    tenant_adjoint: HashMap<String, (u64, u64)>,
    metrics: Metrics,
    next_id: u64,
    shutdown: bool,
}

/// The daemon's shared state. All methods are safe to call from any
/// connection-handler or worker thread.
#[derive(Debug)]
pub struct ServeState {
    inner: Mutex<Inner>,
    queue_cv: Condvar,
    done_cv: Condvar,
    tenant_budget: u64,
}

impl ServeState {
    /// Creates empty state; each new tenant gets a fresh simulation
    /// budget of `tenant_budget` evaluation calls.
    pub fn new(tenant_budget: u64) -> ServeState {
        ServeState {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                order: Vec::new(),
                queue: VecDeque::new(),
                tenants: HashMap::new(),
                tenant_adjoint: HashMap::new(),
                metrics: Metrics::default(),
                next_id: 1,
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            tenant_budget,
        }
    }

    /// Allocates the next job id (`job-0001`, `job-0002`, …).
    pub fn next_id(&self) -> String {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        format!("job-{id:04}")
    }

    /// Ensures future [`ServeState::next_id`] calls start above `seen`
    /// (used when recovering spooled jobs after a restart).
    pub fn reserve_ids_through(&self, seen: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.next_id = inner.next_id.max(seen + 1);
    }

    /// Inserts an accepted job and queues it for the worker pool.
    pub fn enqueue(&self, spec: JobSpec) -> Arc<Journal> {
        let journal = Arc::new(Journal::in_memory());
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id.clone();
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                journal: Arc::clone(&journal),
                outcome: None,
                error: None,
            },
        );
        inner.order.push(id.clone());
        inner.queue.push_back(id);
        inner.metrics.jobs_submitted += 1;
        drop(inner);
        self.queue_cv.notify_one();
        journal
    }

    /// Inserts an already-settled job recovered from the spool (its
    /// `.out` file survived the restart), so clients can still fetch it.
    pub fn insert_settled(&self, spec: JobSpec, outcome: JobOutcome) {
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id.clone();
        inner.jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Done,
                journal: Arc::new(Journal::in_memory()),
                outcome: Some(outcome),
                error: None,
            },
        );
        inner.order.push(id);
        inner.metrics.jobs_submitted += 1;
        inner.metrics.jobs_done += 1;
    }

    /// Blocks until a job is queued (returning its spec, journal, and the
    /// tenant's budget) or the daemon shuts down (returning `None`).
    pub fn claim(&self) -> Option<(JobSpec, Arc<Journal>, Arc<SharedBudget>)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let budget_cap = self.tenant_budget;
                let entry = inner.jobs.get_mut(&id).expect("queued job has an entry");
                entry.state = JobState::Running;
                let spec = entry.spec.clone();
                let journal = Arc::clone(&entry.journal);
                let budget = Arc::clone(
                    inner
                        .tenants
                        .entry(spec.tenant.clone())
                        .or_insert_with(|| Arc::new(SharedBudget::new(budget_cap))),
                );
                return Some((spec, journal, budget));
            }
            inner = self.queue_cv.wait(inner).unwrap();
        }
    }

    /// Settles a job with its result and wakes `result --wait` clients.
    pub fn finish(&self, id: &str, result: Result<JobOutcome, String>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(id) {
            match result {
                Ok(outcome) => {
                    entry.state = JobState::Done;
                    entry.outcome = Some(outcome.clone());
                    let tenant = entry.spec.tenant.clone();
                    inner.metrics.jobs_done += 1;
                    inner.metrics.cache_hits += outcome.cache_hits;
                    inner.metrics.cache_misses += outcome.cache_misses;
                    inner.metrics.total_sims += outcome.total_sims;
                    inner.metrics.adjoint_solves += outcome.adjoint_solves;
                    inner.metrics.fd_sims_avoided += outcome.fd_sims_avoided;
                    let t = inner.tenant_adjoint.entry(tenant).or_default();
                    t.0 += outcome.adjoint_solves;
                    t.1 += outcome.fd_sims_avoided;
                }
                Err(reason) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(reason);
                    inner.metrics.jobs_failed += 1;
                }
            }
        }
        drop(inner);
        self.done_cv.notify_all();
    }

    /// A snapshot of one job's entry.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` when the id was never accepted.
    pub fn entry(&self, id: &str) -> Result<JobEntry, WireError> {
        let inner = self.inner.lock().unwrap();
        inner
            .jobs
            .get(id)
            .cloned()
            .ok_or_else(|| WireError::new("unknown-job", format!("no such job {id:?}")))
    }

    /// Blocks until the job settles, then returns its entry.
    ///
    /// # Errors
    ///
    /// `"unknown-job"` when the id was never accepted.
    pub fn wait_settled(&self, id: &str) -> Result<JobEntry, WireError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.jobs.get(id) {
                None => return Err(WireError::new("unknown-job", format!("no such job {id:?}"))),
                Some(entry) if entry.state.settled() => return Ok(entry.clone()),
                Some(_) => inner = self.done_cv.wait(inner).unwrap(),
            }
        }
    }

    /// Signals shutdown: wakes the worker pool (which exits after its
    /// current jobs) and any waiting clients.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.queue_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// `true` once [`ServeState::shutdown`] was called.
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }

    /// A snapshot of the service metrics.
    pub fn metrics(&self) -> Metrics {
        self.inner.lock().unwrap().metrics
    }

    /// The `status` response: job table, metrics with cache hit rate, and
    /// per-tenant simulation counts (the tenant budget is reported only
    /// when finite).
    pub fn status_line(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"ok\":true,\"jobs\":[");
        for (i, id) in inner.order.iter().enumerate() {
            let entry = &inner.jobs[id];
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"job\":");
            json::write_json_string(&mut out, id);
            out.push_str(",\"tenant\":");
            json::write_json_string(&mut out, &entry.spec.tenant);
            out.push_str(",\"state\":");
            json::write_json_string(&mut out, entry.state.as_str());
            out.push_str(",\"estimator\":");
            json::write_json_string(&mut out, &entry.spec.options.estimator.to_string());
            if let Some(ess) = entry.outcome.as_ref().and_then(|o| o.ess) {
                out.push_str(",\"ess\":");
                json::write_f64(&mut out, ess);
            }
            out.push('}');
        }
        let m = &inner.metrics;
        out.push_str(&format!(
            "],\"metrics\":{{\"jobs_submitted\":{},\"jobs_done\":{},\"jobs_failed\":{},\
             \"queue_depth\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":",
            m.jobs_submitted,
            m.jobs_done,
            m.jobs_failed,
            inner.queue.len(),
            m.cache_hits,
            m.cache_misses,
        ));
        match m.cache_hit_rate() {
            Some(rate) => json::write_f64(&mut out, rate),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"total_sims\":{},\"adjoint_solves\":{},\"fd_sims_avoided\":{},\"tenants\":[",
            m.total_sims, m.adjoint_solves, m.fd_sims_avoided
        ));
        let mut tenants: Vec<_> = inner.tenants.iter().collect();
        tenants.sort_by(|a, b| a.0.cmp(b.0));
        for (i, (tenant, budget)) in tenants.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            json::write_json_string(&mut out, tenant);
            out.push_str(&format!(",\"sims\":{}", budget.used()));
            let (adj, avoided) = inner
                .tenant_adjoint
                .get(tenant)
                .copied()
                .unwrap_or_default();
            out.push_str(&format!(
                ",\"adjoint_solves\":{adj},\"fd_sims_avoided\":{avoided}"
            ));
            if budget.budget() != u64::MAX {
                out.push_str(&format!(",\"budget\":{}", budget.budget()));
            }
            out.push_str(&format!(",\"tripped\":{}}}", budget.tripped()));
        }
        out.push_str("]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOptions;

    fn spec(id: &str, tenant: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            tenant: tenant.into(),
            deck: "vdd vdd 0 3.3".into(),
            options: JobOptions::default(),
        }
    }

    fn outcome() -> JobOutcome {
        JobOutcome {
            design: vec![1.0],
            estimated_yield: 0.9,
            verified_yield: None,
            yield_interval: None,
            estimator: "mc".into(),
            ess: None,
            total_sims: 10,
            adjoint_solves: 4,
            fd_sims_avoided: 12,
            resumed: false,
            cache_hits: 3,
            cache_misses: 1,
        }
    }

    #[test]
    fn jobs_flow_queued_running_done_and_wake_waiters() {
        let state = Arc::new(ServeState::new(u64::MAX));
        state.enqueue(spec("job-0001", "a"));
        let (claimed, _journal, budget) = state.claim().unwrap();
        assert_eq!(claimed.id, "job-0001");
        assert_eq!(state.entry("job-0001").unwrap().state, JobState::Running);
        assert_eq!(budget.budget(), u64::MAX);

        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.wait_settled("job-0001").unwrap())
        };
        state.finish("job-0001", Ok(outcome()));
        let entry = waiter.join().unwrap();
        assert_eq!(entry.state, JobState::Done);
        assert_eq!(entry.outcome.unwrap().total_sims, 10);
        let m = state.metrics();
        assert_eq!((m.jobs_done, m.cache_hits, m.cache_misses), (1, 3, 1));
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn tenants_share_one_budget_and_ids_respect_recovery() {
        let state = ServeState::new(100);
        state.enqueue(spec("job-0001", "acme"));
        state.enqueue(spec("job-0002", "acme"));
        state.enqueue(spec("job-0003", "other"));
        let (_, _, b1) = state.claim().unwrap();
        let (_, _, b2) = state.claim().unwrap();
        let (_, _, b3) = state.claim().unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "same tenant ⇒ same budget");
        assert!(!Arc::ptr_eq(&b1, &b3), "different tenant ⇒ own budget");
        assert_eq!(b1.budget(), 100);

        state.reserve_ids_through(7);
        assert_eq!(state.next_id(), "job-0008");
    }

    #[test]
    fn unknown_jobs_and_shutdown_are_clean() {
        let state = ServeState::new(u64::MAX);
        assert_eq!(state.entry("job-9999").unwrap_err().kind, "unknown-job");
        assert_eq!(
            state.wait_settled("job-9999").unwrap_err().kind,
            "unknown-job"
        );
        state.shutdown();
        assert!(state.claim().is_none(), "shutdown unblocks the pool");
        assert!(state.is_shutdown());
    }

    #[test]
    fn status_line_is_valid_json_with_tenant_rows() {
        let state = ServeState::new(50);
        state.enqueue(spec("job-0001", "acme"));
        let (_, _, budget) = state.claim().unwrap();
        let _ = budget;
        state.finish("job-0001", Err("deck rejected: bad".into()));
        let j = json::parse(&state.status_line()).unwrap();
        let jobs = j.get("jobs").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0].get("estimator").and_then(|x| x.as_str()),
            Some("mc")
        );
        let metrics = j.get("metrics").unwrap();
        assert_eq!(metrics.get("jobs_failed").and_then(|x| x.as_u64()), Some(1));
        let tenants = metrics.get("tenants").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(
            tenants[0].get("tenant").and_then(|x| x.as_str()),
            Some("acme")
        );
        assert_eq!(tenants[0].get("budget").and_then(|x| x.as_u64()), Some(50));
    }

    #[test]
    fn status_line_reports_ess_of_settled_is_jobs() {
        let state = ServeState::new(u64::MAX);
        let mut is_spec = spec("job-0001", "acme");
        is_spec.options.estimator = specwise::EstimatorKind::NormMin;
        state.enqueue(is_spec);
        let _ = state.claim().unwrap();
        state.finish(
            "job-0001",
            Ok(JobOutcome {
                estimator: "norm-min".into(),
                ess: Some(44.5),
                ..outcome()
            }),
        );
        let j = json::parse(&state.status_line()).unwrap();
        let jobs = j.get("jobs").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(
            jobs[0].get("estimator").and_then(|x| x.as_str()),
            Some("norm-min")
        );
        assert_eq!(jobs[0].get("ess").and_then(|x| x.as_f64()), Some(44.5));
    }
}
