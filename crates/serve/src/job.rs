//! Job model: what a tenant submits, what the daemon persists in its
//! spool, and what comes back when the optimization settles.
//!
//! A job is the full Fig. 6 flow — feasible start, worst-case analysis,
//! spec-wise linearization, coordinate search, Monte-Carlo verification —
//! over a deck compiled at the untrusted boundary by
//! [`Testbench::from_deck_limited`]. Results are serialized with
//! [`json::write_f64`], whose shortest-round-trip float format preserves
//! every design component bit-for-bit across the wire; the end-to-end
//! tests compare daemon results against library-direct runs with `==` on
//! the raw `f64` bits.

use std::sync::Arc;

use specwise::{EstimatorKind, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::Testbench;
use specwise_exec::EvalService;
use specwise_harden::{KillSwitch, SharedBudget};
use specwise_trace::json::{self, Json};
use specwise_trace::Journal;

use crate::daemon::ServeConfig;

/// The submit-time payload: a deck plus optional config overrides.
/// Unset fields fall back to [`JobOptions::default`] when the job is
/// accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// The annotated circuit deck (PR 3 testbench IR).
    pub deck: String,
    /// Tenant name; jobs of one tenant share one simulation budget.
    pub tenant: String,
    /// RNG seed override.
    pub seed: Option<u64>,
    /// Monte-Carlo samples on the linearized models.
    pub mc_samples: Option<u64>,
    /// Simulation-based verification samples per snapshot (0 disables).
    pub verify_samples: Option<u64>,
    /// Optimizer iterations.
    pub max_iterations: Option<u64>,
    /// Verification estimator override (`mc` | `is` | `norm-min`). Unset
    /// falls back to the daemon's `SPECWISE_ESTIMATOR` default.
    pub estimator: Option<String>,
}

impl JobRequest {
    /// A request with no overrides.
    pub fn new(deck: String, tenant: String) -> JobRequest {
        JobRequest {
            deck,
            tenant,
            seed: None,
            mc_samples: None,
            verify_samples: None,
            max_iterations: None,
            estimator: None,
        }
    }

    /// Resolves the overrides against the defaults. An unset estimator
    /// falls back to the daemon's `SPECWISE_ESTIMATOR` environment default
    /// (plain Monte Carlo when that is unset too).
    ///
    /// # Errors
    ///
    /// Rejects an unknown estimator name — a typo in a submitted job must
    /// fail at accept time, not silently verify with the wrong estimator.
    pub fn resolve(&self) -> Result<JobOptions, String> {
        let d = JobOptions::default();
        let estimator = match &self.estimator {
            Some(name) => name.parse::<EstimatorKind>()?,
            None => EstimatorKind::from_env(),
        };
        Ok(JobOptions {
            seed: self.seed.unwrap_or(d.seed),
            mc_samples: self.mc_samples.map_or(d.mc_samples, |n| n as usize),
            verify_samples: self.verify_samples.map_or(d.verify_samples, |n| n as usize),
            max_iterations: self.max_iterations.map_or(d.max_iterations, |n| n as usize),
            estimator,
        })
    }
}

/// Resolved per-job optimizer knobs (the subset of [`OptimizerConfig`]
/// exposed on the wire; everything else keeps the paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOptions {
    /// RNG seed.
    pub seed: u64,
    /// Monte-Carlo samples on the linearized models.
    pub mc_samples: usize,
    /// Verification samples per snapshot.
    pub verify_samples: usize,
    /// Optimizer iterations.
    pub max_iterations: usize,
    /// Which estimator verifies the snapshots.
    pub estimator: EstimatorKind,
}

impl Default for JobOptions {
    fn default() -> Self {
        let cfg = OptimizerConfig::default();
        JobOptions {
            seed: cfg.seed,
            mc_samples: cfg.mc_samples,
            verify_samples: cfg.verify_samples,
            max_iterations: cfg.max_iterations,
            estimator: cfg.estimator,
        }
    }
}

impl JobOptions {
    /// The full optimizer configuration for this job.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        let mut cfg = OptimizerConfig::default();
        cfg.seed = self.seed;
        cfg.mc_samples = self.mc_samples;
        cfg.verify_samples = self.verify_samples;
        cfg.max_iterations = self.max_iterations;
        cfg.estimator = self.estimator;
        cfg
    }
}

/// An accepted job as persisted in the spool (`<id>.req`): the request
/// with its id and fully resolved options. Re-parsing this file after a
/// daemon restart reproduces the job bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Daemon-assigned id (`job-0001`, …).
    pub id: String,
    /// Tenant name.
    pub tenant: String,
    /// The annotated circuit deck.
    pub deck: String,
    /// Resolved optimizer knobs.
    pub options: JobOptions,
}

impl JobSpec {
    /// The spec as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        json::write_json_string(&mut out, &self.id);
        out.push_str(",\"tenant\":");
        json::write_json_string(&mut out, &self.tenant);
        out.push_str(",\"deck\":");
        json::write_json_string(&mut out, &self.deck);
        out.push_str(&format!(
            ",\"seed\":{},\"mc_samples\":{},\"verify_samples\":{},\"max_iterations\":{},\
             \"estimator\":\"{}\"}}",
            self.options.seed,
            self.options.mc_samples,
            self.options.verify_samples,
            self.options.max_iterations,
            self.options.estimator
        ));
        out
    }

    /// Parses a spec from its [`JobSpec::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json_str(text: &str) -> Result<JobSpec, String> {
        let j = json::parse(text).map_err(|e| format!("invalid job spec JSON: {e}"))?;
        let field = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("job spec missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("job spec missing integer field {key:?}"))
        };
        Ok(JobSpec {
            id: field("id")?,
            tenant: field("tenant")?,
            deck: field("deck")?,
            options: JobOptions {
                seed: num("seed")?,
                mc_samples: num("mc_samples")? as usize,
                verify_samples: num("verify_samples")? as usize,
                max_iterations: num("max_iterations")? as usize,
                // Spool files written before the estimator layer carry no
                // estimator field; those jobs verified with plain MC.
                estimator: match j.get("estimator").and_then(Json::as_str) {
                    Some(name) => name.parse::<EstimatorKind>()?,
                    None => EstimatorKind::Mc,
                },
            },
        })
    }
}

/// The settled result of a job, as persisted in the spool (`<id>.out`)
/// and returned to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The optimized design point (bit-exact across the wire).
    pub design: Vec<f64>,
    /// Yield estimate `Ȳ` over the linearized models at the final design.
    pub estimated_yield: f64,
    /// Simulation-verified yield `Ỹ` (when verification ran).
    pub verified_yield: Option<f64>,
    /// `[low, high]` verified-yield interval; degraded samples (budget
    /// exhaustion, non-converged solves) widen it instead of biasing it.
    pub yield_interval: Option<(f64, f64)>,
    /// Name of the estimator that verified the run (`mc` | `is` |
    /// `norm-min`).
    pub estimator: String,
    /// Effective sample size of the importance-sampled verification
    /// (`None` for plain Monte Carlo).
    pub ess: Option<f64>,
    /// Total simulator calls of the run.
    pub total_sims: u64,
    /// Adjoint/sensitivity solves on cached factorizations (tracked beside,
    /// never inside, [`JobOutcome::total_sims`]).
    pub adjoint_solves: u64,
    /// Full simulator invocations the adjoint gradient shortcut avoided.
    pub fd_sims_avoided: u64,
    /// `true` when the run continued from a checkpoint after a restart.
    pub resumed: bool,
    /// Evaluation-cache hits during the run.
    pub cache_hits: u64,
    /// Evaluation-cache misses during the run.
    pub cache_misses: u64,
}

impl JobOutcome {
    /// The outcome as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"design\":[");
        for (i, x) in self.design.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *x);
        }
        out.push_str("],\"estimated_yield\":");
        json::write_f64(&mut out, self.estimated_yield);
        if let Some(y) = self.verified_yield {
            out.push_str(",\"verified_yield\":");
            json::write_f64(&mut out, y);
        }
        if let Some((lo, hi)) = self.yield_interval {
            out.push_str(",\"yield_interval\":[");
            json::write_f64(&mut out, lo);
            out.push(',');
            json::write_f64(&mut out, hi);
            out.push(']');
        }
        out.push_str(",\"estimator\":");
        json::write_json_string(&mut out, &self.estimator);
        if let Some(ess) = self.ess {
            out.push_str(",\"ess\":");
            json::write_f64(&mut out, ess);
        }
        out.push_str(&format!(
            ",\"total_sims\":{},\"adjoint_solves\":{},\"fd_sims_avoided\":{},\
             \"resumed\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
            self.total_sims,
            self.adjoint_solves,
            self.fd_sims_avoided,
            self.resumed,
            self.cache_hits,
            self.cache_misses
        ));
        out
    }

    /// Parses an outcome from its [`JobOutcome::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(j: &Json) -> Result<JobOutcome, String> {
        let design = j
            .get("design")
            .and_then(Json::as_arr)
            .ok_or("job outcome missing array field \"design\"")?
            .iter()
            .map(|x| x.as_f64().ok_or("non-numeric design component"))
            .collect::<Result<Vec<f64>, _>>()?;
        let f64_field = |key: &str| -> Option<f64> { j.get(key).and_then(Json::as_f64) };
        let interval = match j.get("yield_interval").and_then(Json::as_arr) {
            Some([lo, hi]) => Some((
                lo.as_f64().ok_or("non-numeric yield_interval low")?,
                hi.as_f64().ok_or("non-numeric yield_interval high")?,
            )),
            Some(_) => return Err("yield_interval must have two entries".into()),
            None => None,
        };
        Ok(JobOutcome {
            design,
            estimated_yield: f64_field("estimated_yield")
                .ok_or("job outcome missing number field \"estimated_yield\"")?,
            verified_yield: f64_field("verified_yield"),
            yield_interval: interval,
            // Spool files written before the estimator layer carry no
            // estimator name; those runs verified with plain MC.
            estimator: j
                .get("estimator")
                .and_then(Json::as_str)
                .unwrap_or("mc")
                .to_owned(),
            ess: f64_field("ess"),
            total_sims: j
                .get("total_sims")
                .and_then(Json::as_u64)
                .ok_or("job outcome missing integer field \"total_sims\"")?,
            // Spool files written before the adjoint backend carry neither
            // counter; default to zero rather than rejecting them.
            adjoint_solves: j.get("adjoint_solves").and_then(Json::as_u64).unwrap_or(0),
            fd_sims_avoided: j.get("fd_sims_avoided").and_then(Json::as_u64).unwrap_or(0),
            resumed: matches!(j.get("resumed"), Some(Json::Bool(true))),
            cache_hits: j.get("cache_hits").and_then(Json::as_u64).unwrap_or(0),
            cache_misses: j.get("cache_misses").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Parses an outcome from a JSON string.
    ///
    /// # Errors
    ///
    /// See [`JobOutcome::from_json`].
    pub fn from_json_str(text: &str) -> Result<JobOutcome, String> {
        let j = json::parse(text).map_err(|e| format!("invalid job outcome JSON: {e}"))?;
        JobOutcome::from_json(&j)
    }
}

/// Runs one job to completion on the calling worker thread.
///
/// The deck compiles through the hardened limited parser, evaluates under
/// the tenant's shared [`KillSwitch`] budget (soft mode: exhaustion reads
/// as a retryable simulation failure, so the verification estimator's
/// shared accumulator policy excludes the starved samples and widens the
/// yield interval instead of crashing the job), and executes on an
/// [`EvalService`] sharded across the
/// daemon's job slots. The optimizer checkpoints into the spool after
/// every iteration, so a daemon restart resumes mid-flight jobs
/// bit-for-bit; the journal streams live to any subscribed client.
///
/// # Errors
///
/// Returns a human-readable reason: deck rejection, infeasible start, or
/// an optimizer abort. The daemon keeps the job's `.req`/`.ckpt` spool
/// entries so a restart can retry it.
pub fn run_job(
    spec: &JobSpec,
    cfg: &ServeConfig,
    budget: &Arc<SharedBudget>,
    journal: &Arc<Journal>,
) -> Result<JobOutcome, String> {
    // Mirror the journal into the spool so peer daemons can serve
    // `subscribe` for this job while we hold its lease. A mirror failure
    // costs fan-in, never the run.
    if let Err(e) = journal.attach_jsonl(cfg.journal_path(&spec.id)) {
        eprintln!("specwise-serve: journal mirror for {} failed: {e}", spec.id);
    }
    let tb = Testbench::from_deck_limited(&spec.deck, &cfg.deck_limits)
        .map_err(|e| format!("deck rejected: {e}"))?
        .with_warm_start(cfg.warm_start);
    let kill = KillSwitch::soft_with_budget(&tb, Arc::clone(budget));
    let svc = EvalService::new(&kill, cfg.exec.clone().into_shard(cfg.slots));
    let trace = YieldOptimizer::new(spec.options.optimizer_config())
        .with_checkpoint(cfg.checkpoint_path(&spec.id))
        .with_checkpoint_owner(cfg.owner.clone())
        .with_tracer(Tracer::new(Arc::clone(journal)))
        .run(&svc)
        .map_err(|e| e.to_string())?;
    let report = trace.exec.clone().unwrap_or_else(|| svc.report());
    let last = trace.final_snapshot();
    let tail = last.verified_tail.as_ref();
    Ok(JobOutcome {
        design: trace.final_design().as_slice().to_vec(),
        estimated_yield: last.estimated_yield.value(),
        verified_yield: last
            .verified
            .as_ref()
            .map(|v| v.yield_estimate.value())
            .or_else(|| tail.map(|t| t.yield_value)),
        yield_interval: last
            .verified
            .as_ref()
            .map(|v| v.yield_interval())
            .or_else(|| tail.map(|t| (t.yield_low, t.yield_high))),
        estimator: spec.options.estimator.to_string(),
        ess: tail.map(|t| t.effective_sample_size),
        total_sims: trace.total_sims,
        adjoint_solves: trace.adjoint_solves,
        fd_sims_avoided: trace.fd_sims_avoided,
        resumed: trace.resumed,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_with_a_multiline_deck() {
        let spec = JobSpec {
            id: "job-0042".into(),
            tenant: "acme".into(),
            deck: "* title\nvdd vdd 0 3.3\nm1 d g s b nch W={w1} L=1u\n.end\n".into(),
            options: JobOptions {
                seed: 7,
                mc_samples: 2000,
                verify_samples: 150,
                max_iterations: 2,
                estimator: EstimatorKind::NormMin,
            },
        };
        assert_eq!(JobSpec::from_json_str(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn pre_estimator_spool_specs_default_to_mc() {
        let text = "{\"id\":\"job-0001\",\"tenant\":\"t\",\"deck\":\"* d\",\
                    \"seed\":1,\"mc_samples\":10,\"verify_samples\":0,\"max_iterations\":1}";
        let spec = JobSpec::from_json_str(text).unwrap();
        assert_eq!(spec.options.estimator, EstimatorKind::Mc);
    }

    #[test]
    fn job_outcome_round_trips_bit_for_bit() {
        let outcome = JobOutcome {
            design: vec![
                1.0,
                -0.1,
                std::f64::consts::PI,
                1.0000000000000002,
                6.02e23,
                5e-324,
            ],
            estimated_yield: 0.9785,
            verified_yield: Some(2.0 / 3.0),
            yield_interval: Some((2.0 / 3.0, 0.71)),
            estimator: "norm-min".into(),
            ess: Some(123.456),
            total_sims: 12_345,
            adjoint_solves: 44,
            fd_sims_avoided: 660,
            resumed: true,
            cache_hits: 99,
            cache_misses: 1,
        };
        let back = JobOutcome::from_json_str(&outcome.to_json()).unwrap();
        for (a, b) in outcome.design.iter().zip(back.design.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "design must survive the wire");
        }
        assert_eq!(back, outcome);
        // Optional fields may be absent entirely.
        let minimal = JobOutcome {
            verified_yield: None,
            yield_interval: None,
            ess: None,
            ..outcome
        };
        assert_eq!(
            JobOutcome::from_json_str(&minimal.to_json()).unwrap(),
            minimal
        );
    }

    #[test]
    fn pre_estimator_spool_outcomes_default_to_mc() {
        let text = "{\"design\":[1.5],\"estimated_yield\":0.5,\"total_sims\":3}";
        let outcome = JobOutcome::from_json_str(text).unwrap();
        assert_eq!(outcome.estimator, "mc");
        assert_eq!(outcome.ess, None);
    }

    #[test]
    fn request_resolution_fills_paper_defaults() {
        let req = JobRequest::new("deck".into(), "t".into());
        let opts = req.resolve().unwrap();
        let cfg = OptimizerConfig::default();
        assert_eq!(opts.seed, cfg.seed);
        assert_eq!(opts.mc_samples, cfg.mc_samples);
        assert_eq!(opts.estimator, EstimatorKind::Mc);
        let mut req = req;
        req.mc_samples = Some(500);
        req.estimator = Some("norm-min".into());
        let opts = req.resolve().unwrap();
        assert_eq!(opts.mc_samples, 500);
        assert_eq!(opts.estimator, EstimatorKind::NormMin);
        let cfg = opts.optimizer_config();
        assert_eq!(cfg.mc_samples, 500);
        assert_eq!(cfg.estimator, EstimatorKind::NormMin);
        req.estimator = Some("bogus".into());
        assert!(req.resolve().is_err(), "unknown estimator must be rejected");
    }
}
