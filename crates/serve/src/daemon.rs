//! The daemon: a TCP accept loop (thread per connection) over a shared
//! job scheduler drained by a sharded worker pool.
//!
//! Life of a job: a client submits an annotated deck; the handler
//! compiles it through the hardened limited parser *before* accepting
//! (malformed and oversized decks bounce with a structured error and the
//! daemon keeps serving), persists the spec to the spool as `<id>.req`,
//! and queues it. A worker slot claims the job, takes its spool lease
//! (see [`crate::lease`]), runs the full Fig. 6 flow under the tenant's
//! shared simulation budget, checkpoints into the spool after every
//! iteration, and streams journal records to any subscribed client. The
//! settled outcome lands in `<id>.out` (atomically, tmp + rename);
//! failures persist as `<id>.fail` so no daemon re-runs a
//! deterministically failing job. On restart the daemon rescans the
//! spool: specs with an outcome are served from it, specs without one
//! re-enter the queue and — thanks to their checkpoints — resume
//! bit-for-bit.
//!
//! # Fleet mode
//!
//! Any number of daemons may share one spool directory. The lease file
//! (`<id>.lease`) arbitrates who runs each job; a fleet loop per daemon
//! heartbeats held leases and its own liveness file, reconciles the
//! per-tenant budget ledger (see [`crate::ledger`]), adopts jobs that
//! peers spooled, and settles or re-queues jobs whose holder finished or
//! died. A job a peer holds reports as `"remote"` in `status`;
//! `subscribe` still works for it by tailing the `<id>.journal` mirror
//! the holder writes into the spool.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use specwise::{Checkpoint, Tracer};
use specwise_ckt::{DeckLimits, Testbench};
use specwise_exec::ExecConfig;
use specwise_trace::json;

use crate::job::{run_job, JobOutcome, JobRequest, JobSpec};
use crate::lease::{self, Acquire, Lease};
use crate::ledger::TenantLedger;
use crate::protocol::{end_marker, read_line_bounded, LineRead, Request, WireError};
use crate::state::{FleetStatus, JobState, ServeState};

/// Daemon configuration. Every field has a `SPECWISE_SERVE_*`
/// environment knob read by [`ServeConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`SPECWISE_SERVE_ADDR`). Port `0` picks a free
    /// port; [`Daemon::local_addr`] reports the bound one.
    pub addr: String,
    /// Spool directory for `.req`/`.ckpt`/`.out`/`.fail`/`.lease`/
    /// `.journal` job files (`SPECWISE_SERVE_SPOOL`). Daemons sharing a
    /// spool form a fleet.
    pub spool: PathBuf,
    /// This daemon's fleet identity (`SPECWISE_SERVE_OWNER`): stamped
    /// into leases, checkpoints, and the budget ledger. The default is
    /// unique per daemon instance (pid plus an in-process counter);
    /// set it explicitly for stable names in operations tooling.
    pub owner: String,
    /// Lease expiry window (`SPECWISE_SERVE_LEASE_EXPIRY`, seconds): a
    /// lease not heartbeated for this long counts as dead and may be
    /// stolen. Must be much larger than [`ServeConfig::heartbeat`].
    pub lease_expiry: Duration,
    /// Lease/liveness heartbeat and fleet-tick interval
    /// (`SPECWISE_SERVE_HEARTBEAT`, seconds).
    pub heartbeat: Duration,
    /// Concurrent job slots; the evaluation worker pool is divided
    /// across them (`SPECWISE_SERVE_SLOTS`).
    pub slots: usize,
    /// Per-tenant simulation budget in evaluation calls
    /// (`SPECWISE_SERVE_TENANT_BUDGET`; `0` means unlimited). Enforced
    /// fleet-wide through the spool ledger.
    pub tenant_budget: u64,
    /// Maximum request line length in bytes (`SPECWISE_SERVE_MAX_LINE`).
    pub max_line_bytes: usize,
    /// Deck ingestion limits; `SPECWISE_SERVE_MAX_DECK` overrides the
    /// byte cap.
    pub deck_limits: DeckLimits,
    /// Enable the warm-start cache (`SPECWISE_SERVE_WARM_START`, `0`/`1`).
    /// Off by default: checkpoints restore optimizer state, not solver
    /// caches, and bit-for-bit resume after a restart requires cold
    /// starts.
    pub warm_start: bool,
    /// Evaluation-engine base configuration (shared `SPECWISE_WORKERS`
    /// etc. knobs), sharded [`ServeConfig::slots`] ways per job.
    pub exec: ExecConfig,
}

/// Process-unique suffix for temp files and default owner ids (two
/// daemons in one test process share a pid, so the pid alone is not
/// unique).
fn unique_suffix() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

fn default_owner() -> String {
    format!("d{}", unique_suffix())
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7601".into(),
            spool: std::env::temp_dir().join("specwise-spool"),
            owner: default_owner(),
            lease_expiry: Duration::from_secs(30),
            heartbeat: Duration::from_secs(3),
            slots: 2,
            tenant_budget: u64::MAX,
            max_line_bytes: 4 << 20,
            deck_limits: DeckLimits::default(),
            warm_start: false,
            exec: ExecConfig::default(),
        }
    }
}

fn parse_var<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!(
                "specwise-serve: ignoring malformed {name}={raw:?} (not a valid value); \
                 keeping default"
            );
            None
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment, starting from the
    /// defaults. Set-but-malformed values keep their default after a
    /// one-line stderr warning naming the variable.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = std::env::var("SPECWISE_SERVE_ADDR")
            .ok()
            .filter(|s| !s.trim().is_empty())
        {
            cfg.addr = addr.trim().to_owned();
        }
        if let Some(spool) = std::env::var("SPECWISE_SERVE_SPOOL")
            .ok()
            .filter(|s| !s.trim().is_empty())
        {
            cfg.spool = PathBuf::from(spool.trim());
        }
        if let Some(owner) = std::env::var("SPECWISE_SERVE_OWNER")
            .ok()
            .filter(|s| !s.trim().is_empty())
        {
            cfg.owner = owner.trim().to_owned();
        }
        if let Some(secs) = parse_var::<f64>("SPECWISE_SERVE_LEASE_EXPIRY") {
            cfg.lease_expiry = Duration::from_secs_f64(secs.max(0.05));
        }
        if let Some(secs) = parse_var::<f64>("SPECWISE_SERVE_HEARTBEAT") {
            cfg.heartbeat = Duration::from_secs_f64(secs.max(0.01));
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_SLOTS") {
            cfg.slots = n.max(1);
        }
        if let Some(n) = parse_var::<u64>("SPECWISE_SERVE_TENANT_BUDGET") {
            cfg.tenant_budget = if n == 0 { u64::MAX } else { n };
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_MAX_LINE") {
            cfg.max_line_bytes = n.max(1024);
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_MAX_DECK") {
            cfg.deck_limits.max_bytes = n;
        }
        if let Some(n) = parse_var::<u8>("SPECWISE_SERVE_WARM_START") {
            cfg.warm_start = n != 0;
        }
        cfg.exec = ExecConfig::from_env();
        cfg
    }

    /// The spool path of a job's checkpoint.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.ckpt"))
    }

    /// The spool path of a job's accepted spec.
    pub fn req_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.req"))
    }

    /// The spool path of a job's settled outcome.
    pub fn out_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.out"))
    }

    /// The spool path of a job's persisted failure reason. Its presence
    /// stops every daemon from re-running a deterministically failing
    /// job after restarts or lease takeovers.
    pub fn fail_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.fail"))
    }

    /// The spool path of a job's mirrored run journal, written by the
    /// lease holder so peer daemons can serve `subscribe` for it.
    pub fn journal_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.journal"))
    }
}

/// Atomic file write: unique temp file in the same directory, then
/// rename (unique so two daemons writing the same target — an idempotent
/// re-run after a lease steal — never interleave in one temp file).
fn write_atomic(path: &std::path::Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp-{}", unique_suffix()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Exclusive file creation (`O_EXCL`): fails with `AlreadyExists` when a
/// peer daemon spooled the same path first — the job-id claim.
fn write_new(path: &std::path::Path, contents: &str) -> io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)?;
    file.write_all(contents.as_bytes())?;
    file.sync_all()
}

/// Fleet bookkeeping shared by the workers, the fleet loop, and the
/// `status` handler: the held-lease registry, steal/loss counters, and
/// the durable tenant ledger.
#[derive(Debug)]
struct FleetShared {
    /// Job id → the lease the local worker currently holds for it.
    leases: Mutex<HashMap<String, Arc<Lease>>>,
    /// Leases taken over from expired holders since daemon start.
    stolen: AtomicU64,
    /// Expired peer leases observed (and re-queued) since daemon start.
    expired: AtomicU64,
    /// Own leases lost to a thief while running, since daemon start.
    lost: AtomicU64,
    ledger: TenantLedger,
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown`] (tests) or [`Daemon::join`] (the binary).
#[derive(Debug)]
pub struct Daemon {
    state: Arc<ServeState>,
    cfg: Arc<ServeConfig>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    fleet_thread: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the daemon: creates the spool, recovers spooled jobs from
    /// a previous process, binds the listener, and spawns the accept
    /// loop, `cfg.slots` worker threads, and the fleet loop.
    ///
    /// # Errors
    ///
    /// Propagates spool-creation and socket-bind failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.spool)?;
        let state = Arc::new(ServeState::new(cfg.tenant_budget));
        let cfg = Arc::new(cfg);
        let fleet = Arc::new(FleetShared {
            leases: Mutex::new(HashMap::new()),
            stolen: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            ledger: TenantLedger::open(&cfg.spool, &cfg.owner)?,
        });
        scan_spool(&cfg, &state, &mut HashSet::new());
        let _ = lease::touch_alive(&cfg.spool, &cfg.owner);

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        let workers = (0..cfg.slots)
            .map(|slot| {
                let state = Arc::clone(&state);
                let cfg = Arc::clone(&cfg);
                let fleet = Arc::clone(&fleet);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{slot}"))
                    .spawn(move || worker_loop(&state, &cfg, &fleet))
                    .expect("spawn worker thread")
            })
            .collect();

        let fleet_thread = {
            let state = Arc::clone(&state);
            let cfg = Arc::clone(&cfg);
            let fleet = Arc::clone(&fleet);
            std::thread::Builder::new()
                .name("serve-fleet".into())
                .spawn(move || fleet_loop(&state, &cfg, &fleet))
                .expect("spawn fleet thread")
        };

        let accept = {
            let state = Arc::clone(&state);
            let cfg = Arc::clone(&cfg);
            let fleet = Arc::clone(&fleet);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if state.is_shutdown() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let state = Arc::clone(&state);
                        let cfg = Arc::clone(&cfg);
                        let fleet = Arc::clone(&fleet);
                        // Handler threads are detached: they end at peer
                        // EOF, and at shutdown they die with the process
                        // (tests) or the failing socket.
                        let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(
                            move || {
                                let _ = handle_connection(stream, &state, &cfg, &fleet);
                            },
                        );
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Daemon {
            state,
            cfg,
            local_addr,
            accept: Some(accept),
            workers,
            fleet_thread: Some(fleet_thread),
        })
    }

    /// The bound listen address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared scheduler state (used by in-process tests).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// The effective configuration (owner id, spool paths, knobs).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Graceful stop: drains nothing — workers finish their current job
    /// and exit, queued jobs stay in the spool for the next start (or
    /// for a peer daemon to steal after the lease expiry).
    pub fn shutdown(mut self) {
        self.state.shutdown();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(fleet) = self.fleet_thread.take() {
            let _ = fleet.join();
        }
    }

    /// Blocks the caller until the accept loop exits (the binary's main
    /// thread parks here; the daemon runs until the process is killed).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Scans the spool for job specs this daemon does not know yet: settled
/// ones (`.out`/`.fail` present) are inserted as settled, the rest enter
/// the queue in job-id order (their checkpoints make a re-run resume,
/// not restart). Runs at startup (classic crash recovery) and on every
/// fleet tick (adopting jobs peers spooled). `warned` suppresses repeat
/// warnings about unreadable or corrupt entries across ticks.
fn scan_spool(cfg: &ServeConfig, state: &ServeState, warned: &mut HashSet<String>) {
    let Ok(entries) = std::fs::read_dir(&cfg.spool) else {
        return;
    };
    let mut ids: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_suffix(".req").map(str::to_owned)
        })
        .filter(|id| !state.known(id))
        .collect();
    ids.sort();
    let mut max_seen = 0u64;
    for id in ids {
        let text = match std::fs::read_to_string(cfg.req_path(&id)) {
            Ok(text) => text,
            Err(e) => {
                if warned.insert(id.clone()) {
                    eprintln!("specwise-serve: skipping unreadable spool entry {id}: {e}");
                }
                continue;
            }
        };
        let spec = match JobSpec::from_json_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                if warned.insert(id.clone()) {
                    eprintln!("specwise-serve: skipping corrupt spool entry {id}: {e}");
                }
                continue;
            }
        };
        if let Some(n) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
            max_seen = max_seen.max(n);
        }
        if let Ok(out) = std::fs::read_to_string(cfg.out_path(&id)) {
            match JobOutcome::from_json_str(&out) {
                Ok(outcome) => {
                    state.insert_settled(spec, outcome);
                    continue;
                }
                Err(e) => {
                    eprintln!("specwise-serve: re-running {id} (corrupt outcome: {e})");
                }
            }
        } else if let Ok(reason) = std::fs::read_to_string(cfg.fail_path(&id)) {
            state.insert_failed(spec, reason.trim_end().to_string());
            continue;
        }
        state.adopt(spec);
    }
    state.reserve_ids_through(max_seen);
}

/// A client may ask any fleet member about any job, and an id this
/// daemon has not seen yet may still be in the shared spool (submitted
/// to a peer moments ago). One scan adopts it before answering, so
/// `result`/`subscribe` work fleet-wide without waiting a fleet tick.
fn ensure_known(job: &str, state: &ServeState, cfg: &ServeConfig) {
    if !state.known(job) {
        scan_spool(cfg, state, &mut HashSet::new());
    }
}

/// Settles a known job from the spool artifacts a peer (or a previous
/// process) left: `.out` wins over `.fail`. Returns `true` when settled.
fn settle_from_spool(id: &str, state: &ServeState, cfg: &ServeConfig) -> bool {
    if let Ok(text) = std::fs::read_to_string(cfg.out_path(id)) {
        if let Ok(outcome) = JobOutcome::from_json_str(&text) {
            state.settle_remote(id, outcome);
            return true;
        }
    }
    if let Ok(reason) = std::fs::read_to_string(cfg.fail_path(id)) {
        state.fail_remote(id, reason.trim_end().to_string());
        return true;
    }
    false
}

fn worker_loop(state: &ServeState, cfg: &ServeConfig, fleet: &FleetShared) {
    while let Some((spec, journal, budget)) = state.claim() {
        // A peer may have settled the job while it sat in our queue.
        if settle_from_spool(&spec.id, state, cfg) {
            continue;
        }
        let held = match lease::acquire(&cfg.spool, &spec.id, &cfg.owner, cfg.lease_expiry) {
            Ok(Acquire::Acquired { lease, stolen }) => {
                if let Some(previous) = stolen {
                    fleet.stolen.fetch_add(1, Ordering::Relaxed);
                    let tracer = Tracer::new(Arc::clone(&journal));
                    let iteration = Checkpoint::peek(&cfg.checkpoint_path(&spec.id))
                        .map(|meta| meta.iteration as u64)
                        .unwrap_or(0);
                    tracer.event(
                        "lease-takeover",
                        &[
                            ("previous_owner", previous.owner.clone().into()),
                            ("epoch", lease.info().epoch.into()),
                            ("checkpoint_iteration", iteration.into()),
                        ],
                    );
                }
                Some(Arc::new(lease))
            }
            Ok(Acquire::HeldByPeer(info)) => {
                state.mark_remote(&spec.id, info.owner);
                continue;
            }
            Err(e) => {
                // Lease I/O failure must not kill the single-daemon
                // story; run leaseless (peers may duplicate the work,
                // which the deterministic flow makes harmless).
                eprintln!(
                    "specwise-serve: lease on {} failed ({e}); running leaseless",
                    spec.id
                );
                None
            }
        };
        // The previous holder writes `.out` before releasing its lease,
        // so a settled job can slip in between our settle check above
        // and the claim. Re-check while holding the lease: a `.out`
        // present now is final (nobody else can be running the job).
        if settle_from_spool(&spec.id, state, cfg) {
            if let Some(lease) = held {
                lease.release();
            }
            continue;
        }
        if let Some(lease) = &held {
            fleet
                .leases
                .lock()
                .unwrap()
                .insert(spec.id.clone(), Arc::clone(lease));
        }
        state.set_holder(&spec.id, cfg.owner.clone());
        let result = run_job(&spec, cfg, &budget, &journal);
        // Publish this run's charges before the outcome: a peer must
        // never observe a finished job whose sims are not yet on the
        // ledger.
        fleet.ledger.reconcile(&spec.tenant, &budget);
        match &result {
            Ok(outcome) => {
                if let Err(e) = write_atomic(&cfg.out_path(&spec.id), &outcome.to_json()) {
                    eprintln!(
                        "specwise-serve: failed to spool outcome of {}: {e}",
                        spec.id
                    );
                }
            }
            Err(reason) => {
                if let Err(e) = write_atomic(&cfg.fail_path(&spec.id), reason) {
                    eprintln!(
                        "specwise-serve: failed to spool failure of {}: {e}",
                        spec.id
                    );
                }
            }
        }
        if let Some(lease) = held {
            fleet.leases.lock().unwrap().remove(&spec.id);
            if lease.is_lost() {
                fleet.lost.fetch_add(1, Ordering::Relaxed);
            }
            lease.release();
        }
        state.finish(&spec.id, result);
    }
}

/// The per-daemon fleet tick: heartbeats held leases and the liveness
/// file, reconciles tenant budgets against the spool ledger, settles or
/// re-queues jobs a peer holds, and adopts jobs peers spooled. Runs
/// every [`ServeConfig::heartbeat`] until shutdown.
fn fleet_loop(state: &ServeState, cfg: &ServeConfig, fleet: &FleetShared) {
    let mut warned = HashSet::new();
    loop {
        if let Err(e) = lease::touch_alive(&cfg.spool, &cfg.owner) {
            eprintln!("specwise-serve: liveness touch failed: {e}");
        }
        let held: Vec<Arc<Lease>> = fleet.leases.lock().unwrap().values().cloned().collect();
        for lease in held {
            match lease.heartbeat() {
                Ok(_) => {} // a lost lease is counted when the worker releases it
                Err(e) => eprintln!(
                    "specwise-serve: heartbeat on {} failed: {e}",
                    lease.info().job
                ),
            }
        }
        for (tenant, budget) in state.tenant_budgets() {
            fleet.ledger.reconcile(&tenant, &budget);
        }
        for id in state.remote_jobs() {
            if settle_from_spool(&id, state, cfg) {
                continue;
            }
            match lease::inspect(&cfg.spool, &id, cfg.lease_expiry) {
                Some((_, false)) => {} // holder is alive
                // Lease expired or vanished without an outcome: the
                // holder died. Re-queue so a local worker can steal it
                // and resume from the checkpoint.
                _ => {
                    fleet.expired.fetch_add(1, Ordering::Relaxed);
                    state.requeue(&id);
                }
            }
        }
        scan_spool(cfg, state, &mut warned);
        if state.wait_shutdown(cfg.heartbeat) {
            break;
        }
    }
    lease::remove_alive(&cfg.spool, &cfg.owner);
}

/// Assembles the `status` fleet figures from the lease registry, the
/// liveness files, and the spool ledger.
fn fleet_status(state: &ServeState, cfg: &ServeConfig, fleet: &FleetShared) -> FleetStatus {
    let local: HashMap<String, u64> = state
        .tenant_budgets()
        .into_iter()
        .map(|(tenant, budget)| (tenant, budget.used()))
        .collect();
    let mut tenants = fleet.ledger.tenants();
    tenants.extend(local.keys().cloned());
    tenants.sort();
    tenants.dedup();
    let tenants_fleet = tenants
        .into_iter()
        .map(|tenant| {
            let used = fleet
                .ledger
                .fleet_used(&tenant, local.get(&tenant).copied().unwrap_or(0));
            (tenant, used)
        })
        .collect();
    FleetStatus {
        owner: cfg.owner.clone(),
        daemons_live: lease::live_daemons(&cfg.spool, cfg.lease_expiry),
        leases_held: fleet.leases.lock().unwrap().len(),
        leases_stolen: fleet.stolen.load(Ordering::Relaxed),
        leases_expired: fleet.expired.load(Ordering::Relaxed),
        leases_lost: fleet.lost.load(Ordering::Relaxed),
        tenants_fleet,
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
    fleet: &FleetShared,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        match read_line_bounded(&mut reader, cfg.max_line_bytes, &mut buf)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                let err = WireError::new(
                    "oversized",
                    format!(
                        "request line exceeds {} bytes; submit a smaller deck",
                        cfg.max_line_bytes
                    ),
                );
                respond(&mut writer, &err.to_line())?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match Request::parse(&line) {
                    Err(err) => respond(&mut writer, &err.to_line())?,
                    Ok(req) => dispatch(req, &mut reader, &mut writer, state, cfg, fleet)?,
                }
            }
        }
    }
}

fn dispatch(
    req: Request,
    _reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
    fleet: &FleetShared,
) -> io::Result<()> {
    match req {
        Request::Submit(request) => match accept_job(request, state, cfg) {
            Ok(id) => {
                let mut line = String::from("{\"ok\":true,\"job\":");
                json::write_json_string(&mut line, &id);
                line.push('}');
                respond(writer, &line)
            }
            Err(err) => respond(writer, &err.to_line()),
        },
        Request::Status => {
            let snapshot = fleet_status(state, cfg, fleet);
            respond(writer, &state.status_line(Some(&snapshot)))
        }
        Request::Result { job, wait } => {
            ensure_known(&job, state, cfg);
            let entry = if wait {
                state.wait_settled(&job)
            } else {
                state.entry(&job)
            };
            match entry {
                Err(err) => respond(writer, &err.to_line()),
                Ok(entry) => {
                    let mut line = String::from("{\"ok\":true,\"job\":");
                    json::write_json_string(&mut line, &job);
                    line.push_str(",\"state\":");
                    json::write_json_string(&mut line, entry.state.as_str());
                    match (&entry.outcome, &entry.error) {
                        (Some(outcome), _) => {
                            line.push_str(",\"outcome\":");
                            line.push_str(&outcome.to_json());
                        }
                        (None, Some(reason)) => {
                            line.push_str(",\"error\":{\"kind\":\"job-failed\",\"message\":");
                            json::write_json_string(&mut line, reason);
                            line.push('}');
                        }
                        (None, None) => {}
                    }
                    line.push('}');
                    respond(writer, &line)
                }
            }
        }
        Request::Subscribe { job } => {
            ensure_known(&job, state, cfg);
            match state.entry(&job) {
                Err(err) => respond(writer, &err.to_line()),
                Ok(_) => {
                    let mut line = String::from("{\"ok\":true,\"job\":");
                    json::write_json_string(&mut line, &job);
                    line.push('}');
                    respond(writer, &line)?;
                    stream_journal(&job, writer, state, cfg)
                }
            }
        }
    }
}

/// Validates and accepts a submission: the deck must compile through the
/// limited parser *now* (the untrusted boundary — a hostile deck is
/// rejected synchronously with a structured error and never reaches a
/// worker), then the spec is spooled and queued. The spool write is
/// exclusive-create, so two daemons sharing the spool can never hand out
/// the same job id — a collision just advances to the next id.
fn accept_job(
    request: JobRequest,
    state: &ServeState,
    cfg: &ServeConfig,
) -> Result<String, WireError> {
    if let Err(e) = Testbench::from_deck_limited(&request.deck, &cfg.deck_limits) {
        return Err(WireError::new("deck", format!("deck rejected: {e}")));
    }
    let options = request
        .resolve()
        .map_err(|e| WireError::new("bad-request", e))?;
    for _ in 0..10_000 {
        let spec = JobSpec {
            id: state.next_id(),
            tenant: request.tenant.clone(),
            deck: request.deck.clone(),
            options,
        };
        match write_new(&cfg.req_path(&spec.id), &spec.to_json()) {
            Ok(()) => {
                let id = spec.id.clone();
                state.enqueue(spec);
                return Ok(id);
            }
            // A peer daemon spooled this id first; take the next one.
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => {
                return Err(WireError::new(
                    "bad-request",
                    format!("failed to spool job: {e}"),
                ))
            }
        }
    }
    Err(WireError::new(
        "bad-request",
        "failed to spool job: id space exhausted".to_string(),
    ))
}

/// Streams the job's journal to the peer: the subscription starts with
/// the full backlog (late subscribers see the whole run), then follows
/// live records until the job settles, and ends with the `{"end":...}`
/// marker. The connection then returns to request/response mode.
///
/// Jobs a peer daemon holds have no local journal; their spans fan in
/// from the `<id>.journal` mirror the holder writes into the spool.
fn stream_journal(
    job: &str,
    writer: &mut TcpStream,
    state: &ServeState,
    cfg: &ServeConfig,
) -> io::Result<()> {
    let entry = match state.entry(job) {
        Ok(entry) => entry,
        Err(err) => return respond(writer, &err.to_line()),
    };
    if entry.state == JobState::Remote {
        return tail_spool_journal(job, writer, state, cfg);
    }
    if entry.state.settled() && entry.journal.is_empty() {
        // Settled by a peer or a previous process: replay its mirrored
        // journal (when one exists) instead of an empty stream.
        replay_journal_file(&cfg.journal_path(job), 0, writer)?;
        return respond(writer, &end_marker(job, entry.state.as_str()));
    }
    let sub = entry.journal.subscribe();
    loop {
        match sub.recv_timeout(Duration::from_millis(50)) {
            Some(record) => respond(writer, &record.to_json())?,
            None => {
                let entry = match state.entry(job) {
                    Ok(entry) => entry,
                    Err(_) => break,
                };
                if entry.state.settled() {
                    // The run emits its last record before the worker
                    // settles the job, so one final drain is complete.
                    for record in sub.drain() {
                        respond(writer, &record.to_json())?;
                    }
                    respond(writer, &end_marker(job, entry.state.as_str()))?;
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

/// Writes the complete lines of a journal mirror starting at byte
/// `offset`; returns the offset one past the last complete line.
fn replay_journal_file(path: &Path, offset: usize, writer: &mut TcpStream) -> io::Result<usize> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    // Shrunk below our offset: the holder (re)attached and truncated the
    // mirror — start over, replaying its fresh backlog.
    let offset = if text.len() < offset { 0 } else { offset };
    let chunk = &text[offset..];
    let complete = chunk.rfind('\n').map_or(0, |i| i + 1);
    for line in chunk[..complete].lines().filter(|l| !l.trim().is_empty()) {
        respond(writer, line)?;
    }
    Ok(offset + complete)
}

/// `subscribe` fan-in for a job some peer daemon runs: tails the spool
/// journal mirror until the job settles locally (the fleet loop settles
/// it from the peer's `.out`/`.fail`), then emits the end marker. When
/// the job comes home instead (the peer died and a local worker stole
/// it), switches to the live in-memory stream.
fn tail_spool_journal(
    job: &str,
    writer: &mut TcpStream,
    state: &ServeState,
    cfg: &ServeConfig,
) -> io::Result<()> {
    let path = cfg.journal_path(job);
    let mut offset = 0usize;
    loop {
        offset = replay_journal_file(&path, offset, writer)?;
        let entry = match state.entry(job) {
            Ok(entry) => entry,
            Err(_) => return Ok(()),
        };
        if entry.state.settled() {
            replay_journal_file(&path, offset, writer)?;
            return respond(writer, &end_marker(job, entry.state.as_str()));
        }
        if entry.state != JobState::Remote {
            return stream_journal(job, writer, state, cfg);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_paths_and_defaults() {
        let cfg = ServeConfig::default();
        assert!(!cfg.warm_start, "bit-for-bit resume needs cold starts");
        assert!(cfg.slots >= 1);
        assert!(
            cfg.lease_expiry >= cfg.heartbeat * 4,
            "expiry must dwarf the heartbeat or live leases get stolen"
        );
        assert_eq!(
            cfg.checkpoint_path("job-0001"),
            cfg.spool.join("job-0001.ckpt")
        );
        assert_eq!(cfg.req_path("j").extension().unwrap(), "req");
        assert_eq!(cfg.out_path("j").extension().unwrap(), "out");
        assert_eq!(cfg.fail_path("j").extension().unwrap(), "fail");
        assert_eq!(cfg.journal_path("j").extension().unwrap(), "journal");
        let other = ServeConfig::default();
        assert_ne!(cfg.owner, other.owner, "default owner ids are unique");
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("specwise-serve-aw-{}", unique_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.out");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .count();
        assert_eq!(leftovers, 0, "temp files never outlive the rename");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_writes_collide_exactly_once_per_path() {
        let dir = std::env::temp_dir().join(format!("specwise-serve-xw-{}", unique_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job-0001.req");
        write_new(&path, "first").unwrap();
        let err = write_new(&path, "second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
