//! The daemon: a TCP accept loop (thread per connection) over a shared
//! job scheduler drained by a sharded worker pool.
//!
//! Life of a job: a client submits an annotated deck; the handler
//! compiles it through the hardened limited parser *before* accepting
//! (malformed and oversized decks bounce with a structured error and the
//! daemon keeps serving), persists the spec to the spool as `<id>.req`,
//! and queues it. A worker slot claims the job, runs the full Fig. 6
//! flow under the tenant's shared simulation budget, checkpoints into
//! the spool after every iteration, and streams journal records to any
//! subscribed client. The settled outcome lands in `<id>.out`
//! (atomically, tmp + rename). On restart the daemon rescans the spool:
//! specs with an outcome are served from it, specs without one re-enter
//! the queue and — thanks to their checkpoints — resume bit-for-bit.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use specwise_ckt::{DeckLimits, Testbench};
use specwise_exec::ExecConfig;
use specwise_trace::json;

use crate::job::{run_job, JobOutcome, JobRequest, JobSpec};
use crate::protocol::{end_marker, read_line_bounded, LineRead, Request, WireError};
use crate::state::ServeState;

/// Daemon configuration. Every field has a `SPECWISE_SERVE_*`
/// environment knob read by [`ServeConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`SPECWISE_SERVE_ADDR`). Port `0` picks a free
    /// port; [`Daemon::local_addr`] reports the bound one.
    pub addr: String,
    /// Spool directory for `.req`/`.ckpt`/`.out` job files
    /// (`SPECWISE_SERVE_SPOOL`).
    pub spool: PathBuf,
    /// Concurrent job slots; the evaluation worker pool is divided
    /// across them (`SPECWISE_SERVE_SLOTS`).
    pub slots: usize,
    /// Per-tenant simulation budget in evaluation calls
    /// (`SPECWISE_SERVE_TENANT_BUDGET`; `0` means unlimited).
    pub tenant_budget: u64,
    /// Maximum request line length in bytes (`SPECWISE_SERVE_MAX_LINE`).
    pub max_line_bytes: usize,
    /// Deck ingestion limits; `SPECWISE_SERVE_MAX_DECK` overrides the
    /// byte cap.
    pub deck_limits: DeckLimits,
    /// Enable the warm-start cache (`SPECWISE_SERVE_WARM_START`, `0`/`1`).
    /// Off by default: checkpoints restore optimizer state, not solver
    /// caches, and bit-for-bit resume after a restart requires cold
    /// starts.
    pub warm_start: bool,
    /// Evaluation-engine base configuration (shared `SPECWISE_WORKERS`
    /// etc. knobs), sharded [`ServeConfig::slots`] ways per job.
    pub exec: ExecConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7601".into(),
            spool: std::env::temp_dir().join("specwise-spool"),
            slots: 2,
            tenant_budget: u64::MAX,
            max_line_bytes: 4 << 20,
            deck_limits: DeckLimits::default(),
            warm_start: false,
            exec: ExecConfig::default(),
        }
    }
}

fn parse_var<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!(
                "specwise-serve: ignoring malformed {name}={raw:?} (not a valid value); \
                 keeping default"
            );
            None
        }
    }
}

impl ServeConfig {
    /// Reads the configuration from the environment, starting from the
    /// defaults. Set-but-malformed values keep their default after a
    /// one-line stderr warning naming the variable.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = std::env::var("SPECWISE_SERVE_ADDR")
            .ok()
            .filter(|s| !s.trim().is_empty())
        {
            cfg.addr = addr.trim().to_owned();
        }
        if let Some(spool) = std::env::var("SPECWISE_SERVE_SPOOL")
            .ok()
            .filter(|s| !s.trim().is_empty())
        {
            cfg.spool = PathBuf::from(spool.trim());
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_SLOTS") {
            cfg.slots = n.max(1);
        }
        if let Some(n) = parse_var::<u64>("SPECWISE_SERVE_TENANT_BUDGET") {
            cfg.tenant_budget = if n == 0 { u64::MAX } else { n };
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_MAX_LINE") {
            cfg.max_line_bytes = n.max(1024);
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_SERVE_MAX_DECK") {
            cfg.deck_limits.max_bytes = n;
        }
        if let Some(n) = parse_var::<u8>("SPECWISE_SERVE_WARM_START") {
            cfg.warm_start = n != 0;
        }
        cfg.exec = ExecConfig::from_env();
        cfg
    }

    /// The spool path of a job's checkpoint.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.ckpt"))
    }

    fn req_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.req"))
    }

    fn out_path(&self, id: &str) -> PathBuf {
        self.spool.join(format!("{id}.out"))
    }
}

/// Atomic file write: temp file in the same directory, then rename.
fn write_atomic(path: &std::path::Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown`] (tests) or [`Daemon::join`] (the binary).
#[derive(Debug)]
pub struct Daemon {
    state: Arc<ServeState>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the daemon: creates the spool, recovers spooled jobs from
    /// a previous process, binds the listener, and spawns the accept
    /// loop plus `cfg.slots` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates spool-creation and socket-bind failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&cfg.spool)?;
        let state = Arc::new(ServeState::new(cfg.tenant_budget));
        let cfg = Arc::new(cfg);
        recover_spool(&cfg, &state);

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        let workers = (0..cfg.slots)
            .map(|slot| {
                let state = Arc::clone(&state);
                let cfg = Arc::clone(&cfg);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{slot}"))
                    .spawn(move || worker_loop(&state, &cfg))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let state = Arc::clone(&state);
            let cfg = Arc::clone(&cfg);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if state.is_shutdown() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let state = Arc::clone(&state);
                        let cfg = Arc::clone(&cfg);
                        // Handler threads are detached: they end at peer
                        // EOF, and at shutdown they die with the process
                        // (tests) or the failing socket.
                        let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(
                            move || {
                                let _ = handle_connection(stream, &state, &cfg);
                            },
                        );
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Daemon {
            state,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound listen address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared scheduler state (used by in-process tests).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful stop: drains nothing — workers finish their current job
    /// and exit, queued jobs stay in the spool for the next start.
    pub fn shutdown(mut self) {
        self.state.shutdown();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks the caller until the accept loop exits (the binary's main
    /// thread parks here; the daemon runs until the process is killed).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Rescans the spool directory after a restart. Specs with a settled
/// outcome are inserted as done; the rest re-enter the queue in job-id
/// order (their checkpoints make the re-run resume, not restart).
fn recover_spool(cfg: &ServeConfig, state: &ServeState) {
    let Ok(entries) = std::fs::read_dir(&cfg.spool) else {
        return;
    };
    let mut ids: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_suffix(".req").map(str::to_owned)
        })
        .collect();
    ids.sort();
    let mut max_seen = 0u64;
    for id in ids {
        let text = match std::fs::read_to_string(cfg.req_path(&id)) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("specwise-serve: skipping unreadable spool entry {id}: {e}");
                continue;
            }
        };
        let spec = match JobSpec::from_json_str(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("specwise-serve: skipping corrupt spool entry {id}: {e}");
                continue;
            }
        };
        if let Some(n) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
            max_seen = max_seen.max(n);
        }
        match std::fs::read_to_string(cfg.out_path(&id)) {
            Ok(out) => match JobOutcome::from_json_str(&out) {
                Ok(outcome) => state.insert_settled(spec, outcome),
                Err(e) => {
                    eprintln!("specwise-serve: re-running {id} (corrupt outcome: {e})");
                    state.enqueue(spec);
                }
            },
            Err(_) => {
                state.enqueue(spec);
            }
        }
    }
    state.reserve_ids_through(max_seen);
}

fn worker_loop(state: &ServeState, cfg: &ServeConfig) {
    while let Some((spec, journal, budget)) = state.claim() {
        let result = run_job(&spec, cfg, &budget, &journal);
        if let Ok(outcome) = &result {
            if let Err(e) = write_atomic(&cfg.out_path(&spec.id), &outcome.to_json()) {
                eprintln!(
                    "specwise-serve: failed to spool outcome of {}: {e}",
                    spec.id
                );
            }
        }
        state.finish(&spec.id, result);
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        match read_line_bounded(&mut reader, cfg.max_line_bytes, &mut buf)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                let err = WireError::new(
                    "oversized",
                    format!(
                        "request line exceeds {} bytes; submit a smaller deck",
                        cfg.max_line_bytes
                    ),
                );
                respond(&mut writer, &err.to_line())?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match Request::parse(&line) {
                    Err(err) => respond(&mut writer, &err.to_line())?,
                    Ok(req) => dispatch(req, &mut reader, &mut writer, state, cfg)?,
                }
            }
        }
    }
}

fn dispatch(
    req: Request,
    _reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
) -> io::Result<()> {
    match req {
        Request::Submit(request) => match accept_job(request, state, cfg) {
            Ok(id) => {
                let mut line = String::from("{\"ok\":true,\"job\":");
                json::write_json_string(&mut line, &id);
                line.push('}');
                respond(writer, &line)
            }
            Err(err) => respond(writer, &err.to_line()),
        },
        Request::Status => respond(writer, &state.status_line()),
        Request::Result { job, wait } => {
            let entry = if wait {
                state.wait_settled(&job)
            } else {
                state.entry(&job)
            };
            match entry {
                Err(err) => respond(writer, &err.to_line()),
                Ok(entry) => {
                    let mut line = String::from("{\"ok\":true,\"job\":");
                    json::write_json_string(&mut line, &job);
                    line.push_str(",\"state\":");
                    json::write_json_string(&mut line, entry.state.as_str());
                    match (&entry.outcome, &entry.error) {
                        (Some(outcome), _) => {
                            line.push_str(",\"outcome\":");
                            line.push_str(&outcome.to_json());
                        }
                        (None, Some(reason)) => {
                            line.push_str(",\"error\":{\"kind\":\"job-failed\",\"message\":");
                            json::write_json_string(&mut line, reason);
                            line.push('}');
                        }
                        (None, None) => {}
                    }
                    line.push('}');
                    respond(writer, &line)
                }
            }
        }
        Request::Subscribe { job } => match state.entry(&job) {
            Err(err) => respond(writer, &err.to_line()),
            Ok(_) => {
                let mut line = String::from("{\"ok\":true,\"job\":");
                json::write_json_string(&mut line, &job);
                line.push('}');
                respond(writer, &line)?;
                stream_journal(&job, writer, state)
            }
        },
    }
}

/// Validates and accepts a submission: the deck must compile through the
/// limited parser *now* (the untrusted boundary — a hostile deck is
/// rejected synchronously with a structured error and never reaches a
/// worker), then the spec is spooled and queued.
fn accept_job(
    request: JobRequest,
    state: &ServeState,
    cfg: &ServeConfig,
) -> Result<String, WireError> {
    if let Err(e) = Testbench::from_deck_limited(&request.deck, &cfg.deck_limits) {
        return Err(WireError::new("deck", format!("deck rejected: {e}")));
    }
    let options = request
        .resolve()
        .map_err(|e| WireError::new("bad-request", e))?;
    let spec = JobSpec {
        id: state.next_id(),
        tenant: request.tenant,
        deck: request.deck,
        options,
    };
    write_atomic(&cfg.req_path(&spec.id), &spec.to_json())
        .map_err(|e| WireError::new("bad-request", format!("failed to spool job: {e}")))?;
    let id = spec.id.clone();
    state.enqueue(spec);
    Ok(id)
}

/// Streams the job's journal to the peer: the subscription starts with
/// the full backlog (late subscribers see the whole run), then follows
/// live records until the job settles, and ends with the `{"end":...}`
/// marker. The connection then returns to request/response mode.
fn stream_journal(job: &str, writer: &mut TcpStream, state: &ServeState) -> io::Result<()> {
    let entry = match state.entry(job) {
        Ok(entry) => entry,
        Err(err) => return respond(writer, &err.to_line()),
    };
    let sub = entry.journal.subscribe();
    loop {
        match sub.recv_timeout(Duration::from_millis(50)) {
            Some(record) => respond(writer, &record.to_json())?,
            None => {
                let entry = match state.entry(job) {
                    Ok(entry) => entry,
                    Err(_) => break,
                };
                if entry.state.settled() {
                    // The run emits its last record before the worker
                    // settles the job, so one final drain is complete.
                    for record in sub.drain() {
                        respond(writer, &record.to_json())?;
                    }
                    respond(writer, &end_marker(job, entry.state.as_str()))?;
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_paths_and_defaults() {
        let cfg = ServeConfig::default();
        assert!(!cfg.warm_start, "bit-for-bit resume needs cold starts");
        assert!(cfg.slots >= 1);
        assert_eq!(
            cfg.checkpoint_path("job-0001"),
            cfg.spool.join("job-0001.ckpt")
        );
        assert_eq!(cfg.req_path("j").extension().unwrap(), "req");
        assert_eq!(cfg.out_path("j").extension().unwrap(), "out");
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("specwise-serve-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.out");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
