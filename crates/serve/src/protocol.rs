//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every client→daemon request is one JSON object on one line; every
//! daemon→client response is one JSON object on one line carrying an
//! `"ok"` field. A [`Request::Subscribe`] additionally switches the
//! connection into streaming mode: the daemon forwards journal records
//! (one [`Record`](specwise_trace::Record) JSON line each, the exact
//! schema of the JSONL journal writer) until the job settles, then sends
//! an `{"end":true,...}` marker and returns to request/response mode.
//!
//! This is an untrusted-input boundary. Request lines are read through
//! [`read_line_bounded`] so a hostile peer cannot balloon memory with an
//! endless line, and [`Request::parse`] turns every malformed line into a
//! structured [`WireError`] instead of a panic or a dropped connection.

use std::io::{self, BufRead};

use specwise_trace::json::{self, Json};
use specwise_trace::TraceValue;

use crate::job::JobRequest;

/// Canonical command names of the wire protocol, in the order
/// `docs/PROTOCOL.md` documents them. [`Request::parse`] accepts exactly
/// these; the `protocol_docs` test cross-checks the document against
/// this list so the reference can never silently drift.
pub const COMMANDS: [&str; 4] = ["submit", "status", "result", "subscribe"];

/// Canonical error `kind` values a response can carry, in the order
/// `docs/PROTOCOL.md` documents them. Cross-checked by the
/// `protocol_docs` test like [`COMMANDS`].
pub const ERROR_KINDS: [&str; 6] = [
    "malformed",
    "bad-request",
    "oversized",
    "deck",
    "unknown-job",
    "job-failed",
];

/// Wire names of the job lifecycle states (see
/// [`JobState::as_str`](crate::state::JobState::as_str)), in lifecycle
/// order. Cross-checked by the `protocol_docs` test like [`COMMANDS`].
pub const JOB_STATES: [&str; 5] = ["queued", "running", "remote", "done", "failed"];

/// A structured protocol-level error, serialized on the wire as
/// `{"ok":false,"error":{"kind":...,"message":...}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable category: `"malformed"`, `"oversized"`,
    /// `"deck"`, `"unknown-job"`, `"bad-request"`, or `"job-failed"`.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Creates an error of the given kind.
    pub fn new(kind: &str, message: impl Into<String>) -> WireError {
        WireError {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// The error as a one-line response (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"ok\":false,\"error\":{\"kind\":");
        json::write_json_string(&mut out, &self.kind);
        out.push_str(",\"message\":");
        json::write_json_string(&mut out, &self.message);
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

/// Outcome of one bounded line read.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line within the size bound (terminator stripped).
    Line(String),
    /// The line exceeded the bound; the excess was drained up to the next
    /// terminator so the connection can keep serving requests.
    Oversized,
    /// The peer closed the connection.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max_bytes` bytes.
///
/// Unlike [`BufRead::read_line`], this never buffers more than
/// `max_bytes + 1` bytes no matter what the peer sends. An oversized line
/// is consumed (discarded) through its terminator, so the caller can
/// report a structured error and continue with the next request.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineRead> {
    buf.clear();
    let n = std::io::Read::take(&mut *reader, max_bytes as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.len() > max_bytes && !buf.ends_with(b"\n") {
        // Drain the rest of the oversized line so the stream re-syncs at
        // the next terminator.
        loop {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    reader.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    reader.consume(len);
                }
            }
        }
        return Ok(LineRead::Oversized);
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(LineRead::Line(String::from_utf8_lossy(buf).into_owned()))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit an annotated deck as a new job.
    Submit(JobRequest),
    /// Daemon status: job table, cache hit rate, per-tenant sim counts.
    Status,
    /// Fetch a job's result, optionally blocking until it settles.
    Result {
        /// Job id returned by submit.
        job: String,
        /// Block until the job is done or failed.
        wait: bool,
    },
    /// Stream the job's journal records (backlog + live) to this client.
    Subscribe {
        /// Job id returned by submit.
        job: String,
    },
}

fn req_str(j: &Json, key: &str) -> Option<String> {
    j.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn req_u64(j: &Json, key: &str, out: &mut Option<u64>) -> Result<(), WireError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(()),
        Some(v) => match v.as_u64() {
            Some(n) => {
                *out = Some(n);
                Ok(())
            }
            None => Err(WireError::new(
                "bad-request",
                format!("field {key:?} must be a non-negative integer"),
            )),
        },
    }
}

fn req_bool(j: &Json, key: &str, default: bool) -> Result<bool, WireError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(WireError::new(
            "bad-request",
            format!("field {key:?} must be a boolean"),
        )),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] of kind `"malformed"` for invalid JSON and
    /// `"bad-request"` for a valid object with a missing/unknown `cmd` or
    /// ill-typed fields. Never panics on any input.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let j = json::parse(line)
            .map_err(|e| WireError::new("malformed", format!("invalid JSON request: {e}")))?;
        let cmd = req_str(&j, "cmd")
            .ok_or_else(|| WireError::new("bad-request", "missing string field \"cmd\""))?;
        match cmd.as_str() {
            "submit" => {
                let deck = req_str(&j, "deck").ok_or_else(|| {
                    WireError::new("bad-request", "submit requires a string field \"deck\"")
                })?;
                let tenant = req_str(&j, "tenant").unwrap_or_else(|| "default".to_owned());
                let mut req = JobRequest::new(deck, tenant);
                req_u64(&j, "seed", &mut req.seed)?;
                req_u64(&j, "mc_samples", &mut req.mc_samples)?;
                req_u64(&j, "verify_samples", &mut req.verify_samples)?;
                req_u64(&j, "max_iterations", &mut req.max_iterations)?;
                match j.get("estimator") {
                    None | Some(Json::Null) => {}
                    Some(v) => match v.as_str() {
                        Some(name) => req.estimator = Some(name.to_owned()),
                        None => {
                            return Err(WireError::new(
                                "bad-request",
                                "field \"estimator\" must be a string (mc | is | norm-min)",
                            ))
                        }
                    },
                }
                Ok(Request::Submit(req))
            }
            "status" => Ok(Request::Status),
            "result" => {
                let job = req_str(&j, "job").ok_or_else(|| {
                    WireError::new("bad-request", "result requires a string field \"job\"")
                })?;
                let wait = req_bool(&j, "wait", false)?;
                Ok(Request::Result { job, wait })
            }
            "subscribe" => {
                let job = req_str(&j, "job").ok_or_else(|| {
                    WireError::new("bad-request", "subscribe requires a string field \"job\"")
                })?;
                Ok(Request::Subscribe { job })
            }
            other => Err(WireError::new(
                "bad-request",
                format!("unknown cmd {other:?} (expected submit/status/result/subscribe)"),
            )),
        }
    }

    /// The request as a one-line JSON string (no trailing newline) — the
    /// inverse of [`Request::parse`], used by the client.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Submit(req) => {
                out.push_str("{\"cmd\":\"submit\",\"deck\":");
                json::write_json_string(&mut out, &req.deck);
                out.push_str(",\"tenant\":");
                json::write_json_string(&mut out, &req.tenant);
                for (key, val) in [
                    ("seed", req.seed),
                    ("mc_samples", req.mc_samples),
                    ("verify_samples", req.verify_samples),
                    ("max_iterations", req.max_iterations),
                ] {
                    if let Some(n) = val {
                        out.push_str(&format!(",\"{key}\":{n}"));
                    }
                }
                if let Some(name) = &req.estimator {
                    out.push_str(",\"estimator\":");
                    json::write_json_string(&mut out, name);
                }
                out.push('}');
            }
            Request::Status => out.push_str("{\"cmd\":\"status\"}"),
            Request::Result { job, wait } => {
                out.push_str("{\"cmd\":\"result\",\"job\":");
                json::write_json_string(&mut out, job);
                out.push_str(&format!(",\"wait\":{wait}}}"));
            }
            Request::Subscribe { job } => {
                out.push_str("{\"cmd\":\"subscribe\",\"job\":");
                json::write_json_string(&mut out, job);
                out.push('}');
            }
        }
        out
    }
}

/// `true` when a streamed line is the `{"end":...}` marker that closes a
/// subscription, rather than a journal record.
pub fn is_end_marker(j: &Json) -> bool {
    matches!(j.get("end"), Some(Json::Bool(true)))
}

/// Renders the end-of-stream marker for a settled job.
pub fn end_marker(job: &str, state: &str) -> String {
    let mut out = String::from("{\"end\":true,\"job\":");
    json::write_json_string(&mut out, job);
    out.push_str(",\"state\":");
    json::write_json_string(&mut out, state);
    out.push('}');
    out
}

/// Extracts an event attribute as a string (used by tests and the CLI to
/// inspect streamed records without pattern-matching `TraceValue`).
pub fn attr_str<'a>(attrs: &'a [(String, TraceValue)], key: &str) -> Option<&'a str> {
    attrs.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
        if let TraceValue::Str(s) = v {
            Some(s.as_str())
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn bounded_reader_accepts_small_rejects_huge_and_resyncs() {
        let mut input = Vec::new();
        input.extend_from_slice(b"short line\n");
        input.extend_from_slice(&vec![b'x'; 5000]);
        input.extend_from_slice(b"\nafter\n");
        let mut r = BufReader::new(&input[..]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_line_bounded(&mut r, 1024, &mut buf).unwrap(),
            LineRead::Line(ref s) if s == "short line"
        ));
        assert!(matches!(
            read_line_bounded(&mut r, 1024, &mut buf).unwrap(),
            LineRead::Oversized
        ));
        // The oversized line was drained: the next read sees "after".
        assert!(matches!(
            read_line_bounded(&mut r, 1024, &mut buf).unwrap(),
            LineRead::Line(ref s) if s == "after"
        ));
        assert!(matches!(
            read_line_bounded(&mut r, 1024, &mut buf).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn bounded_reader_edge_cases() {
        // Exactly max bytes + newline is fine.
        let input = b"aaaa\n";
        let mut r = BufReader::new(&input[..]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_line_bounded(&mut r, 4, &mut buf).unwrap(),
            LineRead::Line(ref s) if s == "aaaa"
        ));
        // An unterminated final line within bounds still parses.
        let input = b"tail";
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 16, &mut buf).unwrap(),
            LineRead::Line(ref s) if s == "tail"
        ));
        // An unterminated oversized line hits EOF while draining.
        let input = [b'y'; 64];
        let mut r = BufReader::new(&input[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 8, &mut buf).unwrap(),
            LineRead::Oversized
        ));
        assert!(matches!(
            read_line_bounded(&mut r, 8, &mut buf).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn requests_round_trip_through_their_lines() {
        let mut req = JobRequest::new("vdd vdd 0 3.3".to_owned(), "acme".to_owned());
        req.seed = Some(7);
        req.mc_samples = Some(2000);
        req.estimator = Some("norm-min".to_owned());
        let reqs = [
            Request::Submit(req),
            Request::Status,
            Request::Result {
                job: "job-0001".into(),
                wait: true,
            },
            Request::Subscribe {
                job: "job-0002".into(),
            },
        ];
        for r in &reqs {
            assert_eq!(&Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn hostile_request_lines_yield_structured_errors() {
        for (line, kind) in [
            ("not json at all", "malformed"),
            ("{\"cmd\":42}", "bad-request"),
            ("{\"no\":\"cmd\"}", "bad-request"),
            ("{\"cmd\":\"launch-missiles\"}", "bad-request"),
            ("{\"cmd\":\"submit\"}", "bad-request"),
            (
                "{\"cmd\":\"submit\",\"deck\":\"x\",\"seed\":\"NaN\"}",
                "bad-request",
            ),
            (
                "{\"cmd\":\"submit\",\"deck\":\"x\",\"estimator\":42}",
                "bad-request",
            ),
            ("{\"cmd\":\"result\"}", "bad-request"),
            (
                "{\"cmd\":\"result\",\"job\":\"j\",\"wait\":\"yes\"}",
                "bad-request",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.kind, kind, "line {line:?}");
            // The error itself serializes to a parseable response line.
            let j = json::parse(&err.to_line()).unwrap();
            assert_eq!(j.get("ok"), Some(&Json::Bool(false)));
        }
    }

    #[test]
    fn canonical_name_tables_match_the_implementation() {
        // Every canonical command is recognized (it may still want more
        // fields, but never bounces as an unknown command) …
        for cmd in COMMANDS {
            if let Err(e) = Request::parse(&format!("{{\"cmd\":\"{cmd}\"}}")) {
                assert!(!e.message.contains("unknown cmd"), "{cmd}: {e}");
            }
        }
        // … and the unknown-command error names exactly the table.
        let err = Request::parse("{\"cmd\":\"nope\"}").unwrap_err();
        for cmd in COMMANDS {
            assert!(err.message.contains(cmd), "error must list {cmd:?}: {err}");
        }
        use crate::state::JobState;
        assert_eq!(
            JOB_STATES,
            [
                JobState::Queued,
                JobState::Running,
                JobState::Remote,
                JobState::Done,
                JobState::Failed
            ]
            .map(|s| s.as_str())
        );
    }

    #[test]
    fn end_marker_is_recognizable() {
        let j = json::parse(&end_marker("job-0003", "done")).unwrap();
        assert!(is_end_marker(&j));
        assert_eq!(j.get("state").and_then(Json::as_str), Some("done"));
        let rec = json::parse("{\"type\":\"span\",\"name\":\"run\"}").unwrap();
        assert!(!is_end_marker(&rec));
    }
}
