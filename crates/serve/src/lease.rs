//! Spool-level job leasing: the claim/heartbeat/steal protocol that lets
//! any number of daemons share one spool directory.
//!
//! Every running job is guarded by a `<id>.lease` file next to its
//! `<id>.req`. The protocol needs nothing beyond a shared POSIX
//! filesystem:
//!
//! * **Claim** — the lease file is created with `O_EXCL`
//!   ([`std::fs::OpenOptions::create_new`]): exactly one daemon can
//!   create it, so exactly one daemon runs the job.
//! * **Heartbeat** — the holder rewrites the file in place (temp file +
//!   rename, the spool-wide atomic-write discipline), refreshing its
//!   modification time. A lease whose mtime is older than the expiry
//!   window belongs to a daemon that stopped heartbeating — i.e. died.
//! * **Steal** — an expired lease is *renamed* to a unique stale name
//!   before the thief claims the job. Rename arbitrates the race: if two
//!   daemons try to steal the same lease, the second rename fails with
//!   `NotFound`, so exactly one thief proceeds to re-create the lease
//!   (with the epoch bumped) and resume the job from its checkpoint.
//!
//! The safety argument depends on expiry ≫ heartbeat interval and on the
//! spool living on one filesystem whose clock all daemons see (steal
//! decisions compare a file mtime against local time). A holder that is
//! merely *paused* past the expiry (SIGSTOP, VM freeze) can lose its
//! lease to a peer and run concurrently for a while — harmless here,
//! because the flow is deterministic and outcome writes are atomic and
//! idempotent, but the holder detects the loss at its next heartbeat
//! ([`Lease::is_lost`]) and stops renewing.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use specwise_trace::json::{self, Json};

/// The decoded content of a lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Daemon identity that holds (or last held) the lease.
    pub owner: String,
    /// Claim generation: 1 on first claim, incremented by every steal.
    pub epoch: u64,
    /// The guarded job id.
    pub job: String,
}

impl LeaseInfo {
    fn to_json(&self) -> String {
        let mut out = String::from("{\"owner\":");
        json::write_json_string(&mut out, &self.owner);
        out.push_str(&format!(",\"epoch\":{},\"job\":", self.epoch));
        json::write_json_string(&mut out, &self.job);
        out.push('}');
        out
    }

    fn from_json_str(text: &str) -> Option<LeaseInfo> {
        let j = json::parse(text).ok()?;
        Some(LeaseInfo {
            owner: j.get("owner").and_then(Json::as_str)?.to_string(),
            epoch: j.get("epoch").and_then(Json::as_u64)?,
            job: j.get("job").and_then(Json::as_str)?.to_string(),
        })
    }
}

/// Result of [`acquire`]: either we hold the lease now, or a live peer
/// does.
#[derive(Debug)]
pub enum Acquire {
    /// The lease is ours. `stolen` is `Some(previous)` when it was taken
    /// over from an expired holder.
    Acquired {
        /// The held lease; keep it alive and heartbeat it while running.
        lease: Lease,
        /// The expired holder's info when this claim was a steal.
        stolen: Option<LeaseInfo>,
    },
    /// A peer holds a fresh lease on the job.
    HeldByPeer(LeaseInfo),
}

/// A held job lease. The holder heartbeats it periodically and releases
/// it when the job settles; dropping it without [`Lease::release`] leaves
/// the file behind, to be stolen by a peer after the expiry window (which
/// is exactly the crash story).
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    info: LeaseInfo,
    lost: AtomicBool,
}

/// Path of the lease file guarding `job` in `spool`.
pub fn lease_path(spool: &Path, job: &str) -> PathBuf {
    spool.join(format!("{job}.lease"))
}

/// Process-wide nonce for unique temp/stale file names (two daemons in
/// one test process share a pid, so the pid alone is not unique).
fn nonce() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn unique_suffix() -> String {
    format!("{}-{}", std::process::id(), nonce())
}

/// Age of `path` by modification time; `None` when the file vanished or
/// the clock went backwards (both mean "treat as fresh" — never steal on
/// uncertain evidence).
fn file_age(path: &Path) -> Option<Duration> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(mtime).ok()
}

fn create_exclusive(path: &Path, content: &str) -> io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)?;
    file.write_all(content.as_bytes())?;
    file.sync_all()
}

/// Tries to claim the lease on `job` for `owner`.
///
/// A missing lease file is claimed directly. An existing lease younger
/// than `expiry` belongs to a live peer ([`Acquire::HeldByPeer`]). An
/// existing lease older than `expiry` — or older and unparseable — is
/// stolen through the rename arbitration described in the module docs.
///
/// # Errors
///
/// Propagates filesystem failures other than the expected claim/steal
/// races (those resolve to `HeldByPeer` or a retry internally).
pub fn acquire(spool: &Path, job: &str, owner: &str, expiry: Duration) -> io::Result<Acquire> {
    let path = lease_path(spool, job);
    // Bounded retries: each loop iteration either succeeds, returns
    // HeldByPeer, or observes a concurrent claim/steal in flight; a few
    // rounds of losing every race means a peer genuinely has the job.
    for _ in 0..4 {
        let fresh = LeaseInfo {
            owner: owner.to_string(),
            epoch: 1,
            job: job.to_string(),
        };
        match create_exclusive(&path, &fresh.to_json()) {
            Ok(()) => {
                return Ok(Acquire::Acquired {
                    lease: Lease {
                        path,
                        info: fresh,
                        lost: AtomicBool::new(false),
                    },
                    stolen: None,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(e),
        }
        // Someone holds a lease file. Fresh → theirs; expired → steal.
        let Some(age) = file_age(&path) else {
            // Vanished between create and stat: the holder released or a
            // thief completed; retry the claim.
            continue;
        };
        let previous = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| LeaseInfo::from_json_str(&text));
        if age < expiry {
            match previous {
                Some(info) => return Ok(Acquire::HeldByPeer(info)),
                // Fresh but unreadable/corrupt: a claim is mid-write.
                // Treat as held; the next acquire sees the full file.
                None => {
                    return Ok(Acquire::HeldByPeer(LeaseInfo {
                        owner: "<unreadable>".to_string(),
                        epoch: 0,
                        job: job.to_string(),
                    }))
                }
            }
        }
        // Expired: rename-arbitrate the steal. Only one renamer wins;
        // the loser sees NotFound and retries (the winner's new lease
        // will then read as fresh).
        let stale = spool.join(format!("{job}.lease.stale-{}", unique_suffix()));
        match std::fs::rename(&path, &stale) {
            Ok(()) => {
                let _ = std::fs::remove_file(&stale);
                let epoch = previous.as_ref().map(|p| p.epoch).unwrap_or(0) + 1;
                let info = LeaseInfo {
                    owner: owner.to_string(),
                    epoch,
                    job: job.to_string(),
                };
                match create_exclusive(&path, &info.to_json()) {
                    Ok(()) => {
                        return Ok(Acquire::Acquired {
                            lease: Lease {
                                path,
                                info,
                                lost: AtomicBool::new(false),
                            },
                            stolen: previous,
                        });
                    }
                    // Lost the re-create to a parallel fresh claim
                    // (possible when the job was also still queued
                    // elsewhere); retry from the top.
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                    Err(e) => return Err(e),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Acquire::HeldByPeer(LeaseInfo {
        owner: "<contended>".to_string(),
        epoch: 0,
        job: job.to_string(),
    }))
}

/// Peeks at the lease guarding `job`: `None` when no lease file exists,
/// otherwise the decoded info (when readable) and whether it has expired.
pub fn inspect(spool: &Path, job: &str, expiry: Duration) -> Option<(Option<LeaseInfo>, bool)> {
    let path = lease_path(spool, job);
    if !path.exists() {
        return None;
    }
    let expired = file_age(&path).map(|age| age >= expiry).unwrap_or(false);
    let info = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| LeaseInfo::from_json_str(&text));
    Some((info, expired))
}

impl Lease {
    /// The decoded lease content (owner, epoch, job).
    pub fn info(&self) -> &LeaseInfo {
        &self.info
    }

    /// Refreshes the lease mtime (temp file + rename), proving liveness.
    ///
    /// Reads the file first: when the content no longer matches — a peer
    /// stole the lease while this process was paused — the lease is
    /// marked lost, nothing is written, and `false` is returned. The
    /// holder keeps running (the flow is deterministic and the outcome
    /// write idempotent) but stops claiming the job is its own.
    pub fn heartbeat(&self) -> io::Result<bool> {
        if self.lost.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let current = std::fs::read_to_string(&self.path)
            .ok()
            .and_then(|text| LeaseInfo::from_json_str(&text));
        if current.as_ref() != Some(&self.info) {
            self.lost.store(true, Ordering::Relaxed);
            return Ok(false);
        }
        let tmp = self
            .path
            .with_extension(format!("lease.hb-{}", unique_suffix()));
        std::fs::write(&tmp, self.info.to_json())?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(true)
    }

    /// `true` once a heartbeat observed the lease held by someone else.
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Removes the lease file — called when the job settles. A lost lease
    /// is left alone (it is the thief's now).
    pub fn release(&self) {
        if self.is_lost() {
            return;
        }
        let still_ours = std::fs::read_to_string(&self.path)
            .ok()
            .and_then(|text| LeaseInfo::from_json_str(&text))
            .as_ref()
            == Some(&self.info);
        if still_ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon liveness files: `spool/daemons/<owner>.alive`, heartbeated on the
// same cadence as leases. They exist purely for the `status` fleet report
// (live daemon count); correctness never depends on them.

/// Directory holding per-daemon liveness files.
pub fn daemons_dir(spool: &Path) -> PathBuf {
    spool.join("daemons")
}

/// Touches this daemon's liveness file (atomic rewrite refreshes mtime).
pub fn touch_alive(spool: &Path, owner: &str) -> io::Result<()> {
    let dir = daemons_dir(spool);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.alive", sanitize(owner)));
    let tmp = dir.join(format!(".alive-tmp-{}", unique_suffix()));
    std::fs::write(&tmp, owner)?;
    std::fs::rename(&tmp, &path)
}

/// Removes this daemon's liveness file (graceful shutdown).
pub fn remove_alive(spool: &Path, owner: &str) {
    let _ = std::fs::remove_file(daemons_dir(spool).join(format!("{}.alive", sanitize(owner))));
}

/// Counts daemons whose liveness file was touched within `expiry`.
pub fn live_daemons(spool: &Path, expiry: Duration) -> usize {
    let Ok(entries) = std::fs::read_dir(daemons_dir(spool)) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.file_name().to_string_lossy().ends_with(".alive")
                && file_age(&e.path()).map(|age| age < expiry).unwrap_or(false)
        })
        .count()
}

/// Filesystem-safe encoding of an identifier: alphanumerics, `.`, `_`
/// and `-` pass through, everything else becomes `%XX`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "specwise-lease-{tag}-{}-{}",
            std::process::id(),
            nonce()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const LONG: Duration = Duration::from_secs(3600);

    #[test]
    fn first_claim_wins_and_peers_see_it_held() {
        let dir = spool("claim");
        let a = acquire(&dir, "job-0001", "a", LONG).unwrap();
        let Acquire::Acquired { lease, stolen } = a else {
            panic!("first claim must acquire");
        };
        assert!(stolen.is_none());
        assert_eq!(lease.info().epoch, 1);
        match acquire(&dir, "job-0001", "b", LONG).unwrap() {
            Acquire::HeldByPeer(info) => assert_eq!(info.owner, "a"),
            other => panic!("peer must see the lease held, got {other:?}"),
        }
        // Release frees the job for the next claim.
        lease.release();
        assert!(matches!(
            acquire(&dir, "job-0001", "b", LONG).unwrap(),
            Acquire::Acquired { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_leases_are_stolen_with_an_epoch_bump() {
        let dir = spool("steal");
        let Acquire::Acquired { lease, .. } =
            acquire(&dir, "job-0001", "dead", Duration::ZERO).unwrap()
        else {
            panic!("claim");
        };
        // Expiry zero: the lease is instantly stale for everyone.
        match acquire(&dir, "job-0001", "thief", Duration::ZERO).unwrap() {
            Acquire::Acquired {
                lease: taken,
                stolen,
            } => {
                assert_eq!(taken.info().epoch, 2);
                assert_eq!(stolen.unwrap().owner, "dead");
            }
            other => panic!("expired lease must be stolen, got {other:?}"),
        }
        // The original holder notices at its next heartbeat.
        assert!(!lease.heartbeat().unwrap());
        assert!(lease.is_lost());
        // And release leaves the thief's lease untouched.
        lease.release();
        assert!(lease_path(&dir, "job-0001").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_refreshes_and_only_one_thief_wins_a_race() {
        let dir = spool("race");
        let Acquire::Acquired { lease, .. } = acquire(&dir, "job-0001", "a", LONG).unwrap() else {
            panic!("claim");
        };
        assert!(lease.heartbeat().unwrap());
        assert!(!lease.is_lost());
        // Race N thieves over an expired lease: exactly one must win. The
        // expiry must outlive the race so the winner's fresh lease reads
        // as held (a zero expiry would make every lease instantly stale).
        drop(lease);
        let expiry = Duration::from_millis(300);
        std::thread::sleep(Duration::from_millis(400));
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|i| {
                    let dir = dir.clone();
                    scope.spawn(move || {
                        matches!(
                            acquire(&dir, "job-0001", &format!("thief-{i}"), expiry).unwrap(),
                            Acquire::Acquired { .. }
                        ) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1, "rename arbitration admits exactly one thief");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn liveness_files_count_fresh_daemons_only() {
        let dir = spool("alive");
        assert_eq!(live_daemons(&dir, LONG), 0);
        touch_alive(&dir, "a").unwrap();
        touch_alive(&dir, "b/with:odd chars").unwrap();
        assert_eq!(live_daemons(&dir, LONG), 2);
        assert_eq!(live_daemons(&dir, Duration::ZERO), 0, "expired are dead");
        remove_alive(&dir, "a");
        assert_eq!(live_daemons(&dir, LONG), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_reports_holder_and_expiry() {
        let dir = spool("inspect");
        assert!(inspect(&dir, "job-0001", LONG).is_none());
        let Acquire::Acquired { lease, .. } = acquire(&dir, "job-0001", "a", LONG).unwrap() else {
            panic!("claim");
        };
        let (info, expired) = inspect(&dir, "job-0001", LONG).unwrap();
        assert_eq!(info.unwrap().owner, "a");
        assert!(!expired);
        let (_, expired) = inspect(&dir, "job-0001", Duration::ZERO).unwrap();
        assert!(expired);
        lease.release();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
