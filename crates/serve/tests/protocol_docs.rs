//! Keeps `docs/PROTOCOL.md` honest: every canonical wire name the
//! implementation exports (commands, error kinds, job states) must be
//! documented, and every command the document describes must exist in
//! the implementation. Run by the CI `serve` job.

use specwise_serve::protocol::{COMMANDS, ERROR_KINDS, JOB_STATES};

fn protocol_doc() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("docs/PROTOCOL.md must exist ({}): {e}", path.display()))
}

#[test]
fn every_wire_name_is_documented() {
    let doc = protocol_doc();
    for cmd in COMMANDS {
        assert!(
            doc.contains(&format!("### `{cmd}`")),
            "PROTOCOL.md lacks a section for command {cmd:?}"
        );
    }
    for kind in ERROR_KINDS {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "PROTOCOL.md does not document error kind {kind:?}"
        );
    }
    for state in JOB_STATES {
        assert!(
            doc.contains(&format!("`{state}`")),
            "PROTOCOL.md does not document job state {state:?}"
        );
    }
}

#[test]
fn every_documented_command_exists() {
    let doc = protocol_doc();
    // Command sections are `### `name`` headings; anything shaped like
    // one must name a real command.
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("### `") else {
            continue;
        };
        let Some(name) = rest.strip_suffix('`') else {
            continue;
        };
        assert!(
            COMMANDS.contains(&name),
            "PROTOCOL.md documents command {name:?}, which the implementation does not parse"
        );
    }
}
