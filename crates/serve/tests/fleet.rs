//! Multi-daemon fleet tests: N daemons sharing one spool coordinate
//! through `.lease` files and the tenant ledger, never run a job twice,
//! and recover a dead member's jobs bit-for-bit from its checkpoints.
//!
//! The fast tests run daemons in-process with short lease windows. The
//! `#[ignore]`d test (run by the CI `serve` job in release mode) spawns
//! two real `specwise-serve` binaries on one spool and SIGKILLs one
//! mid-run.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{FiveTransistorOta, FoldedCascode, MillerOpamp, Testbench};
use specwise_exec::{EvalService, ExecConfig};
use specwise_harden::KillSwitch;
use specwise_serve::{
    lease, Client, Daemon, JobOptions, JobOutcome, JobSpec, ServeConfig, SubmitOptions,
};
use specwise_trace::{Record, TraceValue};

fn unique_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specwise-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    dir
}

/// An in-process fleet member: unique owner name, shared spool, short
/// fleet tick so peers' spool writes are noticed in tenths of a second.
fn member_config(spool: &Path, owner: &str, slots: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".into();
    cfg.spool = spool.to_path_buf();
    cfg.owner = owner.to_owned();
    cfg.slots = slots;
    cfg.heartbeat = Duration::from_millis(100);
    // Generous expiry by default: these tests exercise cooperation, not
    // stealing (the steal test shortens it explicitly).
    cfg.lease_expiry = Duration::from_secs(60);
    cfg
}

fn assert_bits_equal(wire: &[f64], direct: &[f64], what: &str) {
    assert_eq!(wire.len(), direct.len(), "{what}: design arity");
    for (i, (w, d)) in wire.iter().zip(direct.iter()).enumerate() {
        assert_eq!(
            w.to_bits(),
            d.to_bits(),
            "{what}: design[{i}] differs ({w} vs {d})"
        );
    }
}

#[test]
fn two_daemons_share_one_spool_and_claim_disjoint_jobs() {
    let spool = unique_spool("pair");
    let a = Daemon::start(member_config(&spool, "daemon-a", 1)).expect("daemon a starts");
    let b = Daemon::start(member_config(&spool, "daemon-b", 1)).expect("daemon b starts");

    let mut opts = SubmitOptions::default();
    opts.tenant = "acme".into();
    opts.mc_samples = Some(200);
    opts.verify_samples = Some(0);
    opts.max_iterations = Some(1);

    // Four quick jobs, two submitted to each daemon. Ids are claimed
    // through O_EXCL `.req` creation, so they never collide.
    let mut jobs = Vec::new();
    let mut client_a = Client::connect(a.local_addr()).expect("client a");
    let mut client_b = Client::connect(b.local_addr()).expect("client b");
    for i in 0..4 {
        let client = if i % 2 == 0 {
            &mut client_a
        } else {
            &mut client_b
        };
        jobs.push(
            client
                .submit(FiveTransistorOta::deck(), &opts)
                .expect("submit accepted"),
        );
    }
    let unique: std::collections::HashSet<&String> = jobs.iter().collect();
    assert_eq!(unique.len(), jobs.len(), "fleet job ids must be distinct");

    // Every job settles identically no matter which daemon is asked —
    // including jobs this daemon never ran (served from the peer's
    // spooled `.out`).
    let mut fleet_sims = 0u64;
    for job in &jobs {
        let from_a = client_a.result_wait(job).expect("job settles via a");
        let from_b = client_b.result_wait(job).expect("job settles via b");
        assert_bits_equal(&from_a.design, &from_b.design, job);
        assert_eq!(from_a.total_sims, from_b.total_sims, "{job}");
        assert_eq!(from_a.estimated_yield, from_b.estimated_yield, "{job}");
        fleet_sims += from_a.total_sims;
    }

    // The lease protocol made the runs disjoint: exactly four runs
    // happened fleet-wide, each on exactly one daemon, and each job's
    // simulations were spent exactly once (`total_sims` counts only
    // local runs — a duplicated run would double-count somewhere).
    let local = |client: &mut Client, key: &str| {
        let status = client.status().expect("status");
        let metrics = status.get("metrics").unwrap();
        metrics.get(key).and_then(|x| x.as_u64()).unwrap()
    };
    let done_a = local(&mut client_a, "jobs_done");
    let done_b = local(&mut client_b, "jobs_done");
    assert_eq!(
        done_a + done_b,
        4,
        "each job ran exactly once (a ran {done_a}, b ran {done_b})"
    );
    assert!(done_a >= 1 && done_b >= 1, "both members pulled work");
    assert_eq!(
        local(&mut client_a, "total_sims") + local(&mut client_b, "total_sims"),
        fleet_sims,
        "no job's simulations were spent twice"
    );

    // Fleet-level status: both members alive, and the tenant's
    // fleet-wide sim count covers at least what this daemon spent.
    let status = client_a.status().expect("status");
    let fleet = status.get("fleet").expect("fleet object in status");
    assert_eq!(
        fleet.get("daemons_live").and_then(|x| x.as_u64()),
        Some(2),
        "both daemons heartbeat their liveness file"
    );
    let tenants = status
        .get("metrics")
        .and_then(|m| m.get("tenants"))
        .and_then(|t| t.as_arr())
        .expect("tenant rows");
    let acme = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(|x| x.as_str()) == Some("acme"))
        .expect("acme row");
    let sims = acme.get("sims").and_then(|x| x.as_u64()).unwrap();
    let sims_fleet = acme.get("sims_fleet").and_then(|x| x.as_u64()).unwrap();
    assert!(
        sims_fleet >= sims,
        "fleet-wide sims ({sims_fleet}) include the local spend ({sims})"
    );

    // Settled jobs leave no leases behind (release may trail the last
    // `.out` by one worker step, so poll briefly).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let leftover: Vec<String> = std::fs::read_dir(&spool)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".lease"))
            .collect();
        if leftover.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leases must be released once jobs settle, leftover: {leftover:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn expired_lease_is_stolen_and_resumes_bit_for_bit() {
    let spool = unique_spool("steal");
    let slots = 2;
    let mut options = JobOptions::default();
    options.mc_samples = 2_000;
    options.verify_samples = 150;
    options.max_iterations = 2;
    let spec = JobSpec {
        id: "job-0001".into(),
        tenant: "acme".into(),
        deck: MillerOpamp::deck().to_owned(),
        options,
    };

    // Uninterrupted reference with the daemon's exact evaluation stack
    // (deck → testbench, cold starts, sharded service, soft-budget
    // wrapper is bit-transparent). The pass-through kill switch counts
    // evaluation calls — the unit the kill budget below is expressed in.
    let stack = |deck: &str| {
        Testbench::from_deck(deck)
            .expect("deck compiles")
            .with_warm_start(false)
    };
    let tb = stack(&spec.deck);
    let probe = KillSwitch::new(&tb, u64::MAX);
    let svc = EvalService::new(&probe, ExecConfig::default().into_shard(slots));
    let reference = YieldOptimizer::new(spec.options.optimizer_config())
        .run(&svc)
        .expect("reference run completes");

    // The "dead daemon": it spooled the job, checkpointed mid-run under
    // its own name, and died without releasing its lease.
    std::fs::write(spool.join("job-0001.req"), spec.to_json()).unwrap();
    let ckpt = spool.join("job-0001.ckpt");
    let tb = stack(&spec.deck);
    let kill = KillSwitch::new(&tb, probe.used() - 60);
    let svc = EvalService::new(&kill, ExecConfig::default().into_shard(slots));
    let killed = YieldOptimizer::new(spec.options.optimizer_config())
        .with_checkpoint(&ckpt)
        .with_checkpoint_owner("dead-daemon")
        .run(&svc);
    assert!(killed.is_err(), "the kill switch must abort the run");
    assert!(ckpt.exists(), "a checkpoint must survive the crash");
    std::fs::write(
        lease::lease_path(&spool, "job-0001"),
        "{\"owner\":\"dead-daemon\",\"epoch\":1,\"job\":\"job-0001\"}",
    )
    .unwrap();

    // Let the abandoned lease age past the expiry window, then start a
    // live peer on the same spool.
    std::thread::sleep(Duration::from_millis(400));
    let mut cfg = member_config(&spool, "daemon-b", slots);
    cfg.lease_expiry = Duration::from_millis(300);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client = Client::connect(daemon.local_addr()).expect("client connects");

    let outcome = client.result_wait("job-0001").expect("stolen job settles");
    assert!(outcome.resumed, "the thief must resume, not restart");
    assert_bits_equal(
        &outcome.design,
        reference.final_design().as_slice(),
        "steal",
    );
    assert_eq!(outcome.total_sims, reference.total_sims);

    // The takeover is journaled with the dead holder's identity and the
    // bumped lease epoch.
    let (records, final_state) = Client::connect(daemon.local_addr())
        .expect("subscriber connects")
        .subscribe("job-0001")
        .expect("subscription replays");
    assert_eq!(final_state, "done");
    let takeover = records
        .iter()
        .find_map(|r| match r {
            Record::Event(e) if e.name == "lease-takeover" => Some(e),
            _ => None,
        })
        .expect("lease-takeover event in the journal");
    let attr = |key: &str| {
        takeover
            .attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    };
    assert_eq!(
        attr("previous_owner"),
        Some(&TraceValue::Str("dead-daemon".into()))
    );
    assert_eq!(attr("epoch"), Some(&TraceValue::U64(2)));

    let status = client.status().expect("status");
    let fleet = status.get("fleet").expect("fleet object");
    assert_eq!(
        fleet.get("leases_stolen").and_then(|x| x.as_u64()),
        Some(1),
        "the steal is counted"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(spool);
}

/// Reads the handshake line from a freshly spawned daemon binary and
/// returns the bound address.
fn spawn_daemon(spool: &Path, owner: &str, slots: usize) -> (std::process::Child, String) {
    use std::io::BufRead;
    let exe = env!("CARGO_BIN_EXE_specwise-serve");
    let mut child = std::process::Command::new(exe)
        .env("SPECWISE_SERVE_ADDR", "127.0.0.1:0")
        .env("SPECWISE_SERVE_SPOOL", spool)
        .env("SPECWISE_SERVE_OWNER", owner)
        .env("SPECWISE_SERVE_SLOTS", slots.to_string())
        .env("SPECWISE_SERVE_LEASE_EXPIRY", "2")
        .env("SPECWISE_SERVE_HEARTBEAT", "0.25")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("handshake line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in handshake")
        .to_owned();
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn wait_for_checkpoints(spool: &Path, jobs: &[String], timeout: Duration) {
    let start = Instant::now();
    loop {
        if jobs
            .iter()
            .all(|id| spool.join(format!("{id}.ckpt")).exists())
        {
            return;
        }
        assert!(
            start.elapsed() < timeout,
            "checkpoints did not appear within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A library-direct run with the daemon's evaluation stack — the
/// bit-for-bit reference for wire results.
fn direct_run(deck: &str, opts: &SubmitOptions, shards: usize) -> (Vec<f64>, f64, Option<f64>) {
    let tb = Testbench::from_deck(deck)
        .expect("reference deck compiles")
        .with_warm_start(false);
    let svc = EvalService::new(&tb, ExecConfig::default().into_shard(shards));
    let mut cfg = OptimizerConfig::default();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    if let Some(n) = opts.mc_samples {
        cfg.mc_samples = n as usize;
    }
    if let Some(n) = opts.verify_samples {
        cfg.verify_samples = n as usize;
    }
    if let Some(n) = opts.max_iterations {
        cfg.max_iterations = n as usize;
    }
    let trace = YieldOptimizer::new(cfg)
        .run(&svc)
        .expect("direct run completes");
    let last = trace.final_snapshot();
    (
        trace.final_design().as_slice().to_vec(),
        last.estimated_yield.value(),
        last.verified.as_ref().map(|v| v.yield_estimate.value()),
    )
}

/// The fleet acceptance test: two daemon binaries on one spool, one
/// SIGKILLed mid-run, and every job still settles bit-identical to a
/// library-direct run — finished by whichever member survives, resuming
/// the dead member's checkpoints after its leases expire. Release-mode
/// only (`--include-ignored`).
#[test]
#[ignore = "release-mode e2e: run via cargo test --release -- --include-ignored"]
fn two_daemon_fleet_survives_sigkill_of_one_member() {
    let spool = unique_spool("sigkill");
    let decks: [(&str, &str); 3] = [
        ("miller", MillerOpamp::deck()),
        ("folded", FoldedCascode::deck()),
        ("ota", FiveTransistorOta::deck()),
    ];
    // Paper-scale sampling so the kill lands mid-run.
    let mut opts = SubmitOptions::default();
    opts.mc_samples = Some(10_000);
    opts.verify_samples = Some(300);
    opts.max_iterations = Some(2);

    let (mut victim, addr1) = spawn_daemon(&spool, "victim", 3);
    let (mut survivor, addr2) = spawn_daemon(&spool, "survivor", 3);

    // All three submitted to the member that is about to die.
    let jobs: Vec<String> = {
        let mut client = Client::connect(addr1.as_str()).expect("client connects");
        decks
            .iter()
            .map(|(tenant, deck)| {
                let mut opts = opts.clone();
                opts.tenant = (*tenant).to_owned();
                client.submit(deck, &opts).expect("submit accepted")
            })
            .collect()
    };

    // SIGKILL the victim once every job has a checkpoint in the spool.
    // (Both members race for the claims, so the survivor may already own
    // some jobs — the contract is recovery, not who-ran-what.)
    wait_for_checkpoints(&spool, &jobs, Duration::from_secs(180));
    victim.kill().expect("victim killed");
    let _ = victim.wait();

    let mut outcomes: Vec<JobOutcome> = Vec::new();
    {
        let mut client = Client::connect(addr2.as_str()).expect("client reconnects");
        for job in &jobs {
            outcomes.push(client.result_wait(job).expect("job settles fleet-wide"));
        }
    }
    survivor.kill().expect("survivor stopped");
    let _ = survivor.wait();

    for ((tenant, deck), outcome) in decks.iter().zip(&outcomes) {
        let (design, estimated, verified) = direct_run(deck, &opts, 3);
        assert_bits_equal(&outcome.design, &design, tenant);
        assert_eq!(outcome.estimated_yield, estimated, "{tenant}");
        assert_eq!(outcome.verified_yield, verified, "{tenant}");
    }
    let _ = std::fs::remove_dir_all(spool);
}
