//! End-to-end tests of the daemon over real sockets.
//!
//! The fast tests run the daemon in-process: hostile input stays
//! rejected-but-alive, and a submitted job streams its Fig. 6 span tree
//! and reproduces a library-direct run bit-for-bit. The `#[ignore]`d
//! test (run by the CI `serve` job in release mode) spawns the actual
//! `specwise-serve` binary, submits three opamp decks concurrently,
//! kills the daemon mid-run, restarts it on the same spool, and requires
//! every resumed job to settle bit-identical to a direct run.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{FiveTransistorOta, FoldedCascode, MillerOpamp, Testbench};
use specwise_exec::{EvalService, ExecConfig};
use specwise_serve::{Client, ClientError, Daemon, JobOutcome, ServeConfig, SubmitOptions};
use specwise_trace::Record;

fn unique_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specwise-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn local_config(tag: &str, slots: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".into();
    cfg.spool = unique_spool(tag);
    cfg.slots = slots;
    cfg
}

/// A library-direct run with the exact evaluation stack the daemon uses
/// (deck → testbench, cold starts, sharded service) — the bit-for-bit
/// reference for wire results.
fn direct_run(deck: &str, opts: &SubmitOptions, shards: usize) -> (Vec<f64>, f64, Option<f64>) {
    let tb = Testbench::from_deck(deck)
        .expect("reference deck compiles")
        .with_warm_start(false);
    let svc = EvalService::new(&tb, ExecConfig::default().into_shard(shards));
    let mut cfg = OptimizerConfig::default();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    if let Some(n) = opts.mc_samples {
        cfg.mc_samples = n as usize;
    }
    if let Some(n) = opts.verify_samples {
        cfg.verify_samples = n as usize;
    }
    if let Some(n) = opts.max_iterations {
        cfg.max_iterations = n as usize;
    }
    let trace = YieldOptimizer::new(cfg)
        .run(&svc)
        .expect("direct run completes");
    let last = trace.final_snapshot();
    (
        trace.final_design().as_slice().to_vec(),
        last.estimated_yield.value(),
        last.verified.as_ref().map(|v| v.yield_estimate.value()),
    )
}

fn assert_bits_equal(wire: &[f64], direct: &[f64], what: &str) {
    assert_eq!(wire.len(), direct.len(), "{what}: design arity");
    for (i, (w, d)) in wire.iter().zip(direct.iter()).enumerate() {
        assert_eq!(
            w.to_bits(),
            d.to_bits(),
            "{what}: design[{i}] differs ({w} vs {d})"
        );
    }
}

#[test]
fn hostile_submissions_bounce_while_the_daemon_keeps_serving() {
    let cfg = local_config("hostile", 1);
    let spool = cfg.spool.clone();
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr();
    let mut client = Client::connect(addr).expect("client connects");

    // Garbage, truncated, and brace-bomb decks: structured "deck" errors.
    for deck in [
        "\u{0}\u{1}\u{2} total garbage \u{fffd}",
        "m1 d g s", // truncated element line
        "* bomb\nvdd vdd 0 3.3\nm1 d g s b nch W={{w1}} L=1u\n.end\n",
    ] {
        match client.submit(deck, &SubmitOptions::default()) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "deck"),
            other => panic!("hostile deck must bounce with a deck error, got {other:?}"),
        }
    }
    // A deck over the ingestion byte limit bounces the same way.
    let huge = format!("* pad\n{}\n.end\n", "* x\n".repeat(400_000));
    match client.submit(&huge, &SubmitOptions::default()) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "deck");
            assert!(message.contains("bytes"), "{message}");
        }
        other => panic!("oversized deck must bounce, got {other:?}"),
    }

    // Raw protocol abuse on a separate connection: invalid JSON, then an
    // oversized request line; both answered, connection still usable.
    {
        let raw = TcpStream::connect(addr).expect("raw connect");
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut writer = raw;
        let mut line = String::new();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"malformed\""), "{line}");
        let mut big = vec![b'z'; (4 << 20) + 64];
        big.push(b'\n');
        writer.write_all(&big).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"oversized\""), "{line}");
        line.clear();
        writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    // Unknown-job queries are structured errors too.
    match client.poll("job-9999") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unknown-job"),
        other => panic!("unknown job must be an unknown-job error, got {other:?}"),
    }

    // After all that abuse the daemon still accepts and runs a real job.
    let mut opts = SubmitOptions::default();
    opts.mc_samples = Some(200);
    opts.verify_samples = Some(0);
    opts.max_iterations = Some(1);
    let job = client
        .submit(FiveTransistorOta::deck(), &opts)
        .expect("valid deck accepted after hostile traffic");
    let outcome = client.result_wait(&job).expect("job settles");
    assert!(!outcome.design.is_empty());
    assert!(outcome.total_sims > 0);

    let status = client.status().expect("status");
    let jobs = status.get("jobs").and_then(|j| j.as_arr()).unwrap();
    assert_eq!(jobs.len(), 1, "only the valid submission became a job");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn submitted_job_streams_fig6_spans_and_matches_a_direct_run() {
    let cfg = local_config("stream", 2);
    let spool = cfg.spool.clone();
    let slots = cfg.slots;
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let mut client = Client::connect(daemon.local_addr()).expect("client connects");

    let mut opts = SubmitOptions::default();
    opts.tenant = "acme".into();
    opts.mc_samples = Some(600);
    opts.verify_samples = Some(80);
    opts.max_iterations = Some(2);
    let job = client
        .submit(MillerOpamp::deck(), &opts)
        .expect("submit accepted");

    // Subscribe from a second connection while the job runs; the stream
    // ends only when the job settles.
    let (records, final_state) = Client::connect(daemon.local_addr())
        .expect("subscriber connects")
        .subscribe(&job)
        .expect("subscription streams to completion");
    assert_eq!(final_state, "done");

    // The Fig. 6 phases arrive as spans. Records are emitted at span
    // *close* (the run root closes last), but ids are assigned at open
    // time in deterministic order — so the flow order is the id order.
    let mut ids: HashMap<&str, Vec<u64>> = HashMap::new();
    for record in &records {
        if let Record::Span(span) = record {
            ids.entry(span.name.as_str()).or_default().push(span.id);
        }
    }
    for name in ["run", "wc_analysis", "iteration", "mc_verify"] {
        assert!(ids.contains_key(name), "missing span {name:?}");
    }
    let first = |name: &str| *ids[name].iter().min().unwrap();
    assert!(
        first("run") < first("wc_analysis") && first("wc_analysis") < first("iteration"),
        "span stream out of order: {ids:?}"
    );
    // Each iteration ends in its own verification (the Initial snapshot
    // verifies before the first iteration opens, hence "some", not "min").
    assert!(
        ids["mc_verify"].iter().any(|&id| id > first("iteration")),
        "no per-iteration mc_verify after the first iteration: {ids:?}"
    );

    let outcome = client.result_wait(&job).expect("job settles");
    assert!(!outcome.resumed, "no restart happened");

    // Bit-for-bit parity with the library-direct run.
    let (design, estimated, verified) = direct_run(MillerOpamp::deck(), &opts, slots);
    assert_bits_equal(&outcome.design, &design, "miller over the wire");
    assert_eq!(outcome.estimated_yield, estimated);
    assert_eq!(outcome.verified_yield, verified);
    assert!(outcome.yield_interval.is_some(), "verification ran");

    // Status reports the cache hit rate and the tenant's sim count.
    let status = client.status().expect("status");
    let metrics = status.get("metrics").unwrap();
    assert!(
        metrics
            .get("cache_hit_rate")
            .and_then(|x| x.as_f64())
            .is_some(),
        "cache hit rate must be reported after a cached run"
    );
    let tenants = metrics.get("tenants").and_then(|t| t.as_arr()).unwrap();
    let acme = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(|x| x.as_str()) == Some("acme"))
        .expect("tenant row");
    assert!(acme.get("sims").and_then(|x| x.as_u64()).unwrap() > 0);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(spool);
}

/// Reads the handshake line from a freshly spawned daemon binary and
/// returns the bound address.
fn spawn_daemon(spool: &Path, slots: usize) -> (std::process::Child, String) {
    let exe = env!("CARGO_BIN_EXE_specwise-serve");
    let mut child = std::process::Command::new(exe)
        .env("SPECWISE_SERVE_ADDR", "127.0.0.1:0")
        .env("SPECWISE_SERVE_SPOOL", spool)
        .env("SPECWISE_SERVE_SLOTS", slots.to_string())
        // Short lease windows so a restarted daemon steals a dead
        // holder's jobs in seconds instead of the production default.
        .env("SPECWISE_SERVE_LEASE_EXPIRY", "2")
        .env("SPECWISE_SERVE_HEARTBEAT", "0.25")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("handshake line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in handshake")
        .to_owned();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn wait_for_checkpoints(spool: &Path, jobs: &[String], timeout: Duration) {
    let start = Instant::now();
    loop {
        let all = jobs
            .iter()
            .all(|id| spool.join(format!("{id}.ckpt")).exists());
        if all {
            return;
        }
        assert!(
            start.elapsed() < timeout,
            "checkpoints did not appear within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The acceptance test of the serving tentpole: three opamp decks
/// submitted concurrently over the wire, the daemon killed mid-run,
/// restarted on the same spool, and every job's final design bit-identical
/// to a library-direct run. Release-mode only (`--include-ignored`).
#[test]
#[ignore = "release-mode e2e: run via cargo test --release -- --include-ignored"]
fn three_decks_concurrent_kill_restart_resume_bit_for_bit() {
    let spool = unique_spool("killrestart");
    std::fs::create_dir_all(&spool).unwrap();
    let decks: [(&str, &str); 3] = [
        ("miller", MillerOpamp::deck()),
        ("folded", FoldedCascode::deck()),
        ("ota", FiveTransistorOta::deck()),
    ];
    // Paper-scale sampling: enough work per job that the kill below lands
    // mid-run (the first checkpoint is written after the Initial snapshot,
    // with two full iterations still ahead).
    let mut opts = SubmitOptions::default();
    opts.mc_samples = Some(10_000);
    opts.verify_samples = Some(300);
    opts.max_iterations = Some(2);

    let (mut child, addr) = spawn_daemon(&spool, 3);

    // Three concurrent submissions on three connections.
    let jobs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = decks
            .iter()
            .map(|(tenant, deck)| {
                let addr = addr.clone();
                let mut opts = opts.clone();
                opts.tenant = (*tenant).to_owned();
                scope.spawn(move || {
                    Client::connect(addr.as_str())
                        .expect("client connects")
                        .submit(deck, &opts)
                        .expect("submit accepted")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Kill the daemon once every job has checkpointed (all three run
    // concurrently on three slots, so all are mid-flight).
    wait_for_checkpoints(&spool, &jobs, Duration::from_secs(120));
    child.kill().expect("daemon killed");
    let _ = child.wait();
    for job in &jobs {
        assert!(
            !spool.join(format!("{job}.out")).exists(),
            "{job} settled before the kill — the kill must land mid-run"
        );
    }

    // Restart on the same spool: recovery re-enqueues the jobs in id
    // order and their checkpoints resume the runs.
    let (mut child, addr) = spawn_daemon(&spool, 3);
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    {
        let mut client = Client::connect(addr.as_str()).expect("client reconnects");
        for job in &jobs {
            outcomes.push(client.result_wait(job).expect("resumed job settles"));
        }
    }
    child.kill().expect("second daemon stopped");
    let _ = child.wait();

    for ((tenant, deck), outcome) in decks.iter().zip(&outcomes) {
        assert!(
            outcome.resumed,
            "{tenant}: the restarted daemon must resume, not restart"
        );
        let (design, estimated, verified) = direct_run(deck, &opts, 3);
        assert_bits_equal(&outcome.design, &design, tenant);
        assert_eq!(outcome.estimated_yield, estimated, "{tenant}");
        assert_eq!(outcome.verified_yield, verified, "{tenant}");
    }
    let _ = std::fs::remove_dir_all(spool);
}

/// Wire-level hostile input while another tenant's job is in flight: torn
/// mid-line writes, an oversized frame followed by a valid request on the
/// same connection, and garbage interleaved around a subscribe handshake.
/// The daemon must resync every time and the other tenant's job must
/// settle untouched. (The `specwise-fuzz` wire campaign randomizes these
/// same attacks; this is the deterministic regression version.)
#[test]
fn wire_level_hostile_input_resyncs_and_spares_other_tenants() {
    let cfg = local_config("hostile-wire", 1);
    let spool = cfg.spool.clone();
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr();

    // The victim: a real job from a well-behaved tenant, submitted first.
    let mut opts = SubmitOptions::default();
    opts.tenant = "victim".into();
    opts.seed = Some(11);
    opts.mc_samples = Some(100);
    opts.verify_samples = Some(0);
    opts.max_iterations = Some(1);
    let victim_job = Client::connect(addr)
        .expect("victim connects")
        .submit(MillerOpamp::deck(), &opts)
        .expect("victim submit accepted");

    // Attack 1: a valid status request torn into 1–3 byte writes with a
    // flush between each — the framing layer must reassemble it.
    {
        let raw = TcpStream::connect(addr).expect("torn connect");
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut writer = raw;
        for chunk in b"{\"cmd\":\"status\"}\n".chunks(3) {
            writer.write_all(chunk).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\":true"),
            "torn request not reassembled: {line}"
        );
    }

    // Attack 2: a mid-line cut — half a request, then the connection is
    // dropped on the floor. The daemon must not block or leak the reader.
    {
        let mut writer = TcpStream::connect(addr).expect("cut connect");
        writer.write_all(b"{\"cmd\":\"sub").unwrap();
        writer.flush().unwrap();
        // Dropped without a newline; the daemon's read loop sees EOF.
    }

    // Attack 3: oversized frame, then TWO valid requests on the same
    // connection — resync must hold beyond the first follow-up.
    {
        let raw = TcpStream::connect(addr).expect("big connect");
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut writer = raw;
        let mut big = vec![b'{'; (4 << 20) + 128];
        big.push(b'\n');
        writer.write_all(&big).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"oversized\""), "{line}");
        for _ in 0..2 {
            line.clear();
            writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
            reader.read_line(&mut line).unwrap();
            assert!(
                line.contains("\"ok\":true"),
                "no resync after oversized frame: {line}"
            );
        }
    }

    // Attack 4: garbage interleaved on a subscribe connection. Subscribing
    // to an unknown job answers a typed error and keeps the connection in
    // the request loop; the garbage that follows must bounce as malformed,
    // not wedge the stream.
    {
        let raw = TcpStream::connect(addr).expect("subscribe connect");
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut writer = raw;
        let mut line = String::new();
        writer
            .write_all(b"{\"cmd\":\"subscribe\",\"job\":\"job-bogus\"}\n")
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("unknown-job"), "{line}");
        line.clear();
        writer.write_all(b"\x00\xffgarbage\x01\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"malformed\""), "{line}");
        line.clear();
        writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    // The victim's job settles with a real outcome, and the job table
    // holds exactly that one job — no hostile connection became a job.
    let mut client = Client::connect(addr).expect("client connects");
    let outcome = client
        .result_wait(&victim_job)
        .expect("victim job settles despite hostile traffic");
    assert!(!outcome.design.is_empty());
    assert!(outcome.total_sims > 0);
    let status = client.status().expect("status");
    let jobs = status.get("jobs").and_then(|j| j.as_arr()).unwrap();
    assert_eq!(jobs.len(), 1, "hostile traffic must not create jobs");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(spool);
}
