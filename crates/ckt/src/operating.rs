//! Operating conditions `θ` and the operating range `Θ` (paper Sec. 2).

/// One operating condition: ambient temperature and supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Temperature \[°C\].
    pub temp_c: f64,
    /// Supply voltage \[V\].
    pub vdd: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(temp_c: f64, vdd: f64) -> Self {
        OperatingPoint { temp_c, vdd }
    }

    /// Temperature in kelvin.
    pub fn temp_k(&self) -> f64 {
        self.temp_c + 273.15
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T={}°C, VDD={}V", self.temp_c, self.vdd)
    }
}

/// A box operating range `Θ = {θ | θᴸ ≤ θ ≤ θᵁ}` over (temperature, VDD).
///
/// The worst-case operating point of each specification is found by
/// enumerating the `2^dim(Θ)` corners (paper Sec. 2 assumes exactly this
/// when bounding the simulation effort by `N·min(n_spec, 2^dim(Θ))`).
///
/// # Example
///
/// ```
/// use specwise_ckt::OperatingRange;
///
/// let range = OperatingRange::new(-40.0, 125.0, 3.0, 3.6);
/// assert_eq!(range.corners().len(), 4);
/// let nom = range.nominal();
/// assert!((nom.temp_c - 42.5).abs() < 1e-12);
/// assert!((nom.vdd - 3.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingRange {
    temp_lo: f64,
    temp_hi: f64,
    vdd_lo: f64,
    vdd_hi: f64,
}

impl OperatingRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics unless `temp_lo < temp_hi` and `0 < vdd_lo < vdd_hi`.
    pub fn new(temp_lo: f64, temp_hi: f64, vdd_lo: f64, vdd_hi: f64) -> Self {
        assert!(temp_lo < temp_hi, "temperature range inverted");
        assert!(0.0 < vdd_lo && vdd_lo < vdd_hi, "vdd range invalid");
        OperatingRange {
            temp_lo,
            temp_hi,
            vdd_lo,
            vdd_hi,
        }
    }

    /// The nominal (center) operating point.
    pub fn nominal(&self) -> OperatingPoint {
        OperatingPoint::new(
            0.5 * (self.temp_lo + self.temp_hi),
            0.5 * (self.vdd_lo + self.vdd_hi),
        )
    }

    /// The four corner operating points (the candidate worst cases).
    pub fn corners(&self) -> Vec<OperatingPoint> {
        vec![
            OperatingPoint::new(self.temp_lo, self.vdd_lo),
            OperatingPoint::new(self.temp_lo, self.vdd_hi),
            OperatingPoint::new(self.temp_hi, self.vdd_lo),
            OperatingPoint::new(self.temp_hi, self.vdd_hi),
        ]
    }

    /// Temperature bounds \[°C\].
    pub fn temp_bounds(&self) -> (f64, f64) {
        (self.temp_lo, self.temp_hi)
    }

    /// Supply bounds \[V\].
    pub fn vdd_bounds(&self) -> (f64, f64) {
        (self.vdd_lo, self.vdd_hi)
    }

    /// `true` when `theta` lies inside the range.
    pub fn contains(&self, theta: &OperatingPoint) -> bool {
        theta.temp_c >= self.temp_lo
            && theta.temp_c <= self.temp_hi
            && theta.vdd >= self.vdd_lo
            && theta.vdd <= self.vdd_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_cover_extremes() {
        let r = OperatingRange::new(-40.0, 125.0, 4.5, 5.5);
        let corners = r.corners();
        assert_eq!(corners.len(), 4);
        assert!(corners.iter().any(|c| c.temp_c == -40.0 && c.vdd == 4.5));
        assert!(corners.iter().any(|c| c.temp_c == 125.0 && c.vdd == 5.5));
        for c in &corners {
            assert!(r.contains(c));
        }
    }

    #[test]
    fn kelvin_conversion() {
        let p = OperatingPoint::new(26.85, 3.3);
        assert!((p.temp_k() - 300.0).abs() < 1e-10);
    }

    #[test]
    fn containment() {
        let r = OperatingRange::new(0.0, 100.0, 3.0, 3.6);
        assert!(r.contains(&r.nominal()));
        assert!(!r.contains(&OperatingPoint::new(-10.0, 3.3)));
        assert!(!r.contains(&OperatingPoint::new(50.0, 4.0)));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_temperature() {
        OperatingRange::new(100.0, 0.0, 3.0, 3.6);
    }

    #[test]
    fn display_format() {
        let p = OperatingPoint::new(25.0, 3.3);
        assert_eq!(format!("{p}"), "T=25°C, VDD=3.3V");
    }
}
