//! Synthetic technology card: MOSFET model parameters plus the statistical
//! description of the process (global spreads and Pelgrom mismatch
//! coefficients).
//!
//! The paper used an (undisclosed) industrial fabrication process; this
//! card substitutes published-order values for a 0.6 µm-class CMOS process
//! (see DESIGN.md §2). What matters for reproducing the method is the
//! *structure*: global Vth/β spreads shared by all devices of a polarity,
//! plus per-device local deviations whose standard deviation scales as
//! `1/√(W·L)` (Pelgrom's law, paper ref [1]).

use specwise_mna::{MosPolarity, MosfetModel};

/// A CMOS technology: model cards plus statistical process description.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// NMOS model card.
    pub nmos: MosfetModel,
    /// PMOS model card.
    pub pmos: MosfetModel,
    /// Global NMOS threshold spread σ \[V\].
    pub sigma_vth_global_n: f64,
    /// Global PMOS threshold spread σ \[V\].
    pub sigma_vth_global_p: f64,
    /// Global NMOS current-factor spread σ (relative, e.g. 0.03 = 3 %).
    pub sigma_beta_global_n: f64,
    /// Global PMOS current-factor spread σ (relative).
    pub sigma_beta_global_p: f64,
    /// Pelgrom mismatch coefficient for Vth \[V·m\]:
    /// `σ(ΔVth) = a_vth / √(W·L)`.
    pub a_vth: f64,
    /// Pelgrom mismatch coefficient for β \[m\] (relative):
    /// `σ(Δβ/β) = a_beta / √(W·L)`.
    pub a_beta: f64,
    /// Global relative spread of capacitance values (oxide/poly-cap
    /// thickness variation), e.g. 0.05 = 5 %.
    pub sigma_cap_global: f64,
}

impl Technology {
    /// The default 0.6 µm-class card used throughout the reproduction.
    ///
    /// Pelgrom coefficients: `A_VT = 20 mV·µm`, `A_β = 3 %·µm` — within the
    /// published range for µm-class processes (Pelgrom et al., JSSC 1989
    /// report ≈ 30 mV·µm for a 2.5 µm process).
    pub fn c06() -> Self {
        Technology {
            nmos: MosfetModel::default_nmos(),
            pmos: MosfetModel::default_pmos(),
            sigma_vth_global_n: 0.015,
            sigma_vth_global_p: 0.015,
            sigma_beta_global_n: 0.03,
            sigma_beta_global_p: 0.03,
            // 20 mV·µm = 20e-3 V · 1e-6 m = 2e-8 V·m.
            a_vth: 2.0e-8,
            // 3 %·µm = 0.03 · 1e-6 m = 3e-8 m.
            a_beta: 3.0e-8,
            sigma_cap_global: 0.05,
        }
    }

    /// Model card for a polarity.
    pub fn model(&self, polarity: MosPolarity) -> &MosfetModel {
        match polarity {
            MosPolarity::Nmos => &self.nmos,
            MosPolarity::Pmos => &self.pmos,
        }
    }

    /// Local (mismatch) threshold σ \[V\] for a device of the given
    /// geometry \[m\].
    ///
    /// # Panics
    ///
    /// Panics for non-positive geometry.
    pub fn sigma_vth_local(&self, w: f64, l: f64) -> f64 {
        assert!(w > 0.0 && l > 0.0, "geometry must be positive");
        self.a_vth / (w * l).sqrt()
    }

    /// Local (mismatch) relative β σ for a device of the given geometry \[m\].
    ///
    /// # Panics
    ///
    /// Panics for non-positive geometry.
    pub fn sigma_beta_local(&self, w: f64, l: f64) -> f64 {
        assert!(w > 0.0 && l > 0.0, "geometry must be positive");
        self.a_beta / (w * l).sqrt()
    }

    /// Global threshold σ \[V\] for a polarity.
    pub fn sigma_vth_global(&self, polarity: MosPolarity) -> f64 {
        match polarity {
            MosPolarity::Nmos => self.sigma_vth_global_n,
            MosPolarity::Pmos => self.sigma_vth_global_p,
        }
    }

    /// Global relative β σ for a polarity.
    pub fn sigma_beta_global(&self, polarity: MosPolarity) -> f64 {
        match polarity {
            MosPolarity::Nmos => self.sigma_beta_global_n,
            MosPolarity::Pmos => self.sigma_beta_global_p,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::c06()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_scaling() {
        let t = Technology::c06();
        // A 1 µm × 1 µm device: σ_Vth = 20 mV.
        let s1 = t.sigma_vth_local(1e-6, 1e-6);
        assert!((s1 - 0.020).abs() < 1e-12);
        // Quadrupling the area halves the sigma.
        let s4 = t.sigma_vth_local(2e-6, 2e-6);
        assert!((s4 - 0.010).abs() < 1e-12);
    }

    #[test]
    fn beta_mismatch_scaling() {
        let t = Technology::c06();
        assert!((t.sigma_beta_local(1e-6, 1e-6) - 0.03).abs() < 1e-12);
        assert!((t.sigma_beta_local(4e-6, 1e-6) - 0.015).abs() < 1e-12);
    }

    #[test]
    fn polarity_accessors() {
        let t = Technology::c06();
        assert_eq!(t.model(MosPolarity::Nmos).polarity, MosPolarity::Nmos);
        assert_eq!(t.model(MosPolarity::Pmos).polarity, MosPolarity::Pmos);
        assert!(t.sigma_vth_global(MosPolarity::Nmos) > 0.0);
        assert!(t.sigma_beta_global(MosPolarity::Pmos) > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_area() {
        Technology::c06().sigma_vth_local(0.0, 1e-6);
    }
}
