//! Design-parameter spaces: named, box-bounded vectors of the quantities
//! the sizing process controls (paper Sec. 2, "design parameters d").

use specwise_linalg::DVec;

use crate::CktError;

/// One design parameter: name, unit, box bounds, initial value.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignParam {
    /// Name (e.g. `"w1"`).
    pub name: String,
    /// Unit for display (e.g. `"um"`).
    pub unit: String,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Initial (starting design) value.
    pub initial: f64,
}

impl DesignParam {
    /// Creates a parameter.
    ///
    /// # Panics
    ///
    /// Panics unless `lower < upper` and `initial ∈ [lower, upper]`.
    pub fn new(name: &str, unit: &str, lower: f64, upper: f64, initial: f64) -> Self {
        assert!(lower < upper, "bounds inverted for {name}");
        assert!(
            (lower..=upper).contains(&initial),
            "initial value {initial} of {name} outside [{lower}, {upper}]"
        );
        DesignParam {
            name: name.to_string(),
            unit: unit.to_string(),
            lower,
            upper,
            initial,
        }
    }
}

/// An ordered collection of design parameters.
///
/// # Example
///
/// ```
/// use specwise_ckt::{DesignParam, DesignSpace};
///
/// let space = DesignSpace::new(vec![
///     DesignParam::new("w1", "um", 1.0, 200.0, 20.0),
///     DesignParam::new("ib", "uA", 1.0, 100.0, 10.0),
/// ]);
/// assert_eq!(space.dim(), 2);
/// assert_eq!(space.initial().as_slice(), &[20.0, 10.0]);
/// assert!(space.contains(&space.initial()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    params: Vec<DesignParam>,
}

impl DesignSpace {
    /// Creates a space from a parameter list.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn new(params: Vec<DesignParam>) -> Self {
        assert!(
            !params.is_empty(),
            "design space needs at least one parameter"
        );
        DesignSpace { params }
    }

    /// Number of design parameters.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters in order.
    pub fn params(&self) -> &[DesignParam] {
        &self.params
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The initial design vector.
    pub fn initial(&self) -> DVec {
        self.params.iter().map(|p| p.initial).collect()
    }

    /// Lower-bound vector.
    pub fn lower(&self) -> DVec {
        self.params.iter().map(|p| p.lower).collect()
    }

    /// Upper-bound vector.
    pub fn upper(&self) -> DVec {
        self.params.iter().map(|p| p.upper).collect()
    }

    /// `true` when `d` lies inside the box (inclusive).
    pub fn contains(&self, d: &DVec) -> bool {
        d.len() == self.dim()
            && self
                .params
                .iter()
                .zip(d.iter())
                .all(|(p, &x)| x >= p.lower && x <= p.upper)
    }

    /// Projects `d` onto the box.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::DimensionMismatch`] on length mismatch.
    pub fn project(&self, d: &DVec) -> Result<DVec, CktError> {
        if d.len() != self.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.dim(),
                found: d.len(),
            });
        }
        Ok(self
            .params
            .iter()
            .zip(d.iter())
            .map(|(p, &x)| x.clamp(p.lower, p.upper))
            .collect())
    }

    /// Validates a design vector (length and bounds).
    ///
    /// # Errors
    ///
    /// Returns [`CktError::DimensionMismatch`] or [`CktError::OutOfBounds`].
    pub fn validate(&self, d: &DVec) -> Result<(), CktError> {
        if d.len() != self.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.dim(),
                found: d.len(),
            });
        }
        for (i, (p, &x)) in self.params.iter().zip(d.iter()).enumerate() {
            if !(x >= p.lower && x <= p.upper) {
                return Err(CktError::OutOfBounds { index: i, value: x });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            DesignParam::new("a", "", 0.0, 10.0, 5.0),
            DesignParam::new("b", "", -1.0, 1.0, 0.0),
        ])
    }

    #[test]
    fn initial_within_bounds() {
        let s = space();
        assert!(s.contains(&s.initial()));
        assert!(s.validate(&s.initial()).is_ok());
    }

    #[test]
    fn projection_clamps() {
        let s = space();
        let d = DVec::from_slice(&[20.0, -5.0]);
        let p = s.project(&d).unwrap();
        assert_eq!(p.as_slice(), &[10.0, -1.0]);
        assert!(s.contains(&p));
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let s = space();
        assert!(matches!(
            s.validate(&DVec::from_slice(&[11.0, 0.0])),
            Err(CktError::OutOfBounds { index: 0, .. })
        ));
        assert!(matches!(
            s.validate(&DVec::from_slice(&[1.0])),
            Err(CktError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn index_lookup() {
        let s = space();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn param_rejects_bad_initial() {
        DesignParam::new("x", "", 0.0, 1.0, 2.0);
    }
}
