//! Performance specifications (`f ≥ f_b` or `f ≤ f_b`, paper Sec. 2).

/// Direction of a specification bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKind {
    /// The performance must stay at or above the bound (e.g. `A0 ≥ 40 dB`).
    LowerBound,
    /// The performance must stay at or below the bound (e.g. `P ≤ 3.5 mW`).
    UpperBound,
}

/// One performance specification.
///
/// The *margin* convention used throughout the workspace maps every spec to
/// `margin(f) ≥ 0 ⇔ pass`: for lower bounds `margin = f − f_b`, for upper
/// bounds `margin = f_b − f`. This matches the `f⁽ⁱ⁾ − f_b⁽ⁱ⁾` rows of the
/// paper's tables (which report positive values for satisfied specs of
/// either direction).
///
/// # Example
///
/// ```
/// use specwise_ckt::{Spec, SpecKind};
///
/// let a0 = Spec::new("A0", "dB", SpecKind::LowerBound, 40.0);
/// assert!(a0.satisfied(52.0));
/// assert!((a0.margin(52.0) - 12.0).abs() < 1e-12);
///
/// let power = Spec::new("Power", "mW", SpecKind::UpperBound, 3.5);
/// assert!(power.satisfied(2.9));
/// assert!((power.margin(2.9) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    name: String,
    unit: String,
    kind: SpecKind,
    bound: f64,
}

impl Spec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics for a non-finite bound.
    pub fn new(name: &str, unit: &str, kind: SpecKind, bound: f64) -> Self {
        assert!(bound.is_finite(), "specification bound must be finite");
        Spec {
            name: name.to_string(),
            unit: unit.to_string(),
            kind,
            bound,
        }
    }

    /// Specification name (e.g. `"CMRR"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical unit of the performance (e.g. `"dB"`).
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Bound direction.
    pub fn kind(&self) -> SpecKind {
        self.kind
    }

    /// The bound value `f_b`.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Signed margin; positive iff the spec is satisfied.
    pub fn margin(&self, value: f64) -> f64 {
        match self.kind {
            SpecKind::LowerBound => value - self.bound,
            SpecKind::UpperBound => self.bound - value,
        }
    }

    /// Margin gradient sign: margins are `±(f − f_b)`, so gradients of the
    /// margin are the performance gradient multiplied by this factor.
    pub fn margin_sign(&self) -> f64 {
        match self.kind {
            SpecKind::LowerBound => 1.0,
            SpecKind::UpperBound => -1.0,
        }
    }

    /// `true` when the value satisfies the specification.
    pub fn satisfied(&self, value: f64) -> bool {
        self.margin(value) >= 0.0
    }
}

impl std::fmt::Display for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.kind {
            SpecKind::LowerBound => ">=",
            SpecKind::UpperBound => "<=",
        };
        write!(f, "{} {} {} {}", self.name, op, self.bound, self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_margin() {
        let s = Spec::new("ft", "MHz", SpecKind::LowerBound, 40.0);
        assert!((s.margin(37.7) + 2.3).abs() < 1e-12);
        assert!(!s.satisfied(37.7));
        assert!(s.satisfied(40.0));
        assert_eq!(s.margin_sign(), 1.0);
    }

    #[test]
    fn upper_bound_margin() {
        let s = Spec::new("Power", "mW", SpecKind::UpperBound, 3.5);
        assert!((s.margin(2.96) - 0.54).abs() < 1e-12);
        assert!(s.satisfied(3.5));
        assert!(!s.satisfied(4.0));
        assert_eq!(s.margin_sign(), -1.0);
    }

    #[test]
    fn display_shows_direction() {
        let s = Spec::new("A0", "dB", SpecKind::LowerBound, 40.0);
        assert_eq!(format!("{s}"), "A0 >= 40 dB");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_bound() {
        Spec::new("x", "", SpecKind::LowerBound, f64::NAN);
    }
}
