//! The [`CircuitEnv`] abstraction: what the worst-case analysis and the
//! yield optimizer need from a circuit.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use specwise_linalg::DVec;

use crate::{CktError, DesignSpace, OperatingPoint, OperatingRange, Spec, StatSpace};

/// The algorithmic phase a simulation is charged to.
///
/// The optimizer spends its simulation budget in distinct places —
/// feasibility search, worst-case distance analysis, linearization
/// gradients, line search, and Monte-Carlo verification — and the paper's
/// effort discussion (§7, Table 7) argues about where that budget goes.
/// Tagging each simulation with its phase makes the split reportable.
///
/// The per-phase counts surface in two places: the effort tables of
/// `specwise::effort_breakdown_table`, and — on traced runs — as
/// `sims_<label>` counters on the `run` span of the `specwise-trace`
/// journal (spaces in [`SimPhase::label`] become underscores, e.g.
/// `sims_line_search`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimPhase {
    /// Feasibility search / constraint evaluation (paper §6.1).
    Feasibility,
    /// Worst-case distance analysis: corner sweeps, θ refinement, and the
    /// worst-case point search (paper §4).
    Wcd,
    /// Spec-wise linearization gradients and Jacobians (paper §5).
    Linearization,
    /// Feasibility-guided line search along the ascent direction (paper §6).
    LineSearch,
    /// Monte-Carlo / importance-sampling yield verification (paper §7).
    Verification,
    /// Anything not explicitly attributed.
    #[default]
    Other,
}

impl SimPhase {
    /// Number of phases (length of [`SimPhase::ALL`]).
    pub const COUNT: usize = 6;

    /// Every phase, in display order.
    pub const ALL: [SimPhase; SimPhase::COUNT] = [
        SimPhase::Feasibility,
        SimPhase::Wcd,
        SimPhase::Linearization,
        SimPhase::LineSearch,
        SimPhase::Verification,
        SimPhase::Other,
    ];

    /// Stable index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            SimPhase::Feasibility => 0,
            SimPhase::Wcd => 1,
            SimPhase::Linearization => 2,
            SimPhase::LineSearch => 3,
            SimPhase::Verification => 4,
            SimPhase::Other => 5,
        }
    }

    /// Short human-readable label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            SimPhase::Feasibility => "feasibility",
            SimPhase::Wcd => "wcd",
            SimPhase::Linearization => "linearization",
            SimPhase::LineSearch => "line search",
            SimPhase::Verification => "verification",
            SimPhase::Other => "other",
        }
    }
}

/// A thread-safe counter of circuit-simulation calls — the paper's primary
/// effort metric (Table 7 reports `# Simulations`).
///
/// Besides the total, the counter attributes every increment to the
/// currently active [`SimPhase`], so callers that set the phase around
/// algorithm stages get a per-phase breakdown for free; environments whose
/// evaluation paths funnel through [`SimCounter::add`] need no call-site
/// changes. Traced optimizer runs absorb these counts as span counters,
/// so the journal's `run` span carries the same totals the effort tables
/// print.
#[derive(Debug)]
pub struct SimCounter {
    total: AtomicU64,
    per_phase: [AtomicU64; SimPhase::COUNT],
    current_phase: AtomicUsize,
    adjoint_solves: AtomicU64,
    fd_sims_avoided: AtomicU64,
}

impl Default for SimCounter {
    fn default() -> Self {
        SimCounter {
            total: AtomicU64::new(0),
            per_phase: std::array::from_fn(|_| AtomicU64::new(0)),
            current_phase: AtomicUsize::new(SimPhase::Other.index()),
            adjoint_solves: AtomicU64::new(0),
            fd_sims_avoided: AtomicU64::new(0),
        }
    }
}

impl SimCounter {
    /// Creates a counter at zero, attributing to [`SimPhase::Other`].
    pub fn new() -> Self {
        SimCounter::default()
    }

    /// Increments by `n` simulations, charged to the current phase.
    pub fn add(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
        let phase = self
            .current_phase
            .load(Ordering::Relaxed)
            .min(SimPhase::COUNT - 1);
        self.per_phase[phase].fetch_add(n, Ordering::Relaxed);
    }

    /// Current total count.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Selects the phase subsequent [`SimCounter::add`] calls are charged to.
    pub fn set_phase(&self, phase: SimPhase) {
        self.current_phase.store(phase.index(), Ordering::Relaxed);
    }

    /// The phase increments are currently charged to.
    pub fn phase(&self) -> SimPhase {
        SimPhase::ALL[self
            .current_phase
            .load(Ordering::Relaxed)
            .min(SimPhase::COUNT - 1)]
    }

    /// Count charged to one phase.
    pub fn phase_count(&self, phase: SimPhase) -> u64 {
        self.per_phase[phase.index()].load(Ordering::Relaxed)
    }

    /// Counts for every phase, indexed by [`SimPhase::index`].
    pub fn phase_counts(&self) -> [u64; SimPhase::COUNT] {
        std::array::from_fn(|i| self.per_phase[i].load(Ordering::Relaxed))
    }

    /// Records `n` adjoint/sensitivity factorization solves. These are
    /// *not* simulator invocations: they ride on already-factored systems,
    /// so they are tracked beside — never inside — the simulation total
    /// (the per-phase counts must keep partitioning [`SimCounter::count`]).
    pub fn add_adjoint(&self, n: u64) {
        self.adjoint_solves.fetch_add(n, Ordering::Relaxed);
    }

    /// Adjoint/sensitivity solves recorded so far.
    pub fn adjoint_solves(&self) -> u64 {
        self.adjoint_solves.load(Ordering::Relaxed)
    }

    /// Records that `n` finite-difference simulator calls were avoided by
    /// the adjoint gradient path.
    pub fn add_fd_avoided(&self, n: u64) {
        self.fd_sims_avoided.fetch_add(n, Ordering::Relaxed);
    }

    /// Finite-difference simulator calls avoided so far.
    pub fn fd_sims_avoided(&self) -> u64 {
        self.fd_sims_avoided.load(Ordering::Relaxed)
    }

    /// Resets all counts to zero (the active phase selection is kept).
    pub fn reset(&self) {
        self.total.store(0, Ordering::Relaxed);
        for c in &self.per_phase {
            c.store(0, Ordering::Relaxed);
        }
        self.adjoint_solves.store(0, Ordering::Relaxed);
        self.fd_sims_avoided.store(0, Ordering::Relaxed);
    }
}

/// A circuit under optimization: design space, standardized statistical
/// space, specifications, operating range, and the evaluation functions.
///
/// Performances are evaluated as `f(d, ŝ, θ)` with `ŝ ~ N(0, I)`; the
/// design-dependent covariance `C(d)` (paper Eq. 10) is applied *inside*
/// `eval_performances` — this is the transformed formulation of paper
/// Eqs. 11–14 that lets one machinery handle global and local variations.
pub trait CircuitEnv {
    /// Human-readable circuit name.
    fn name(&self) -> &str;

    /// The design space.
    fn design_space(&self) -> &DesignSpace;

    /// The standardized statistical space.
    fn stat_space(&self) -> &StatSpace;

    /// Dimension of the statistical space.
    fn stat_dim(&self) -> usize {
        self.stat_space().dim()
    }

    /// The performance specifications (order fixed; matches the vector
    /// returned by [`CircuitEnv::eval_performances`]).
    fn specs(&self) -> &[Spec];

    /// The operating range `Θ`.
    fn operating_range(&self) -> &OperatingRange;

    /// Names of the functional constraints, in the order of
    /// [`CircuitEnv::eval_constraints`].
    fn constraint_names(&self) -> Vec<String>;

    /// Evaluates all performances at `(d, ŝ, θ)` in physical units.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError>;

    /// Evaluates the functional ("sizing rule") constraints `c(d) ≥ 0` at
    /// nominal statistics and nominal operating conditions.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError>;

    /// Evaluates the margin vector `mᵢ = ±(fᵢ − f_bᵢ)` (positive = pass) at
    /// `(d, ŝ, θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitEnv::eval_performances`] errors.
    fn eval_margins(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let perf = self.eval_performances(d, s_hat, theta)?;
        Ok(self
            .specs()
            .iter()
            .zip(perf.iter())
            .map(|(spec, &f)| spec.margin(f))
            .collect())
    }

    /// Number of simulator invocations so far.
    fn sim_count(&self) -> u64;

    /// Resets the simulation counter.
    fn reset_sim_count(&self);

    /// Selects the [`SimPhase`] subsequent simulations are charged to.
    ///
    /// Default: no-op, so environments without phase bookkeeping keep
    /// compiling; the bundled environments delegate to their [`SimCounter`].
    fn set_sim_phase(&self, _phase: SimPhase) {}

    /// Per-phase simulation counts, indexed by [`SimPhase::index`].
    ///
    /// Default: all zeros (environment does not attribute phases).
    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT] {
        [0; SimPhase::COUNT]
    }

    /// Publishes pending warm-start state (see
    /// [`WarmStartCache::commit`](crate::WarmStartCache::commit)).
    ///
    /// Batch evaluators call this exactly once per batch, *before* the
    /// batch runs, so every point is seeded from the same committed
    /// snapshot regardless of worker count or completion order. Default:
    /// no-op (environment has no warm-start cache).
    fn warm_commit(&self) {}

    /// Evaluates the margin vector at `(d, ŝ, θ)` *plus* a set of perturbed
    /// points `(d′, ŝ′)` sharing the same θ, using sensitivity analysis on
    /// the base point's cached factorizations where the environment
    /// supports it. Returns `(base margins, per-direction margins)`.
    ///
    /// `Ok(None)` means there is no sensitivity shortcut for this point —
    /// or none at all, which is the default — and callers fall back to
    /// independent finite-difference evaluations.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures the finite-difference path would hit
    /// as well (e.g. a failed base-point solve).
    fn eval_margins_perturbed(
        &self,
        _d: &DVec,
        _s_hat: &DVec,
        _theta: &OperatingPoint,
        _directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        Ok(None)
    }

    /// Evaluates margins at many `(ŝ, θ)` sample points for a fixed design
    /// — the Monte-Carlo shape — letting the environment batch the
    /// underlying solves. `None` (the default) means no batched path:
    /// callers loop over [`CircuitEnv::eval_margins`].
    fn eval_margins_samples(
        &self,
        _d: &DVec,
        _points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        None
    }

    /// Adjoint/sensitivity solves recorded so far (see
    /// [`SimCounter::adjoint_solves`]). Not part of the simulation total.
    fn adjoint_solve_count(&self) -> u64 {
        0
    }

    /// Finite-difference simulator calls avoided by the sensitivity path
    /// (see [`SimCounter::fd_sims_avoided`]).
    fn fd_sims_avoided(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = SimCounter::new();
        assert_eq!(c.count(), 0);
        c.add(3);
        c.add(2);
        assert_eq!(c.count(), 5);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn counter_attributes_phases() {
        let c = SimCounter::new();
        assert_eq!(c.phase(), SimPhase::Other);
        c.add(2); // charged to Other
        c.set_phase(SimPhase::Wcd);
        assert_eq!(c.phase(), SimPhase::Wcd);
        c.add(3);
        c.set_phase(SimPhase::Verification);
        c.add(5);
        assert_eq!(c.count(), 10);
        assert_eq!(c.phase_count(SimPhase::Other), 2);
        assert_eq!(c.phase_count(SimPhase::Wcd), 3);
        assert_eq!(c.phase_count(SimPhase::Verification), 5);
        assert_eq!(c.phase_count(SimPhase::Feasibility), 0);
        let sum: u64 = c.phase_counts().iter().sum();
        assert_eq!(sum, c.count(), "phase counts must partition the total");
        c.reset();
        assert_eq!(c.phase_counts(), [0; SimPhase::COUNT]);
        // Phase selection survives a reset.
        assert_eq!(c.phase(), SimPhase::Verification);
    }

    #[test]
    fn adjoint_counters_stay_out_of_the_total() {
        let c = SimCounter::new();
        c.add(4);
        c.add_adjoint(3);
        c.add_fd_avoided(12);
        assert_eq!(c.count(), 4, "adjoint solves must not inflate the total");
        assert_eq!(c.adjoint_solves(), 3);
        assert_eq!(c.fd_sims_avoided(), 12);
        let sum: u64 = c.phase_counts().iter().sum();
        assert_eq!(sum, c.count(), "phase counts must keep partitioning");
        c.reset();
        assert_eq!(c.adjoint_solves(), 0);
        assert_eq!(c.fd_sims_avoided(), 0);
    }

    #[test]
    fn phase_index_and_all_are_consistent() {
        for (i, p) in SimPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.label().is_empty());
        }
    }
}
