//! The [`CircuitEnv`] abstraction: what the worst-case analysis and the
//! yield optimizer need from a circuit.

use std::sync::atomic::{AtomicU64, Ordering};

use specwise_linalg::DVec;

use crate::{CktError, DesignSpace, OperatingPoint, OperatingRange, Spec, StatSpace};

/// A thread-safe counter of circuit-simulation calls — the paper's primary
/// effort metric (Table 7 reports `# Simulations`).
#[derive(Debug, Default)]
pub struct SimCounter(AtomicU64);

impl SimCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        SimCounter(AtomicU64::new(0))
    }

    /// Increments by `n` simulations.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A circuit under optimization: design space, standardized statistical
/// space, specifications, operating range, and the evaluation functions.
///
/// Performances are evaluated as `f(d, ŝ, θ)` with `ŝ ~ N(0, I)`; the
/// design-dependent covariance `C(d)` (paper Eq. 10) is applied *inside*
/// `eval_performances` — this is the transformed formulation of paper
/// Eqs. 11–14 that lets one machinery handle global and local variations.
pub trait CircuitEnv {
    /// Human-readable circuit name.
    fn name(&self) -> &str;

    /// The design space.
    fn design_space(&self) -> &DesignSpace;

    /// The standardized statistical space.
    fn stat_space(&self) -> &StatSpace;

    /// Dimension of the statistical space.
    fn stat_dim(&self) -> usize {
        self.stat_space().dim()
    }

    /// The performance specifications (order fixed; matches the vector
    /// returned by [`CircuitEnv::eval_performances`]).
    fn specs(&self) -> &[Spec];

    /// The operating range `Θ`.
    fn operating_range(&self) -> &OperatingRange;

    /// Names of the functional constraints, in the order of
    /// [`CircuitEnv::eval_constraints`].
    fn constraint_names(&self) -> Vec<String>;

    /// Evaluates all performances at `(d, ŝ, θ)` in physical units.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError>;

    /// Evaluates the functional ("sizing rule") constraints `c(d) ≥ 0` at
    /// nominal statistics and nominal operating conditions.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError>;

    /// Evaluates the margin vector `mᵢ = ±(fᵢ − f_bᵢ)` (positive = pass) at
    /// `(d, ŝ, θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitEnv::eval_performances`] errors.
    fn eval_margins(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let perf = self.eval_performances(d, s_hat, theta)?;
        Ok(self
            .specs()
            .iter()
            .zip(perf.iter())
            .map(|(spec, &f)| spec.margin(f))
            .collect())
    }

    /// Number of simulator invocations so far.
    fn sim_count(&self) -> u64;

    /// Resets the simulation counter.
    fn reset_sim_count(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = SimCounter::new();
        assert_eq!(c.count(), 0);
        c.add(3);
        c.add(2);
        assert_eq!(c.count(), 5);
        c.reset();
        assert_eq!(c.count(), 0);
    }
}
