//! The Miller (two-stage) operational amplifier of the paper's Fig. 8,
//! modeled with global process variations only (as in the paper's Table 6).
//!
//! Topology (PMOS input variant):
//!
//! ```text
//!  VDD ──┬──────────┬──────────────┬───────────┐
//!       MB2(diode)  MT (tail)      │           M7 (PMOS load)
//!        │vbp ───────┴── gates ────┘            │
//!        ⇓ IB2      tail                        │
//!  inn ─g M1─┐x1          x2┌─ M2 g─ inp       out ──┬── CL
//!            M3(diode)── M4─┘                   │     │
//!            └─gnd        └─gnd     x2 ─ Cc+Rz ─┘    gnd
//!                                   x2 ─ g M6 (NMOS, d=out, s=gnd)
//! ```
//!
//! * M1/M2 — PMOS input pair, * M3/M4 — NMOS mirror load,
//! * M6 — NMOS second stage, * M7 — PMOS current-source load,
//! * MT — PMOS tail, * MB2 — PMOS bias diode, * Cc + Rz — Miller
//!   compensation with nulling resistor.
//!
//! Specifications (paper Table 6): `A0 ≥ 80 dB`, `ft ≥ 1.3 MHz`,
//! `Φm ≥ 60°`, `SR ≥ 3 V/µs`, `P ≤ 1.3 mW`.
//!
//! The environment is a thin wrapper over the deck-driven [`Testbench`]:
//! the whole setup — topology, design space, specs, operating range,
//! harness wiring — lives in the annotated deck returned by
//! [`MillerOpamp::deck`].

use specwise_linalg::DVec;

use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SlewRateMethod, Spec, StatSpace, Technology, Testbench,
};

/// The annotated deck defining the environment. No `.match` groups: the
/// paper's Table 6 experiment uses global variations only.
const DECK: &str = "\
.name Miller opamp
.nodes vdd inp out x1 x2 xz tail vbp
.design w1 um 2.0 400.0 8.0
.design l1 um 0.6 10.0 2.0
.design w3 um 2.0 400.0 2.5
.design l3 um 0.6 10.0 2.0
.design w6 um 2.0 400.0 30.0
.design l6 um 0.6 10.0 1.0
.design w7 um 2.0 800.0 180.0
.design wt um 2.0 400.0 17.0
.design ib uA 1.0 100.0 10.0
.design cc pF 0.5 30.0 3.0
.range temp -40.0 125.0
.range vdd 4.5 5.5
.spec A0 dB min 80.0 dcgain
.spec ft MHz min 1.3 ugf
.spec PM deg min 60.0 pm
.spec SRp V/us min 3.0 slew
.spec Power mW max 1.3 power
.tb vinp VINP
.tb vinn VINN
.tb out out
.tb vdd VDD
.tb tail mt
.tb slewcap CC
VDD vdd 0 {vdd}
VINP inp 0 {vcm}
VINN inn 0 {vcm}
IB2 vbp 0 {ib}
m1 x1 inn tail vdd PMOS W={w1} L={l1}
m2 x2 inp tail vdd PMOS W={w1} L={l1}
m3 x1 x1 0 0 NMOS W={w3} L={l3}
m4 x2 x1 0 0 NMOS W={w3} L={l3}
m6 out x2 0 0 NMOS W={w6} L={l6}
m7 out vbp vdd vdd PMOS W={w7} L=2e-6
mt tail vbp vdd vdd PMOS W={wt} L=2e-6
mb2 vbp vbp vdd vdd PMOS W=20e-6 L=2e-6
RZ x2 xz 1.2e3
CC xz out {cc}
CL out 0 40.0e-12
.end
";

/// The Miller two-stage opamp environment (paper Fig. 8).
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, MillerOpamp};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = MillerOpamp::paper_setup();
/// // Global variations only: five statistical parameters.
/// assert_eq!(env.stat_dim(), 5);
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(5),
///     &env.operating_range().nominal(),
/// )?;
/// assert_eq!(perf.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MillerOpamp {
    tb: Testbench,
}

impl MillerOpamp {
    /// The paper's experimental setup: the initial design has a mid-range
    /// yield (Table 6 "Initial": 33.7 %), marginally failing the slew-rate
    /// specification and sitting close to the phase-margin bound.
    pub fn paper_setup() -> Self {
        MillerOpamp {
            tb: Testbench::from_deck(DECK).expect("embedded Miller deck is valid"),
        }
    }

    /// The annotated deck this environment is compiled from.
    pub fn deck() -> &'static str {
        DECK
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.tb = self.tb.with_sr_method(method);
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.tb = self.tb.with_warm_start(enabled);
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        self.tb.warm_cache()
    }

    /// The technology card in use.
    pub fn technology(&self) -> &Technology {
        self.tb.technology()
    }

    /// Full metric set at one evaluation point.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.tb.metrics(d, s_hat, theta)
    }
}

impl CircuitEnv for MillerOpamp {
    fn name(&self) -> &str {
        self.tb.name()
    }

    fn design_space(&self) -> &DesignSpace {
        self.tb.design_space()
    }

    fn stat_space(&self) -> &StatSpace {
        self.tb.stat_space()
    }

    fn specs(&self) -> &[Spec] {
        self.tb.specs()
    }

    fn operating_range(&self) -> &OperatingRange {
        self.tb.operating_range()
    }

    fn constraint_names(&self) -> Vec<String> {
        self.tb.constraint_names()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        self.tb.eval_performances(d, s_hat, theta)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.tb.eval_constraints(d)
    }

    fn sim_count(&self) -> u64 {
        self.tb.sim_count()
    }

    fn reset_sim_count(&self) {
        self.tb.reset_sim_count();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.tb.set_sim_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.tb.sim_phase_counts()
    }

    fn warm_commit(&self) {
        self.tb.warm_commit();
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        self.tb.eval_margins_perturbed(d, s_hat, theta, directions)
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        self.tb.eval_margins_samples(d, points)
    }

    fn adjoint_solve_count(&self) -> u64 {
        self.tb.adjoint_solve_count()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.tb.fd_sims_avoided()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> MillerOpamp {
        MillerOpamp::paper_setup()
    }

    #[test]
    fn nominal_design_simulates() {
        let e = env();
        let m = e
            .metrics(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(m.a0_db > 60.0, "A0 = {} dB", m.a0_db);
        assert!(m.ft_hz > 0.3e6 && m.ft_hz < 50e6, "ft = {}", m.ft_hz);
        assert!(m.phase_margin_deg > 20.0, "PM = {}", m.phase_margin_deg);
        assert!(m.power_w < 1.3e-3, "P = {}", m.power_w);
    }

    #[test]
    fn initial_design_is_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        for (i, name) in e.constraint_names().iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn global_vth_shift_moves_performances() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let base = e.eval_performances(&d0, &DVec::zeros(5), &theta).unwrap();
        let mut s = DVec::zeros(5);
        s[e.stat_space().index_of("vthn_glob").unwrap()] = 3.0;
        let shifted = e.eval_performances(&d0, &s, &theta).unwrap();
        let diff = (&shifted - &base).norm_inf();
        assert!(
            diff > 1e-3,
            "global shift must move performances, diff = {diff}"
        );
    }

    #[test]
    fn compensation_cap_controls_ft() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(5);
        let d0 = e.design_space().initial();
        let mut d_big_cc = d0.clone();
        d_big_cc[9] = 2.0 * d0[9];
        let ft0 = e.metrics(&d0, &s0, &theta).unwrap().ft_hz;
        let ft1 = e.metrics(&d_big_cc, &s0, &theta).unwrap().ft_hz;
        assert!(ft1 < ft0, "doubling Cc must reduce ft: {ft1} vs {ft0}");
    }

    #[test]
    fn slew_rate_tracks_tail_over_cc() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(5);
        let d0 = e.design_space().initial();
        let m = e.metrics(&d0, &s0, &theta).unwrap();
        // SR (analytic) must equal I_tail / Cc to within mirror accuracy.
        let i_tail_approx = d0[8] * 1e-6 * d0[7] / 20.0;
        let sr_approx = i_tail_approx / (d0[9] * 1e-12);
        assert!(
            (m.slew_v_per_s / sr_approx - 1.0).abs() < 0.5,
            "SR {} vs rough {}",
            m.slew_v_per_s,
            sr_approx
        );
    }

    #[test]
    fn design_map_reflects_deck_bindings() {
        let e = env();
        let map_env = Testbench::from_deck(MillerOpamp::deck()).unwrap();
        let cc = map_env.design_map().bindings_of("cc");
        assert_eq!(cc.len(), 1);
        assert_eq!(cc[0].element, "CC");
        let w1 = map_env.design_map().bindings_of("w1");
        assert_eq!(w1.len(), 2, "w1 drives m1 and m2");
        assert_eq!(e.design_space().dim(), map_env.design_space().dim());
    }
}
