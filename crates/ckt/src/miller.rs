//! The Miller (two-stage) operational amplifier of the paper's Fig. 8,
//! modeled with global process variations only (as in the paper's Table 6).
//!
//! Topology (PMOS input variant):
//!
//! ```text
//!  VDD ──┬──────────┬──────────────┬───────────┐
//!       MB2(diode)  MT (tail)      │           M7 (PMOS load)
//!        │vbp ───────┴── gates ────┘            │
//!        ⇓ IB2      tail                        │
//!  inn ─g M1─┐x1          x2┌─ M2 g─ inp       out ──┬── CL
//!            M3(diode)── M4─┘                   │     │
//!            └─gnd        └─gnd     x2 ─ Cc+Rz ─┘    gnd
//!                                   x2 ─ g M6 (NMOS, d=out, s=gnd)
//! ```
//!
//! * M1/M2 — PMOS input pair, * M3/M4 — NMOS mirror load,
//! * M6 — NMOS second stage, * M7 — PMOS current-source load,
//! * MT — PMOS tail, * MB2 — PMOS bias diode, * Cc + Rz — Miller
//!   compensation with nulling resistor.
//!
//! Specifications (paper Table 6): `A0 ≥ 80 dB`, `ft ≥ 1.3 MHz`,
//! `Φm ≥ 60°`, `SR ≥ 3 V/µs`, `P ≤ 1.3 mW`.

use specwise_linalg::DVec;
use specwise_mna::{Circuit, MosPolarity, MosfetParams};

use crate::extract::{dc_solve_counted, measure, saturation_constraints, BuiltOpamp, OpampBuilder};
use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignParam, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SimCounter, SlewRateMethod, Spec, SpecKind, StatSpace, Technology,
};

/// Device list in netlist order (name, polarity).
const DEVICES: [(&str, MosPolarity); 8] = [
    ("m1", MosPolarity::Pmos),
    ("m2", MosPolarity::Pmos),
    ("m3", MosPolarity::Nmos),
    ("m4", MosPolarity::Nmos),
    ("m6", MosPolarity::Nmos),
    ("m7", MosPolarity::Pmos),
    ("mt", MosPolarity::Pmos),
    ("mb2", MosPolarity::Pmos),
];

/// Load capacitance \[F\].
const CL: f64 = 40.0e-12;
/// Compensation nulling resistor \[Ω\].
const RZ: f64 = 1.2e3;
/// Bias diode geometry \[m\].
const MB2_W: f64 = 20e-6;
const MB2_L: f64 = 2e-6;
/// Fixed channel lengths \[m\].
const TAIL_L: f64 = 2e-6;
const M7_L: f64 = 2e-6;

/// The Miller two-stage opamp environment (paper Fig. 8).
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, MillerOpamp};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = MillerOpamp::paper_setup();
/// // Global variations only: five statistical parameters.
/// assert_eq!(env.stat_dim(), 5);
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(5),
///     &env.operating_range().nominal(),
/// )?;
/// assert_eq!(perf.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MillerOpamp {
    tech: Technology,
    design: DesignSpace,
    stats: StatSpace,
    specs: Vec<Spec>,
    range: OperatingRange,
    sr_method: SlewRateMethod,
    counter: SimCounter,
    warm: WarmStartCache,
}

impl MillerOpamp {
    /// The paper's experimental setup: the initial design has a mid-range
    /// yield (Table 6 "Initial": 33.7 %), marginally failing the slew-rate
    /// specification and sitting close to the phase-margin bound.
    pub fn paper_setup() -> Self {
        let design = DesignSpace::new(vec![
            DesignParam::new("w1", "um", 2.0, 400.0, 8.0),
            DesignParam::new("l1", "um", 0.6, 10.0, 2.0),
            DesignParam::new("w3", "um", 2.0, 400.0, 2.5),
            DesignParam::new("l3", "um", 0.6, 10.0, 2.0),
            DesignParam::new("w6", "um", 2.0, 400.0, 30.0),
            DesignParam::new("l6", "um", 0.6, 10.0, 1.0),
            DesignParam::new("w7", "um", 2.0, 800.0, 180.0),
            DesignParam::new("wt", "um", 2.0, 400.0, 17.0),
            DesignParam::new("ib", "uA", 1.0, 100.0, 10.0),
            DesignParam::new("cc", "pF", 0.5, 30.0, 3.0),
        ]);
        let stats = StatSpace::build(&DEVICES, false);
        let specs = vec![
            Spec::new("A0", "dB", SpecKind::LowerBound, 80.0),
            Spec::new("ft", "MHz", SpecKind::LowerBound, 1.3),
            Spec::new("PM", "deg", SpecKind::LowerBound, 60.0),
            Spec::new("SRp", "V/us", SpecKind::LowerBound, 3.0),
            Spec::new("Power", "mW", SpecKind::UpperBound, 1.3),
        ];
        MillerOpamp {
            tech: Technology::c06(),
            design,
            stats,
            specs,
            range: OperatingRange::new(-40.0, 125.0, 4.5, 5.5),
            sr_method: SlewRateMethod::Analytic,
            counter: SimCounter::new(),
            warm: WarmStartCache::from_env(),
        }
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.sr_method = method;
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm = if enabled {
            WarmStartCache::always_enabled()
        } else {
            WarmStartCache::disabled()
        };
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        &self.warm
    }

    /// The technology card in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Full metric set at one evaluation point.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.check_dims(d, s_hat)?;
        let (m, _) = measure(
            self,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
        )?;
        Ok(m)
    }

    fn check_dims(&self, d: &DVec, s_hat: &DVec) -> Result<(), CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        if s_hat.len() != self.stats.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.stats.dim(),
                found: s_hat.len(),
            });
        }
        Ok(())
    }

    fn geometry(&self, d: &DVec, device: &str) -> (f64, f64) {
        let um = 1e-6;
        match device {
            "m1" | "m2" => (d[0] * um, d[1] * um),
            "m3" | "m4" => (d[2] * um, d[3] * um),
            "m6" => (d[4] * um, d[5] * um),
            "m7" => (d[6] * um, M7_L),
            "mt" => (d[7] * um, TAIL_L),
            "mb2" => (MB2_W, MB2_L),
            other => unreachable!("unknown device {other}"),
        }
    }

    fn device_params(
        &self,
        d: &DVec,
        s_hat: &DVec,
        device: &str,
        polarity: MosPolarity,
    ) -> Result<MosfetParams, CktError> {
        let (w, l) = self.geometry(d, device);
        let (delta_vth, beta_factor) = self
            .stats
            .device_deltas(&self.tech, device, polarity, w, l, s_hat)?;
        let mut p = MosfetParams::new(*self.tech.model(polarity), w, l);
        p.delta_vth = delta_vth;
        p.beta_factor = beta_factor;
        Ok(p)
    }
}

impl OpampBuilder for MillerOpamp {
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError> {
        let mut ckt = Circuit::new();
        ckt.set_temperature(theta.temp_k());
        let gnd = Circuit::GROUND;
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        let x1 = ckt.node("x1");
        let x2 = ckt.node("x2");
        let xz = ckt.node("xz");
        let tail = ckt.node("tail");
        let vbp = ckt.node("vbp");
        let inn = if feedback { out } else { ckt.node("inn") };

        let vcm = theta.vdd / 2.0;
        let ib = d[8] * 1e-6;
        let cc = d[9] * 1e-12;

        ckt.voltage_source("VDD", vdd, gnd, theta.vdd)?;
        ckt.voltage_source("VINP", inp, gnd, vcm)?;
        let vinn_src = if feedback {
            None
        } else {
            ckt.voltage_source("VINN", inn, gnd, vinn_dc)?;
            Some("VINN".to_string())
        };
        ckt.current_source("IB2", vbp, gnd, ib)?;

        let p = |dev: &str, pol| self.device_params(d, s_hat, dev, pol);
        ckt.mosfet("m1", x1, inn, tail, vdd, p("m1", MosPolarity::Pmos)?)?;
        ckt.mosfet("m2", x2, inp, tail, vdd, p("m2", MosPolarity::Pmos)?)?;
        ckt.mosfet("m3", x1, x1, gnd, gnd, p("m3", MosPolarity::Nmos)?)?;
        ckt.mosfet("m4", x2, x1, gnd, gnd, p("m4", MosPolarity::Nmos)?)?;
        ckt.mosfet("m6", out, x2, gnd, gnd, p("m6", MosPolarity::Nmos)?)?;
        ckt.mosfet("m7", out, vbp, vdd, vdd, p("m7", MosPolarity::Pmos)?)?;
        ckt.mosfet("mt", tail, vbp, vdd, vdd, p("mt", MosPolarity::Pmos)?)?;
        ckt.mosfet("mb2", vbp, vbp, vdd, vdd, p("mb2", MosPolarity::Pmos)?)?;

        // Miller compensation: x2 — Rz — xz — Cc — out. All capacitors see
        // the global capacitance spread coherently (same oxide).
        let cap_factor = self.stats.cap_factor(&self.tech, s_hat)?;
        let cc = cc * cap_factor;
        ckt.resistor("RZ", x2, xz, RZ)?;
        ckt.capacitor("CC", xz, out, cc)?;
        ckt.capacitor("CL", out, gnd, CL * cap_factor)?;

        Ok(BuiltOpamp {
            circuit: ckt,
            vinp_src: "VINP".to_string(),
            vinn_src,
            out,
            vdd_src: "VDD".to_string(),
            vcm,
            slew_cap: cc,
            tail_device: "mt".to_string(),
        })
    }
}

impl CircuitEnv for MillerOpamp {
    fn name(&self) -> &str {
        "Miller opamp"
    }

    fn design_space(&self) -> &DesignSpace {
        &self.design
    }

    fn stat_space(&self) -> &StatSpace {
        &self.stats
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn operating_range(&self) -> &OperatingRange {
        &self.range
    }

    fn constraint_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(3 * DEVICES.len());
        for (dev, _) in DEVICES {
            names.push(format!("vsat_{dev}"));
            names.push(format!("vov_{dev}"));
            names.push(format!("vovmax_{dev}"));
        }
        names
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let m = self.metrics(d, s_hat, theta)?;
        Ok(DVec::from_slice(&[
            m.a0_db,
            m.ft_hz / 1e6,
            m.phase_margin_deg,
            m.slew_v_per_s / 1e6,
            m.power_w * 1e3,
        ]))
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.check_dims(d, &DVec::zeros(self.stats.dim()))?;
        let theta = self.range.nominal();
        let built = self.build(d, &DVec::zeros(self.stats.dim()), &theta, true, 0.0)?;
        let op = dc_solve_counted(&built.circuit, &self.counter, &self.warm, d, &theta)?;
        Ok(saturation_constraints(&op, 0.05, 0.05, 0.5))
    }

    fn sim_count(&self) -> u64 {
        self.counter.count()
    }

    fn reset_sim_count(&self) {
        self.counter.reset();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.counter.set_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.counter.phase_counts()
    }

    fn warm_commit(&self) {
        self.warm.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> MillerOpamp {
        MillerOpamp::paper_setup()
    }

    #[test]
    fn nominal_design_simulates() {
        let e = env();
        let m = e
            .metrics(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(m.a0_db > 60.0, "A0 = {} dB", m.a0_db);
        assert!(m.ft_hz > 0.3e6 && m.ft_hz < 50e6, "ft = {}", m.ft_hz);
        assert!(m.phase_margin_deg > 20.0, "PM = {}", m.phase_margin_deg);
        assert!(m.power_w < 1.3e-3, "P = {}", m.power_w);
    }

    #[test]
    fn initial_design_is_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        for (i, name) in e.constraint_names().iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn global_vth_shift_moves_performances() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let base = e.eval_performances(&d0, &DVec::zeros(5), &theta).unwrap();
        let mut s = DVec::zeros(5);
        s[e.stat_space().index_of("vthn_glob").unwrap()] = 3.0;
        let shifted = e.eval_performances(&d0, &s, &theta).unwrap();
        let diff = (&shifted - &base).norm_inf();
        assert!(
            diff > 1e-3,
            "global shift must move performances, diff = {diff}"
        );
    }

    #[test]
    fn compensation_cap_controls_ft() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(5);
        let d0 = e.design_space().initial();
        let mut d_big_cc = d0.clone();
        d_big_cc[9] = 2.0 * d0[9];
        let ft0 = e.metrics(&d0, &s0, &theta).unwrap().ft_hz;
        let ft1 = e.metrics(&d_big_cc, &s0, &theta).unwrap().ft_hz;
        assert!(ft1 < ft0, "doubling Cc must reduce ft: {ft1} vs {ft0}");
    }

    #[test]
    fn slew_rate_tracks_tail_over_cc() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(5);
        let d0 = e.design_space().initial();
        let m = e.metrics(&d0, &s0, &theta).unwrap();
        // SR (analytic) must equal I_tail / Cc to within mirror accuracy.
        let i_tail_approx = d0[8] * 1e-6 * d0[7] / 20.0;
        let sr_approx = i_tail_approx / (d0[9] * 1e-12);
        assert!(
            (m.slew_v_per_s / sr_approx - 1.0).abs() < 0.5,
            "SR {} vs rough {}",
            m.slew_v_per_s,
            sr_approx
        );
    }
}
