//! An analytic (closed-form) [`CircuitEnv`] for testing and benchmarking the
//! yield machinery without circuit simulations.
//!
//! The worst-case search, linearization, and optimizer layers only see the
//! [`CircuitEnv`] trait; an `AnalyticEnv` lets their tests use known-answer
//! performance functions (linear, quadratic, mismatch-shaped) where every
//! quantity — worst-case distance, yield, gradients — can be verified
//! against hand calculations.
//!
//! # Example
//!
//! ```
//! use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, OperatingPoint,
//!                    OperatingRange, Spec, SpecKind};
//! use specwise_linalg::DVec;
//!
//! # fn main() -> Result<(), specwise_ckt::CktError> {
//! // One performance: f = d0 + s0, spec f >= 0.
//! let env = AnalyticEnv::builder()
//!     .design(DesignSpace::new(vec![DesignParam::new("d0", "", -10.0, 10.0, 2.0)]))
//!     .stat_dim(1)
//!     .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
//!     .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
//!     .build()?;
//! let f = env.eval_performances(
//!     &DVec::from_slice(&[2.0]),
//!     &DVec::from_slice(&[-0.5]),
//!     &env.operating_range().nominal(),
//! )?;
//! assert_eq!(f[0], 1.5);
//! # Ok(())
//! # }
//! ```

use specwise_linalg::DVec;

use crate::{
    CircuitEnv, CktError, DesignSpace, OperatingPoint, OperatingRange, SimCounter, Spec, StatSpace,
};

type PerfFn = dyn Fn(&DVec, &DVec, &OperatingPoint) -> DVec + Send + Sync;
type ConstraintFn = dyn Fn(&DVec) -> DVec + Send + Sync;
type FailFn = dyn Fn(&DVec) -> bool + Send + Sync;
type FailStatFn = dyn Fn(&DVec, &DVec) -> bool + Send + Sync;

/// A [`CircuitEnv`] whose performances and constraints are closed-form
/// functions, for testing and benchmarking the yield machinery against
/// known answers.
pub struct AnalyticEnv {
    name: String,
    design: DesignSpace,
    stats: StatSpace,
    stat_dim: usize,
    specs: Vec<Spec>,
    range: OperatingRange,
    perf: Box<PerfFn>,
    constraints: Box<ConstraintFn>,
    constraint_names: Vec<String>,
    fail_when: Option<Box<FailFn>>,
    fail_when_stat: Option<Box<FailStatFn>>,
    counter: SimCounter,
}

impl std::fmt::Debug for AnalyticEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticEnv")
            .field("name", &self.name)
            .field("design_dim", &self.design.dim())
            .field("stat_dim", &self.stat_dim)
            .field("specs", &self.specs.len())
            .finish()
    }
}

/// Builder for [`AnalyticEnv`].
#[derive(Default)]
pub struct AnalyticEnvBuilder {
    name: Option<String>,
    design: Option<DesignSpace>,
    stat_dim: Option<usize>,
    specs: Vec<Spec>,
    range: Option<OperatingRange>,
    perf: Option<Box<PerfFn>>,
    constraints: Option<Box<ConstraintFn>>,
    constraint_names: Vec<String>,
    fail_when: Option<Box<FailFn>>,
    fail_when_stat: Option<Box<FailStatFn>>,
}

impl std::fmt::Debug for AnalyticEnvBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticEnvBuilder")
            .field("specs", &self.specs.len())
            .finish()
    }
}

impl AnalyticEnvBuilder {
    /// Sets the display name (default `"analytic"`).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Sets the design space (required).
    pub fn design(mut self, design: DesignSpace) -> Self {
        self.design = Some(design);
        self
    }

    /// Sets the statistical dimension (required). The parameters are
    /// anonymous standardized Gaussians named `s0, s1, …`.
    pub fn stat_dim(mut self, n: usize) -> Self {
        self.stat_dim = Some(n);
        self
    }

    /// Adds one specification (at least one required).
    pub fn spec(mut self, spec: Spec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Sets the operating range (default: T ∈ \[0, 50\] °C, VDD ∈ \[3, 3.6\] V).
    pub fn operating_range(mut self, range: OperatingRange) -> Self {
        self.range = Some(range);
        self
    }

    /// Sets the performance function (required); must return one value per
    /// spec, in spec order.
    pub fn performances<F>(mut self, f: F) -> Self
    where
        F: Fn(&DVec, &DVec, &OperatingPoint) -> DVec + Send + Sync + 'static,
    {
        self.perf = Some(Box::new(f));
        self
    }

    /// Sets the constraint function and names (default: no constraints).
    pub fn constraints<F>(mut self, names: Vec<String>, f: F) -> Self
    where
        F: Fn(&DVec) -> DVec + Send + Sync + 'static,
    {
        self.constraint_names = names;
        self.constraints = Some(Box::new(f));
        self
    }

    /// Declares a design region where the "simulation" fails — every
    /// evaluation there returns [`CktError::Simulation`], mimicking a
    /// circuit whose DC solve does not converge. Used to test the
    /// robustness paths of the optimizer.
    pub fn fail_when<F>(mut self, f: F) -> Self
    where
        F: Fn(&DVec) -> bool + Send + Sync + 'static,
    {
        self.fail_when = Some(Box::new(f));
        self
    }

    /// Declares a statistical region where the "simulation" fails —
    /// performance evaluations there return [`CktError::Simulation`],
    /// mimicking a non-converging DC solve at an extreme mismatch sample.
    /// Used to test graceful degradation of Monte-Carlo loops and the
    /// retry policy of the evaluation service.
    pub fn fail_when_stat<F>(mut self, f: F) -> Self
    where
        F: Fn(&DVec, &DVec) -> bool + Send + Sync + 'static,
    {
        self.fail_when_stat = Some(Box::new(f));
        self
    }

    /// Builds the environment.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::InvalidConfig`] when a required piece is missing.
    pub fn build(self) -> Result<AnalyticEnv, CktError> {
        let design = self.design.ok_or(CktError::InvalidConfig {
            reason: "design space required",
        })?;
        let stat_dim = self.stat_dim.ok_or(CktError::InvalidConfig {
            reason: "stat_dim required",
        })?;
        if self.specs.is_empty() {
            return Err(CktError::InvalidConfig {
                reason: "at least one spec required",
            });
        }
        let perf = self.perf.ok_or(CktError::InvalidConfig {
            reason: "performance function required",
        })?;
        // Anonymous stat space of the right size: globals-only spaces come
        // in fives, so synthesize from generic device names when needed.
        let stats = synth_stat_space(stat_dim);
        Ok(AnalyticEnv {
            name: self.name.unwrap_or_else(|| "analytic".to_string()),
            design,
            stats,
            stat_dim,
            specs: self.specs,
            range: self
                .range
                .unwrap_or_else(|| OperatingRange::new(0.0, 50.0, 3.0, 3.6)),
            perf,
            constraints: self
                .constraints
                .unwrap_or_else(|| Box::new(|_d: &DVec| DVec::zeros(0))),
            constraint_names: self.constraint_names,
            fail_when: self.fail_when,
            fail_when_stat: self.fail_when_stat,
            counter: SimCounter::new(),
        })
    }
}

/// Builds a stat space whose first `n` parameters are used; the analytic
/// environments only care about the dimension, so a padded local space is
/// synthesized and truncated at the accessor level.
fn synth_stat_space(n: usize) -> StatSpace {
    // StatSpace::build always includes the 5 globals; add enough synthetic
    // devices to reach at least n, then rely on `stat_dim` for truncation.
    let needed_locals = n.saturating_sub(5);
    let num_devices = needed_locals.div_ceil(2);
    let names: Vec<String> = (0..num_devices).map(|i| format!("x{i}")).collect();
    let devices: Vec<(&str, specwise_mna::MosPolarity)> = names
        .iter()
        .map(|s| (s.as_str(), specwise_mna::MosPolarity::Nmos))
        .collect();
    StatSpace::build(&devices, num_devices > 0)
}

impl AnalyticEnv {
    /// Starts a builder.
    pub fn builder() -> AnalyticEnvBuilder {
        AnalyticEnvBuilder::default()
    }
}

impl CircuitEnv for AnalyticEnv {
    fn name(&self) -> &str {
        &self.name
    }

    fn design_space(&self) -> &DesignSpace {
        &self.design
    }

    fn stat_space(&self) -> &StatSpace {
        &self.stats
    }

    fn stat_dim(&self) -> usize {
        self.stat_dim
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn operating_range(&self) -> &OperatingRange {
        &self.range
    }

    fn constraint_names(&self) -> Vec<String> {
        self.constraint_names.clone()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        if s_hat.len() != self.stat_dim {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.stat_dim,
                found: s_hat.len(),
            });
        }
        self.counter.add(1);
        if let Some(fail) = &self.fail_when {
            if fail(d) {
                return Err(CktError::Simulation(
                    specwise_mna::MnaError::NoConvergence {
                        analysis: "dc",
                        iterations: 0,
                        residual: f64::NAN,
                    },
                ));
            }
        }
        if let Some(fail) = &self.fail_when_stat {
            if fail(d, s_hat) {
                return Err(CktError::Simulation(
                    specwise_mna::MnaError::NoConvergence {
                        analysis: "dc",
                        iterations: 0,
                        residual: f64::NAN,
                    },
                ));
            }
        }
        let out = (self.perf)(d, s_hat, theta);
        if out.len() != self.specs.len() {
            return Err(CktError::InvalidConfig {
                reason: "performance function returned wrong arity",
            });
        }
        Ok(out)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        self.counter.add(1);
        if let Some(fail) = &self.fail_when {
            if fail(d) {
                return Err(CktError::Simulation(
                    specwise_mna::MnaError::NoConvergence {
                        analysis: "dc",
                        iterations: 0,
                        residual: f64::NAN,
                    },
                ));
            }
        }
        Ok((self.constraints)(d))
    }

    fn sim_count(&self) -> u64 {
        self.counter.count()
    }

    fn reset_sim_count(&self) {
        self.counter.reset();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.counter.set_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.counter.phase_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignParam, SpecKind};

    fn simple_env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - s[0] * s[0] - s[1]]))
            .build()
            .unwrap()
    }

    #[test]
    fn evaluates_closed_form() {
        let env = simple_env();
        let f = env
            .eval_performances(
                &DVec::from_slice(&[3.0]),
                &DVec::from_slice(&[1.0, 0.5]),
                &env.operating_range().nominal(),
            )
            .unwrap();
        assert_eq!(f[0], 1.5);
        assert_eq!(env.sim_count(), 1);
    }

    #[test]
    fn missing_pieces_rejected() {
        assert!(AnalyticEnv::builder().build().is_err());
        assert!(AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 1.0, 0.5
            )]))
            .build()
            .is_err());
    }

    #[test]
    fn dimension_checks() {
        let env = simple_env();
        let theta = env.operating_range().nominal();
        assert!(env
            .eval_performances(&DVec::zeros(2), &DVec::zeros(2), &theta)
            .is_err());
        assert!(env
            .eval_performances(&DVec::zeros(1), &DVec::zeros(3), &theta)
            .is_err());
    }

    #[test]
    fn default_constraints_empty() {
        let env = simple_env();
        assert_eq!(
            env.eval_constraints(&DVec::from_slice(&[1.0]))
                .unwrap()
                .len(),
            0
        );
        assert!(env.constraint_names().is_empty());
    }

    #[test]
    fn large_stat_dims_supported() {
        let env = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 1.0, 0.5,
            )]))
            .stat_dim(30)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|_, s, _| DVec::from_slice(&[s.sum()]))
            .build()
            .unwrap();
        assert_eq!(env.stat_dim(), 30);
        let f = env
            .eval_performances(
                &DVec::from_slice(&[0.5]),
                &DVec::filled(30, 0.1),
                &env.operating_range().nominal(),
            )
            .unwrap();
        assert!((f[0] - 3.0).abs() < 1e-12);
    }
}
