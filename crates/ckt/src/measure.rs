//! Shared opamp measurement harness — open-loop gain, unity-gain frequency,
//! phase margin, CMRR, slew rate and power from MNA simulations — plus the
//! [`Measure`] vocabulary that maps deck `.spec` lines onto the harness.
//!
//! # Measurement methodology
//!
//! Opamps cannot be simulated open-loop at DC — the operating point is
//! exponentially sensitive to input offset. The harness therefore runs two
//! configurations per evaluation:
//!
//! 1. **Feedback configuration** (unity buffer, output wired to the
//!    inverting gate): yields the true operating point, the power, the
//!    saturation margins for the functional constraints, and the (optional)
//!    large-signal slew-rate transient.
//! 2. **Open-loop configuration**: the inverting input is driven by an
//!    ideal source at exactly the output voltage found in step 1 (gates
//!    draw no DC current, so this reproduces the same operating point),
//!    after which small-signal AC analyses measure the differential and
//!    common-mode transfer functions.
//!
//! Simulation counting: every DC solve, AC analysis (all frequency points of
//! one stimulus configuration) and transient run counts as one simulator
//! call — mirroring how the paper's Table 7 counts TITAN invocations.

use std::sync::Arc;

use specwise_linalg::{CVec, Complex64, DVec};
use specwise_mna::{
    AcSolver, BatchDcOp, Circuit, DcOp, DcSensitivity, DcSolution, NodeId, Stimulus, Transient,
    TransientOptions,
};

use crate::warm::{WarmConfig, WarmKey, WarmSeed, WarmStartCache};
use crate::{CktError, OperatingPoint, SimCounter};

/// Everything a [`Measure`] can read: the harness metrics plus the feedback
/// configuration's netlist and DC operating point.
#[derive(Debug)]
pub struct MeasureContext<'a> {
    /// The metrics extracted by the measurement harness.
    pub metrics: &'a OpampMetrics,
    /// The feedback-configuration DC operating point.
    pub op: &'a DcSolution,
    /// The feedback-configuration netlist (for node lookups).
    pub circuit: &'a Circuit,
}

/// A user-provided measurement function: the payload of [`Measure::Custom`]
/// and the argument of `Testbench::with_custom_measure`.
pub type MeasureFn = Arc<dyn Fn(&MeasureContext) -> Result<f64, CktError> + Send + Sync>;

/// One named measurement of a deck-driven testbench: what a `.spec` line's
/// `<measure>` token selects.
#[derive(Clone)]
pub enum Measure {
    /// Open-loop DC gain \[dB\] (`dcgain`).
    DcGain,
    /// Unity-gain frequency \[Hz\] (`ugf`).
    UnityGainFreq,
    /// Phase margin \[degrees\] (`pm`).
    PhaseMargin,
    /// Common-mode rejection ratio \[dB\] (`cmrr`).
    Cmrr,
    /// Power-supply rejection ratio \[dB\] (`psrr`).
    Psrr,
    /// Positive slew rate \[V/s\] (`slew`).
    SlewRate,
    /// Total supply power \[W\] (`power`).
    Power,
    /// DC voltage of a node in the feedback configuration
    /// (`vdc(<node>)`).
    DcNodeVoltage(String),
    /// User escape hatch: an arbitrary function of the measurement context,
    /// attached programmatically via `Testbench::with_custom_measure`.
    Custom(MeasureFn),
}

impl std::fmt::Debug for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::DcGain => write!(f, "DcGain"),
            Measure::UnityGainFreq => write!(f, "UnityGainFreq"),
            Measure::PhaseMargin => write!(f, "PhaseMargin"),
            Measure::Cmrr => write!(f, "Cmrr"),
            Measure::Psrr => write!(f, "Psrr"),
            Measure::SlewRate => write!(f, "SlewRate"),
            Measure::Power => write!(f, "Power"),
            Measure::DcNodeVoltage(node) => write!(f, "DcNodeVoltage({node:?})"),
            Measure::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Measure {
    /// Parses a `.spec` measure token (`dcgain`, `ugf`, `pm`, `cmrr`,
    /// `psrr`, `slew`, `power`, `vdc(<node>)`); `None` for unknown tokens.
    pub fn parse(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "dcgain" => Some(Measure::DcGain),
            "ugf" => Some(Measure::UnityGainFreq),
            "pm" => Some(Measure::PhaseMargin),
            "cmrr" => Some(Measure::Cmrr),
            "psrr" => Some(Measure::Psrr),
            "slew" => Some(Measure::SlewRate),
            "power" => Some(Measure::Power),
            lower => {
                // `vdc(<node>)` keeps the node name's original case.
                let inner = lower.strip_prefix("vdc(")?.strip_suffix(')')?;
                if inner.is_empty() {
                    return None;
                }
                let node = &token[4..4 + inner.len()];
                Some(Measure::DcNodeVoltage(node.to_string()))
            }
        }
    }

    /// Evaluates the measurement in SI units.
    ///
    /// # Errors
    ///
    /// Returns a [`CktError`] when a referenced node does not exist or a
    /// custom closure fails.
    pub fn eval(&self, ctx: &MeasureContext) -> Result<f64, CktError> {
        match self {
            Measure::DcGain => Ok(ctx.metrics.a0_db),
            Measure::UnityGainFreq => Ok(ctx.metrics.ft_hz),
            Measure::PhaseMargin => Ok(ctx.metrics.phase_margin_deg),
            Measure::Cmrr => Ok(ctx.metrics.cmrr_db),
            Measure::Psrr => Ok(ctx.metrics.psrr_db),
            Measure::SlewRate => Ok(ctx.metrics.slew_v_per_s),
            Measure::Power => Ok(ctx.metrics.power_w),
            Measure::DcNodeVoltage(node) => {
                let id = ctx.circuit.find_node(node).map_err(CktError::from)?;
                Ok(ctx.op.voltage(id))
            }
            Measure::Custom(f) => f(ctx),
        }
    }
}

/// How the slew rate is extracted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlewRateMethod {
    /// `SR = I_tail / C_slew` from the DC operating point — the textbook
    /// large-signal limit; fast enough for the optimizer's inner loop.
    Analytic,
    /// Large-signal step transient on the unity-feedback configuration;
    /// reads the maximum output `|dv/dt|`.
    Transient {
        /// Time step \[s\].
        dt: f64,
        /// Stop time \[s\].
        t_stop: f64,
        /// Input step amplitude around the common mode \[V\].
        step: f64,
    },
}

/// The measured performance set of an opamp evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampMetrics {
    /// Open-loop DC gain \[dB\].
    pub a0_db: f64,
    /// Unity-gain (transit) frequency \[Hz\].
    pub ft_hz: f64,
    /// Phase margin \[degrees\].
    pub phase_margin_deg: f64,
    /// Common-mode rejection ratio \[dB\].
    pub cmrr_db: f64,
    /// Positive slew rate \[V/s\].
    pub slew_v_per_s: f64,
    /// Total supply power \[W\].
    pub power_w: f64,
    /// Power-supply rejection ratio (DC, positive supply) \[dB\].
    pub psrr_db: f64,
}

/// A fully built opamp netlist plus the handles the harness needs.
#[derive(Debug)]
pub(crate) struct BuiltOpamp {
    /// The netlist (temperature already set from θ).
    pub circuit: Circuit,
    /// Name of the non-inverting input voltage source.
    pub vinp_src: String,
    /// Name of the inverting input voltage source (absent in feedback
    /// configuration, where the gate is wired to the output node).
    pub vinn_src: Option<String>,
    /// Output node.
    pub out: NodeId,
    /// Name of the supply voltage source.
    pub vdd_src: String,
    /// Input common-mode voltage \[V\].
    pub vcm: f64,
    /// Capacitance that limits slewing \[F\].
    pub slew_cap: f64,
    /// Name of the tail-current device (its |I_D| limits slewing).
    pub tail_device: String,
}

/// Netlist factory implemented by each opamp topology.
pub(crate) trait OpampBuilder {
    /// Builds the netlist at `(d, ŝ, θ)`.
    ///
    /// With `feedback == true` the output node is wired to the inverting
    /// gate (unity buffer) and `vinn_dc` is ignored; otherwise the inverting
    /// input is driven by an ideal source at `vinn_dc`.
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError>;
}

/// Value returned when the gain never reaches unity (degenerate design):
/// pessimistic but finite, so the optimizer sees a very bad margin rather
/// than an error.
const DEGENERATE_FT_HZ: f64 = 1.0;

/// The harness output: metrics plus the feedback configuration's netlist
/// and operating point (what node-level measures read).
#[derive(Debug)]
pub(crate) struct Measured {
    /// The extracted metrics.
    pub metrics: OpampMetrics,
    /// The feedback-configuration netlist.
    pub fb_circuit: Circuit,
    /// The feedback-configuration DC operating point.
    pub op_fb: DcSolution,
}

/// The shared-solver AC stage output. One [`AcSolver`] built on the
/// open-loop circuit serves the differential, common-mode and supply
/// stimuli — the small-signal system matrices are stimulus-independent,
/// only the right-hand side differs — and the forward solutions and
/// complex gains are kept for the adjoint direction pass to reuse.
struct AcStage {
    ac: AcSolver,
    h0: Complex64,
    y_dm0: CVec,
    a0_db: f64,
    /// `Some(ft)` when the magnitude crossed unity; `None` is the
    /// degenerate case reported as [`DEGENERATE_FT_HZ`].
    crossing: Option<f64>,
    h_t: Complex64,
    y_t: Option<CVec>,
    ft_hz: f64,
    phase_margin_deg: f64,
    h_cm0: Complex64,
    y_cm0: CVec,
    cmrr_db: f64,
    h_ps0: Complex64,
    y_ps0: CVec,
    psrr_db: f64,
}

/// Runs the three small-signal analyses on one shared solver. The counter
/// increments (dm gain, crossing search, cm, ps) and every metric formula
/// match the historical per-stimulus-solver flow exactly.
fn ac_stage(
    ol: &BuiltOpamp,
    vinn: &str,
    op_ol: &DcSolution,
    counter: &SimCounter,
) -> Result<AcStage, CktError> {
    let ac = AcSolver::new(&ol.circuit, op_ol);

    // Differential drive: +1/2 on vinp, −1/2 on vinn.
    let b_dm = ac
        .drive(&[(&ol.vinp_src, 0.5), (vinn, -0.5)])
        .map_err(CktError::from)?;
    let sol_dm0 = ac.solve_driven(0.0, &b_dm).map_err(CktError::from)?;
    let h0 = sol_dm0.voltage(ol.out);
    counter.add(1);
    let adm0 = h0.abs();
    let a0_db = 20.0 * adm0.max(1e-30).log10();

    // Unity-gain frequency and phase margin.
    let crossing = ac
        .find_crossing_driven(ol.out, 1.0, 1.0, 20e9, &b_dm)
        .map_err(CktError::from)?;
    let (h_t, y_t, ft_hz, phase_margin_deg) = match crossing {
        Some(ft) => {
            let sol_t = ac.solve_driven(ft, &b_dm).map_err(CktError::from)?;
            let at_ft = sol_t.voltage(ol.out);
            // Phase margin relative to the stage's own low-frequency phase:
            // the excess phase lag accumulated up to ft determines stability
            // in unity feedback.
            let phase_lag = (h0.arg() - at_ft.arg()).rem_euclid(2.0 * std::f64::consts::PI);
            (
                at_ft,
                Some(sol_t.unknowns().clone()),
                ft,
                180.0 - phase_lag.to_degrees(),
            )
        }
        None => (Complex64::ZERO, None, DEGENERATE_FT_HZ, 0.0),
    };
    counter.add(1);

    // Common-mode drive: +1 on both inputs.
    let b_cm = ac
        .drive(&[(&ol.vinp_src, 1.0), (vinn, 1.0)])
        .map_err(CktError::from)?;
    let sol_cm0 = ac.solve_driven(0.0, &b_cm).map_err(CktError::from)?;
    let h_cm0 = sol_cm0.voltage(ol.out);
    counter.add(1);
    let acm0 = h_cm0.abs();
    let cmrr_db = if acm0 <= 0.0 {
        200.0
    } else {
        (20.0 * (adm0 / acm0).log10()).min(200.0)
    };

    // Supply drive: +1 on VDD, inputs quiet — PSRR = Adm/Apsr.
    let b_ps = ac.drive(&[(&ol.vdd_src, 1.0)]).map_err(CktError::from)?;
    let sol_ps0 = ac.solve_driven(0.0, &b_ps).map_err(CktError::from)?;
    let h_ps0 = sol_ps0.voltage(ol.out);
    counter.add(1);
    let apsr0 = h_ps0.abs();
    let psrr_db = if apsr0 <= 0.0 {
        200.0
    } else {
        (20.0 * (adm0 / apsr0).log10()).min(200.0)
    };

    Ok(AcStage {
        ac,
        h0,
        y_dm0: sol_dm0.unknowns().clone(),
        a0_db,
        crossing,
        h_t,
        y_t,
        ft_hz,
        phase_margin_deg,
        h_cm0,
        y_cm0: sol_cm0.unknowns().clone(),
        cmrr_db,
        h_ps0,
        y_ps0: sol_ps0.unknowns().clone(),
        psrr_db,
    })
}

/// Extracts the slew rate from the feedback configuration.
fn slew_rate(
    fb: &BuiltOpamp,
    op_fb: &DcSolution,
    sr_method: SlewRateMethod,
    counter: &SimCounter,
) -> Result<f64, CktError> {
    match sr_method {
        SlewRateMethod::Analytic => {
            let tail = op_fb
                .mosfet_op(&fb.tail_device)
                .ok_or(CktError::Extraction {
                    performance: "slew rate",
                    reason: "tail device not found",
                })?;
            Ok(tail.id.abs() / fb.slew_cap)
        }
        SlewRateMethod::Transient { dt, t_stop, step } => {
            let mut tr_ckt = fb.circuit.clone();
            tr_ckt
                .set_stimulus(
                    &fb.vinp_src,
                    Stimulus::Step {
                        v0: fb.vcm,
                        v1: fb.vcm + step,
                        t0: 4.0 * dt,
                        t_rise: dt,
                    },
                )
                .map_err(CktError::from)?;
            let result = Transient::new(&tr_ckt, TransientOptions::new(dt, t_stop))
                .run()
                .map_err(CktError::from)?;
            counter.add(1);
            Ok(result.max_slope(fb.out))
        }
    }
}

/// Everything the base measurement pass computed, shared between the scalar
/// metric extraction ([`measure`]) and the adjoint direction pass
/// ([`measure_with_directions`]).
struct MeasureState {
    fb: BuiltOpamp,
    op_fb: DcSolution,
    slew_v_per_s: f64,
    power_w: f64,
    slew_is_transient: bool,
    ol: BuiltOpamp,
    op_ol: DcSolution,
    acs: AcStage,
}

impl MeasureState {
    fn metrics(&self) -> OpampMetrics {
        OpampMetrics {
            a0_db: self.acs.a0_db,
            ft_hz: self.acs.ft_hz,
            phase_margin_deg: self.acs.phase_margin_deg,
            cmrr_db: self.acs.cmrr_db,
            slew_v_per_s: self.slew_v_per_s,
            power_w: self.power_w,
            psrr_db: self.acs.psrr_db,
        }
    }

    fn into_measured(self) -> Measured {
        let metrics = self.metrics();
        Measured {
            metrics,
            fb_circuit: self.fb.circuit,
            op_fb: self.op_fb,
        }
    }
}

/// The base measurement flow, keeping every intermediate the adjoint
/// direction pass needs.
#[allow(clippy::too_many_arguments)]
fn measure_full(
    builder: &dyn OpampBuilder,
    identity: u64,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    sr_method: SlewRateMethod,
    counter: &SimCounter,
    warm: &WarmStartCache,
) -> Result<MeasureState, CktError> {
    // 1. Feedback configuration: operating point, power, slew.
    let fb = builder.build(d, s_hat, theta, true, 0.0)?;
    let op_fb = warm
        .solve(
            &fb.circuit,
            WarmKey::new(identity, WarmConfig::Feedback, d, s_hat, theta, &[]),
        )
        .map_err(CktError::from)?;
    counter.add(1);
    let vout_fb = op_fb.voltage(fb.out);
    let i_vdd = op_fb.branch_current(&fb.vdd_src).map_err(CktError::from)?;
    let power_w = theta.vdd * i_vdd.abs();
    let slew_v_per_s = slew_rate(&fb, &op_fb, sr_method, counter)?;

    // 2. Open-loop configuration biased by the feedback result.
    let ol = builder.build(d, s_hat, theta, false, vout_fb)?;
    let vinn = ol.vinn_src.clone().ok_or(CktError::Extraction {
        performance: "open-loop analysis",
        reason: "builder did not provide an inverting input source",
    })?;
    let op_ol = warm
        .solve(
            &ol.circuit,
            WarmKey::new(identity, WarmConfig::OpenLoop, d, s_hat, theta, &[vout_fb]),
        )
        .map_err(CktError::from)?;
    counter.add(1);

    let acs = ac_stage(&ol, &vinn, &op_ol, counter)?;
    Ok(MeasureState {
        fb,
        op_fb,
        slew_v_per_s,
        power_w,
        slew_is_transient: matches!(sr_method, SlewRateMethod::Transient { .. }),
        ol,
        op_ol,
        acs,
    })
}

/// Runs the full measurement flow. `identity` namespaces the warm-start
/// cache entries per environment/netlist.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure(
    builder: &dyn OpampBuilder,
    identity: u64,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    sr_method: SlewRateMethod,
    counter: &SimCounter,
    warm: &WarmStartCache,
) -> Result<Measured, CktError> {
    measure_full(builder, identity, d, s_hat, theta, sr_method, counter, warm)
        .map(MeasureState::into_measured)
}

/// Runs the base measurement flow once, then evaluates every perturbed
/// point in `directions` (full `(d′, ŝ′)` pairs) by sensitivity analysis on
/// the base factorizations instead of re-simulating: one frozen-Jacobian
/// Newton step per DC configuration ([`DcSensitivity`]) and first-order
/// transfer-function updates `ΔH = −λᵀ·ΔA·y` from the two cached AC
/// adjoint solves (λ at DC and at the unity-gain crossing). The crossing
/// itself shifts by `Δft = −Δ|H|(ft) / (∂|H|/∂f)` with
/// `∂H/∂f = −j2π·λᵀCy`.
///
/// Returns `Ok(None)` when the shortcut does not apply — transient slew
/// extraction, degenerate unity-gain crossing, ill-conditioned magnitude
/// slope, or a sensitivity factorization/solve failure — so callers fall
/// back to finite differences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_with_directions(
    builder: &dyn OpampBuilder,
    identity: u64,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    sr_method: SlewRateMethod,
    counter: &SimCounter,
    warm: &WarmStartCache,
    directions: &[(DVec, DVec)],
) -> Result<Option<(Measured, Vec<Measured>)>, CktError> {
    let state = measure_full(builder, identity, d, s_hat, theta, sr_method, counter, warm)?;
    if state.slew_is_transient {
        // A large-signal transient has no small-signal shortcut.
        return Ok(None);
    }
    let Some(ft) = state.acs.crossing else {
        // Degenerate crossing: ft is a sentinel, not a smooth function.
        return Ok(None);
    };
    let y_t = state
        .acs
        .y_t
        .as_ref()
        .expect("crossing implies a stored solution");

    let n_ol = state.ol.circuit.num_unknowns();
    let mut e_out = CVec::zeros(n_ol);
    e_out[state.ol.out.index() - 1] = Complex64::ONE;
    let ac = &state.acs.ac;
    let (lam0, lam_t) = match (ac.solve_adjoint(0.0, &e_out), ac.solve_adjoint(ft, &e_out)) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return Ok(None),
    };
    let dhdf_t = -(Complex64::I * (2.0 * std::f64::consts::PI)) * ac.cap_bilinear(&lam_t, y_t);
    let h_t = state.acs.h_t;
    let slope = (h_t.conj() * dhdf_t).re / h_t.abs();
    if !slope.is_finite() || slope.abs() * ft < 1e-9 {
        // |H| locally flat in f: the crossing shift is ill-conditioned.
        return Ok(None);
    }
    let (sens_fb, sens_ol) = match (
        DcSensitivity::new(&state.fb.circuit, &state.op_fb),
        DcSensitivity::new(&state.ol.circuit, &state.op_ol),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return Ok(None),
    };
    // Two DC factorizations plus two AC adjoint solves, amortized over
    // every direction.
    counter.add_adjoint(4);

    let mut perturbed = Vec::with_capacity(directions.len());
    for (dp, sp) in directions {
        let fbp = builder.build(dp, sp, theta, true, 0.0)?;
        let Ok(op_fbp) = sens_fb.solve_perturbed(&fbp.circuit) else {
            return Ok(None);
        };
        let vout_fbp = op_fbp.voltage(fbp.out);
        let i_vddp = op_fbp
            .branch_current(&fbp.vdd_src)
            .map_err(CktError::from)?;
        let power_wp = theta.vdd * i_vddp.abs();
        let slewp = slew_rate(&fbp, &op_fbp, SlewRateMethod::Analytic, counter)?;

        // The open-loop bias tracks the perturbed feedback output — an
        // RHS-only change the frozen-Jacobian step resolves exactly.
        let olp = builder.build(dp, sp, theta, false, vout_fbp)?;
        let Ok(op_olp) = sens_ol.solve_perturbed(&olp.circuit) else {
            return Ok(None);
        };
        let (gp, cp) = AcSolver::small_signal_matrices(&olp.circuit, &op_olp);

        let dh0 = -ac.delta_bilinear(&gp, &cp, 0.0, &lam0, &state.acs.y_dm0);
        let h0p = state.acs.h0 + dh0;
        let adm0p = h0p.abs();
        let a0p_db = 20.0 * adm0p.max(1e-30).log10();

        let dht = -ac.delta_bilinear(&gp, &cp, ft, &lam_t, y_t);
        let dmag = (h_t.conj() * dht).re / h_t.abs();
        let dft = -dmag / slope;
        let ftp = ft + dft;
        if !ftp.is_finite() || ftp <= 0.0 {
            // The first-order step left the model's validity range.
            return Ok(None);
        }
        let h_tp = h_t + dht + dhdf_t * dft;
        let phase_lagp = (h0p.arg() - h_tp.arg()).rem_euclid(2.0 * std::f64::consts::PI);
        let pmp = 180.0 - phase_lagp.to_degrees();

        let dhcm = -ac.delta_bilinear(&gp, &cp, 0.0, &lam0, &state.acs.y_cm0);
        let acm0p = (state.acs.h_cm0 + dhcm).abs();
        let cmrrp = if acm0p <= 0.0 {
            200.0
        } else {
            (20.0 * (adm0p / acm0p).log10()).min(200.0)
        };

        let dhps = -ac.delta_bilinear(&gp, &cp, 0.0, &lam0, &state.acs.y_ps0);
        let apsr0p = (state.acs.h_ps0 + dhps).abs();
        let psrrp = if apsr0p <= 0.0 {
            200.0
        } else {
            (20.0 * (adm0p / apsr0p).log10()).min(200.0)
        };

        perturbed.push(Measured {
            metrics: OpampMetrics {
                a0_db: a0p_db,
                ft_hz: ftp,
                phase_margin_deg: pmp,
                cmrr_db: cmrrp,
                slew_v_per_s: slewp,
                power_w: power_wp,
                psrr_db: psrrp,
            },
            fb_circuit: fbp.circuit,
            op_fb: op_fbp,
        });
    }
    // Each direction would otherwise have cost a full measurement: two DC
    // solves and four AC analyses.
    counter.add_fd_avoided(6 * directions.len() as u64);
    Ok(Some((state.into_measured(), perturbed)))
}

/// One in-flight sample of [`measure_samples`].
struct SampleLane {
    i: usize,
    fb: BuiltOpamp,
    op_fb: Option<DcSolution>,
    key: Option<WarmKey>,
    seed: Option<DVec>,
    vout_fb: f64,
    slew: f64,
    power: f64,
    ol: Option<BuiltOpamp>,
    vinn: String,
    op_ol: Option<DcSolution>,
}

/// The outcome of applying the warm-start lookup protocol to one lane.
enum LaneStart {
    /// Exact hit: the committed solution replays without Newton work.
    Solved(DcSolution),
    /// Join the lockstep batch (seeded on a near hit, cold otherwise).
    Solve {
        key: WarmKey,
        seed: Option<DVec>,
    },
    Failed(CktError),
}

fn lane_start(circuit: &Circuit, key: WarmKey, warm: &WarmStartCache) -> LaneStart {
    match warm.lookup(circuit.num_unknowns(), &key) {
        WarmSeed::Exact(x) => match DcOp::new(circuit).solution_from(x) {
            Ok(op) => LaneStart::Solved(op),
            Err(e) => LaneStart::Failed(e.into()),
        },
        WarmSeed::Near(x0) => LaneStart::Solve {
            key,
            seed: Some(x0),
        },
        WarmSeed::Cold => LaneStart::Solve { key, seed: None },
    }
}

/// Batched variant of [`measure`] over many `(ŝ, θ)` sample points at a
/// fixed design `d` — the Monte-Carlo shape. The feedback and open-loop DC
/// solves of all samples advance in lockstep through the shared Newton
/// iteration ([`BatchDcOp`]), with the warm-start lookup/record protocol
/// applied per lane, and the AC stage runs per sample on one shared solver.
/// Per-sample results (values, sim counts, cache effects) are bit-identical
/// to calling [`measure`] in a loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_samples(
    builder: &dyn OpampBuilder,
    identity: u64,
    d: &DVec,
    points: &[(DVec, OperatingPoint)],
    sr_method: SlewRateMethod,
    counter: &SimCounter,
    warm: &WarmStartCache,
) -> Vec<Result<Measured, CktError>> {
    let mut results: Vec<Option<Result<Measured, CktError>>> =
        (0..points.len()).map(|_| None).collect();
    let batcher = BatchDcOp::new();

    // Stage 1: build the feedback configurations and look up warm seeds.
    let mut lanes: Vec<SampleLane> = Vec::with_capacity(points.len());
    for (i, (s_hat, theta)) in points.iter().enumerate() {
        let fb = match builder.build(d, s_hat, theta, true, 0.0) {
            Ok(fb) => fb,
            Err(e) => {
                results[i] = Some(Err(e));
                continue;
            }
        };
        let key = WarmKey::new(identity, WarmConfig::Feedback, d, s_hat, theta, &[]);
        let (op_fb, key, seed) = match lane_start(&fb.circuit, key, warm) {
            LaneStart::Solved(op) => {
                counter.add(1);
                (Some(op), None, None)
            }
            LaneStart::Solve { key, seed } => (None, Some(key), seed),
            LaneStart::Failed(e) => {
                results[i] = Some(Err(e));
                continue;
            }
        };
        lanes.push(SampleLane {
            i,
            fb,
            op_fb,
            key,
            seed,
            vout_fb: 0.0,
            slew: 0.0,
            power: 0.0,
            ol: None,
            vinn: String::new(),
            op_ol: None,
        });
    }

    // Lockstep-solve the feedback lanes that missed the exact store.
    let pend: Vec<usize> = lanes
        .iter()
        .enumerate()
        .filter(|(_, l)| l.op_fb.is_none())
        .map(|(j, _)| j)
        .collect();
    if !pend.is_empty() {
        let batch: Vec<(&Circuit, Option<DVec>)> = pend
            .iter()
            .map(|&j| (&lanes[j].fb.circuit, lanes[j].seed.clone()))
            .collect();
        let sols = batcher.solve_lockstep(&batch);
        drop(batch);
        for (&j, sol) in pend.iter().zip(sols) {
            match sol {
                Ok(op) => {
                    let key = lanes[j].key.take().expect("pending lane keeps its key");
                    warm.record(key, op.unknowns());
                    counter.add(1);
                    lanes[j].op_fb = Some(op);
                }
                Err(e) => results[lanes[j].i] = Some(Err(e.into())),
            }
        }
        lanes.retain(|l| l.op_fb.is_some());
    }

    // Stage 2: feedback extraction, open-loop build and warm lookup.
    for lane in &mut lanes {
        let (s_hat, theta) = &points[lane.i];
        let op_fb = lane.op_fb.as_ref().expect("solved in stage 1");
        lane.vout_fb = op_fb.voltage(lane.fb.out);
        let i_vdd = match op_fb.branch_current(&lane.fb.vdd_src) {
            Ok(v) => v,
            Err(e) => {
                results[lane.i] = Some(Err(e.into()));
                continue;
            }
        };
        lane.power = theta.vdd * i_vdd.abs();
        lane.slew = match slew_rate(&lane.fb, op_fb, sr_method, counter) {
            Ok(s) => s,
            Err(e) => {
                results[lane.i] = Some(Err(e));
                continue;
            }
        };
        let ol = match builder.build(d, s_hat, theta, false, lane.vout_fb) {
            Ok(o) => o,
            Err(e) => {
                results[lane.i] = Some(Err(e));
                continue;
            }
        };
        lane.vinn = match ol.vinn_src.clone() {
            Some(v) => v,
            None => {
                results[lane.i] = Some(Err(CktError::Extraction {
                    performance: "open-loop analysis",
                    reason: "builder did not provide an inverting input source",
                }));
                continue;
            }
        };
        let key = WarmKey::new(
            identity,
            WarmConfig::OpenLoop,
            d,
            s_hat,
            theta,
            &[lane.vout_fb],
        );
        match lane_start(&ol.circuit, key, warm) {
            LaneStart::Solved(op) => {
                counter.add(1);
                lane.op_ol = Some(op);
                lane.key = None;
                lane.seed = None;
            }
            LaneStart::Solve { key, seed } => {
                lane.key = Some(key);
                lane.seed = seed;
            }
            LaneStart::Failed(e) => {
                results[lane.i] = Some(Err(e));
                continue;
            }
        }
        lane.ol = Some(ol);
    }
    lanes.retain(|l| results[l.i].is_none());

    // Lockstep-solve the open-loop lanes.
    let pend: Vec<usize> = lanes
        .iter()
        .enumerate()
        .filter(|(_, l)| l.op_ol.is_none())
        .map(|(j, _)| j)
        .collect();
    if !pend.is_empty() {
        let batch: Vec<(&Circuit, Option<DVec>)> = pend
            .iter()
            .map(|&j| {
                (
                    &lanes[j].ol.as_ref().expect("built in stage 2").circuit,
                    lanes[j].seed.clone(),
                )
            })
            .collect();
        let sols = batcher.solve_lockstep(&batch);
        drop(batch);
        for (&j, sol) in pend.iter().zip(sols) {
            match sol {
                Ok(op) => {
                    let key = lanes[j].key.take().expect("pending lane keeps its key");
                    warm.record(key, op.unknowns());
                    counter.add(1);
                    lanes[j].op_ol = Some(op);
                }
                Err(e) => results[lanes[j].i] = Some(Err(e.into())),
            }
        }
        lanes.retain(|l| l.op_ol.is_some());
    }

    // Stage 3: the AC stage per sample (shared solver across stimuli).
    for lane in lanes {
        let ol = lane.ol.expect("built in stage 2");
        let op_ol = lane.op_ol.expect("solved");
        let acs = match ac_stage(&ol, &lane.vinn, &op_ol, counter) {
            Ok(a) => a,
            Err(e) => {
                results[lane.i] = Some(Err(e));
                continue;
            }
        };
        results[lane.i] = Some(Ok(Measured {
            metrics: OpampMetrics {
                a0_db: acs.a0_db,
                ft_hz: acs.ft_hz,
                phase_margin_deg: acs.phase_margin_deg,
                cmrr_db: acs.cmrr_db,
                slew_v_per_s: lane.slew,
                power_w: lane.power,
                psrr_db: acs.psrr_db,
            },
            fb_circuit: lane.fb.circuit,
            op_fb: lane.op_fb.expect("solved in stage 1"),
        }));
    }

    results
        .into_iter()
        .map(|r| r.expect("every sample resolved"))
        .collect()
}

/// Builds the functional-constraint vector from the feedback operating
/// point: for every MOSFET, `vsat_margin − vsat_min`, `vov − vov_min` and
/// `vov_max − vov` (paper Sec. 5.1: "all transistors must be in saturation"
/// plus the lower/upper overdrive sizing rules of the feasibility-region
/// literature — the upper bound is what keeps every device in a healthy
/// gm/I_D regime, making performances weakly nonlinear inside the region,
/// cf. the paper's Fig. 4 argument).
pub(crate) fn saturation_constraints(
    op: &DcSolution,
    vsat_min: f64,
    vov_min: f64,
    vov_max: f64,
) -> DVec {
    let mut c = Vec::with_capacity(3 * op.mosfet_ops().len());
    for m in op.mosfet_ops() {
        c.push(m.vsat_margin - vsat_min);
        c.push(m.vov - vov_min);
        c.push(vov_max - m.vov);
    }
    DVec::from(c)
}

/// Helper used by topologies: pretty errors for simulation failures during
/// constraint evaluation. The solve is warm-started from the cache under the
/// constraint-configuration key derived from the design vector and θ.
pub(crate) fn dc_solve_counted(
    circuit: &Circuit,
    identity: u64,
    counter: &SimCounter,
    warm: &WarmStartCache,
    d: &DVec,
    theta: &OperatingPoint,
) -> Result<DcSolution, CktError> {
    let key = WarmKey::new(
        identity,
        WarmConfig::Constraint,
        d,
        &DVec::zeros(0),
        theta,
        &[],
    );
    let op = warm.solve(circuit, key);
    counter.add(1);
    op.map_err(CktError::from)
}
