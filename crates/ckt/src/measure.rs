//! Shared opamp measurement harness — open-loop gain, unity-gain frequency,
//! phase margin, CMRR, slew rate and power from MNA simulations — plus the
//! [`Measure`] vocabulary that maps deck `.spec` lines onto the harness.
//!
//! # Measurement methodology
//!
//! Opamps cannot be simulated open-loop at DC — the operating point is
//! exponentially sensitive to input offset. The harness therefore runs two
//! configurations per evaluation:
//!
//! 1. **Feedback configuration** (unity buffer, output wired to the
//!    inverting gate): yields the true operating point, the power, the
//!    saturation margins for the functional constraints, and the (optional)
//!    large-signal slew-rate transient.
//! 2. **Open-loop configuration**: the inverting input is driven by an
//!    ideal source at exactly the output voltage found in step 1 (gates
//!    draw no DC current, so this reproduces the same operating point),
//!    after which small-signal AC analyses measure the differential and
//!    common-mode transfer functions.
//!
//! Simulation counting: every DC solve, AC analysis (all frequency points of
//! one stimulus configuration) and transient run counts as one simulator
//! call — mirroring how the paper's Table 7 counts TITAN invocations.

use std::sync::Arc;

use specwise_linalg::DVec;
use specwise_mna::{AcSolver, Circuit, DcSolution, NodeId, Stimulus, Transient, TransientOptions};

use crate::warm::{WarmConfig, WarmKey, WarmStartCache};
use crate::{CktError, OperatingPoint, SimCounter};

/// Everything a [`Measure`] can read: the harness metrics plus the feedback
/// configuration's netlist and DC operating point.
#[derive(Debug)]
pub struct MeasureContext<'a> {
    /// The metrics extracted by the measurement harness.
    pub metrics: &'a OpampMetrics,
    /// The feedback-configuration DC operating point.
    pub op: &'a DcSolution,
    /// The feedback-configuration netlist (for node lookups).
    pub circuit: &'a Circuit,
}

/// A user-provided measurement function: the payload of [`Measure::Custom`]
/// and the argument of `Testbench::with_custom_measure`.
pub type MeasureFn = Arc<dyn Fn(&MeasureContext) -> Result<f64, CktError> + Send + Sync>;

/// One named measurement of a deck-driven testbench: what a `.spec` line's
/// `<measure>` token selects.
#[derive(Clone)]
pub enum Measure {
    /// Open-loop DC gain \[dB\] (`dcgain`).
    DcGain,
    /// Unity-gain frequency \[Hz\] (`ugf`).
    UnityGainFreq,
    /// Phase margin \[degrees\] (`pm`).
    PhaseMargin,
    /// Common-mode rejection ratio \[dB\] (`cmrr`).
    Cmrr,
    /// Power-supply rejection ratio \[dB\] (`psrr`).
    Psrr,
    /// Positive slew rate \[V/s\] (`slew`).
    SlewRate,
    /// Total supply power \[W\] (`power`).
    Power,
    /// DC voltage of a node in the feedback configuration
    /// (`vdc(<node>)`).
    DcNodeVoltage(String),
    /// User escape hatch: an arbitrary function of the measurement context,
    /// attached programmatically via `Testbench::with_custom_measure`.
    Custom(MeasureFn),
}

impl std::fmt::Debug for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::DcGain => write!(f, "DcGain"),
            Measure::UnityGainFreq => write!(f, "UnityGainFreq"),
            Measure::PhaseMargin => write!(f, "PhaseMargin"),
            Measure::Cmrr => write!(f, "Cmrr"),
            Measure::Psrr => write!(f, "Psrr"),
            Measure::SlewRate => write!(f, "SlewRate"),
            Measure::Power => write!(f, "Power"),
            Measure::DcNodeVoltage(node) => write!(f, "DcNodeVoltage({node:?})"),
            Measure::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Measure {
    /// Parses a `.spec` measure token (`dcgain`, `ugf`, `pm`, `cmrr`,
    /// `psrr`, `slew`, `power`, `vdc(<node>)`); `None` for unknown tokens.
    pub fn parse(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "dcgain" => Some(Measure::DcGain),
            "ugf" => Some(Measure::UnityGainFreq),
            "pm" => Some(Measure::PhaseMargin),
            "cmrr" => Some(Measure::Cmrr),
            "psrr" => Some(Measure::Psrr),
            "slew" => Some(Measure::SlewRate),
            "power" => Some(Measure::Power),
            lower => {
                // `vdc(<node>)` keeps the node name's original case.
                let inner = lower.strip_prefix("vdc(")?.strip_suffix(')')?;
                if inner.is_empty() {
                    return None;
                }
                let node = &token[4..4 + inner.len()];
                Some(Measure::DcNodeVoltage(node.to_string()))
            }
        }
    }

    /// Evaluates the measurement in SI units.
    ///
    /// # Errors
    ///
    /// Returns a [`CktError`] when a referenced node does not exist or a
    /// custom closure fails.
    pub fn eval(&self, ctx: &MeasureContext) -> Result<f64, CktError> {
        match self {
            Measure::DcGain => Ok(ctx.metrics.a0_db),
            Measure::UnityGainFreq => Ok(ctx.metrics.ft_hz),
            Measure::PhaseMargin => Ok(ctx.metrics.phase_margin_deg),
            Measure::Cmrr => Ok(ctx.metrics.cmrr_db),
            Measure::Psrr => Ok(ctx.metrics.psrr_db),
            Measure::SlewRate => Ok(ctx.metrics.slew_v_per_s),
            Measure::Power => Ok(ctx.metrics.power_w),
            Measure::DcNodeVoltage(node) => {
                let id = ctx.circuit.find_node(node).map_err(CktError::from)?;
                Ok(ctx.op.voltage(id))
            }
            Measure::Custom(f) => f(ctx),
        }
    }
}

/// How the slew rate is extracted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlewRateMethod {
    /// `SR = I_tail / C_slew` from the DC operating point — the textbook
    /// large-signal limit; fast enough for the optimizer's inner loop.
    Analytic,
    /// Large-signal step transient on the unity-feedback configuration;
    /// reads the maximum output `|dv/dt|`.
    Transient {
        /// Time step \[s\].
        dt: f64,
        /// Stop time \[s\].
        t_stop: f64,
        /// Input step amplitude around the common mode \[V\].
        step: f64,
    },
}

/// The measured performance set of an opamp evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampMetrics {
    /// Open-loop DC gain \[dB\].
    pub a0_db: f64,
    /// Unity-gain (transit) frequency \[Hz\].
    pub ft_hz: f64,
    /// Phase margin \[degrees\].
    pub phase_margin_deg: f64,
    /// Common-mode rejection ratio \[dB\].
    pub cmrr_db: f64,
    /// Positive slew rate \[V/s\].
    pub slew_v_per_s: f64,
    /// Total supply power \[W\].
    pub power_w: f64,
    /// Power-supply rejection ratio (DC, positive supply) \[dB\].
    pub psrr_db: f64,
}

/// A fully built opamp netlist plus the handles the harness needs.
#[derive(Debug)]
pub(crate) struct BuiltOpamp {
    /// The netlist (temperature already set from θ).
    pub circuit: Circuit,
    /// Name of the non-inverting input voltage source.
    pub vinp_src: String,
    /// Name of the inverting input voltage source (absent in feedback
    /// configuration, where the gate is wired to the output node).
    pub vinn_src: Option<String>,
    /// Output node.
    pub out: NodeId,
    /// Name of the supply voltage source.
    pub vdd_src: String,
    /// Input common-mode voltage \[V\].
    pub vcm: f64,
    /// Capacitance that limits slewing \[F\].
    pub slew_cap: f64,
    /// Name of the tail-current device (its |I_D| limits slewing).
    pub tail_device: String,
}

/// Netlist factory implemented by each opamp topology.
pub(crate) trait OpampBuilder {
    /// Builds the netlist at `(d, ŝ, θ)`.
    ///
    /// With `feedback == true` the output node is wired to the inverting
    /// gate (unity buffer) and `vinn_dc` is ignored; otherwise the inverting
    /// input is driven by an ideal source at `vinn_dc`.
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError>;
}

/// Value returned when the gain never reaches unity (degenerate design):
/// pessimistic but finite, so the optimizer sees a very bad margin rather
/// than an error.
const DEGENERATE_FT_HZ: f64 = 1.0;

/// The harness output: metrics plus the feedback configuration's netlist
/// and operating point (what node-level measures read).
#[derive(Debug)]
pub(crate) struct Measured {
    /// The extracted metrics.
    pub metrics: OpampMetrics,
    /// The feedback-configuration netlist.
    pub fb_circuit: Circuit,
    /// The feedback-configuration DC operating point.
    pub op_fb: DcSolution,
}

/// Runs the full measurement flow. `identity` namespaces the warm-start
/// cache entries per environment/netlist.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure(
    builder: &dyn OpampBuilder,
    identity: u64,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    sr_method: SlewRateMethod,
    counter: &SimCounter,
    warm: &WarmStartCache,
) -> Result<Measured, CktError> {
    // 1. Feedback configuration: operating point, power, slew.
    let fb = builder.build(d, s_hat, theta, true, 0.0)?;
    let op_fb = warm
        .solve(
            &fb.circuit,
            WarmKey::new(identity, WarmConfig::Feedback, d, s_hat, theta, &[]),
        )
        .map_err(CktError::from)?;
    counter.add(1);
    let vout_fb = op_fb.voltage(fb.out);
    let i_vdd = op_fb.branch_current(&fb.vdd_src).map_err(CktError::from)?;
    let power_w = theta.vdd * i_vdd.abs();

    let slew_v_per_s = match sr_method {
        SlewRateMethod::Analytic => {
            let tail = op_fb
                .mosfet_op(&fb.tail_device)
                .ok_or(CktError::Extraction {
                    performance: "slew rate",
                    reason: "tail device not found",
                })?;
            tail.id.abs() / fb.slew_cap
        }
        SlewRateMethod::Transient { dt, t_stop, step } => {
            let mut tr_ckt = fb.circuit.clone();
            tr_ckt
                .set_stimulus(
                    &fb.vinp_src,
                    Stimulus::Step {
                        v0: fb.vcm,
                        v1: fb.vcm + step,
                        t0: 4.0 * dt,
                        t_rise: dt,
                    },
                )
                .map_err(CktError::from)?;
            let result = Transient::new(&tr_ckt, TransientOptions::new(dt, t_stop))
                .run()
                .map_err(CktError::from)?;
            counter.add(1);
            result.max_slope(fb.out)
        }
    };

    // 2. Open-loop configuration biased by the feedback result.
    let ol = builder.build(d, s_hat, theta, false, vout_fb)?;
    let vinn = ol.vinn_src.clone().ok_or(CktError::Extraction {
        performance: "open-loop analysis",
        reason: "builder did not provide an inverting input source",
    })?;
    let op_ol = warm
        .solve(
            &ol.circuit,
            WarmKey::new(identity, WarmConfig::OpenLoop, d, s_hat, theta, &[vout_fb]),
        )
        .map_err(CktError::from)?;
    counter.add(1);

    // Differential drive: +1/2 on vinp, −1/2 on vinn.
    let mut ckt_dm = ol.circuit.clone();
    ckt_dm.clear_ac();
    ckt_dm.set_ac(&ol.vinp_src, 0.5).map_err(CktError::from)?;
    ckt_dm.set_ac(&vinn, -0.5).map_err(CktError::from)?;
    let ac_dm = AcSolver::new(&ckt_dm, &op_ol);
    let h0 = ac_dm.solve(0.0).map_err(CktError::from)?.voltage(ol.out);
    counter.add(1);
    let adm0 = h0.abs();
    let a0_db = 20.0 * adm0.max(1e-30).log10();

    // Unity-gain frequency and phase margin.
    let (ft_hz, phase_margin_deg) = match ac_dm
        .find_crossing(ol.out, 1.0, 1.0, 20e9)
        .map_err(CktError::from)?
    {
        Some(ft) => {
            let at_ft = ac_dm.solve(ft).map_err(CktError::from)?.voltage(ol.out);
            // Phase margin relative to the stage's own low-frequency phase:
            // the excess phase lag accumulated up to ft determines stability
            // in unity feedback.
            let phase_lag = (h0.arg() - at_ft.arg()).rem_euclid(2.0 * std::f64::consts::PI);
            (ft, 180.0 - phase_lag.to_degrees())
        }
        None => (DEGENERATE_FT_HZ, 0.0),
    };
    counter.add(1);

    // Common-mode drive: +1 on both inputs.
    let mut ckt_cm = ol.circuit.clone();
    ckt_cm.clear_ac();
    ckt_cm.set_ac(&ol.vinp_src, 1.0).map_err(CktError::from)?;
    ckt_cm.set_ac(&vinn, 1.0).map_err(CktError::from)?;
    let ac_cm = AcSolver::new(&ckt_cm, &op_ol);
    let acm0 = ac_cm
        .solve(0.0)
        .map_err(CktError::from)?
        .voltage(ol.out)
        .abs();
    counter.add(1);
    let cmrr_db = if acm0 <= 0.0 {
        200.0
    } else {
        (20.0 * (adm0 / acm0).log10()).min(200.0)
    };

    // Supply drive: +1 on VDD, inputs quiet — PSRR = Adm/Apsr.
    let mut ckt_ps = ol.circuit.clone();
    ckt_ps.clear_ac();
    ckt_ps.set_ac(&ol.vdd_src, 1.0).map_err(CktError::from)?;
    let ac_ps = AcSolver::new(&ckt_ps, &op_ol);
    let apsr0 = ac_ps
        .solve(0.0)
        .map_err(CktError::from)?
        .voltage(ol.out)
        .abs();
    counter.add(1);
    let psrr_db = if apsr0 <= 0.0 {
        200.0
    } else {
        (20.0 * (adm0 / apsr0).log10()).min(200.0)
    };

    Ok(Measured {
        metrics: OpampMetrics {
            a0_db,
            ft_hz,
            phase_margin_deg,
            cmrr_db,
            slew_v_per_s,
            power_w,
            psrr_db,
        },
        fb_circuit: fb.circuit,
        op_fb,
    })
}

/// Builds the functional-constraint vector from the feedback operating
/// point: for every MOSFET, `vsat_margin − vsat_min`, `vov − vov_min` and
/// `vov_max − vov` (paper Sec. 5.1: "all transistors must be in saturation"
/// plus the lower/upper overdrive sizing rules of the feasibility-region
/// literature — the upper bound is what keeps every device in a healthy
/// gm/I_D regime, making performances weakly nonlinear inside the region,
/// cf. the paper's Fig. 4 argument).
pub(crate) fn saturation_constraints(
    op: &DcSolution,
    vsat_min: f64,
    vov_min: f64,
    vov_max: f64,
) -> DVec {
    let mut c = Vec::with_capacity(3 * op.mosfet_ops().len());
    for m in op.mosfet_ops() {
        c.push(m.vsat_margin - vsat_min);
        c.push(m.vov - vov_min);
        c.push(vov_max - m.vov);
    }
    DVec::from(c)
}

/// Helper used by topologies: pretty errors for simulation failures during
/// constraint evaluation. The solve is warm-started from the cache under the
/// constraint-configuration key derived from the design vector and θ.
pub(crate) fn dc_solve_counted(
    circuit: &Circuit,
    identity: u64,
    counter: &SimCounter,
    warm: &WarmStartCache,
    d: &DVec,
    theta: &OperatingPoint,
) -> Result<DcSolution, CktError> {
    let key = WarmKey::new(
        identity,
        WarmConfig::Constraint,
        d,
        &DVec::zeros(0),
        theta,
        &[],
    );
    let op = warm.solve(circuit, key);
    counter.add(1);
    op.map_err(CktError::from)
}
