use std::error::Error;
use std::fmt;

use specwise_mna::MnaError;

/// Errors produced by circuit environments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CktError {
    /// The underlying circuit simulation failed.
    Simulation(MnaError),
    /// A vector has the wrong length for this environment.
    DimensionMismatch {
        /// What the vector represents ("design", "stat", …).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// A design vector leaves the box bounds of the design space.
    OutOfBounds {
        /// Index of the offending parameter.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// A performance could not be extracted (e.g. no unity-gain crossing).
    Extraction {
        /// Which performance failed.
        performance: &'static str,
        /// Why.
        reason: &'static str,
    },
    /// An invalid configuration value.
    InvalidConfig {
        /// Description of the problem.
        reason: &'static str,
    },
    /// An annotated deck failed to parse or compile into a testbench.
    Deck {
        /// 1-based deck line the problem originates from (0 when the
        /// problem is not tied to a single line).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CktError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CktError::DimensionMismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} vector has length {found}, expected {expected}")
            }
            CktError::OutOfBounds { index, value } => {
                write!(f, "design parameter {index} = {value} outside bounds")
            }
            CktError::Extraction {
                performance,
                reason,
            } => {
                write!(f, "could not extract {performance}: {reason}")
            }
            CktError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CktError::Deck { line, reason } => {
                if *line == 0 {
                    write!(f, "deck error: {reason}")
                } else {
                    write!(f, "deck line {line}: {reason}")
                }
            }
        }
    }
}

impl Error for CktError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CktError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for CktError {
    fn from(e: MnaError) -> Self {
        CktError::Simulation(e)
    }
}
