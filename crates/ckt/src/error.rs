use std::error::Error;
use std::fmt;

use specwise_mna::MnaError;

/// Errors produced by circuit environments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CktError {
    /// The underlying circuit simulation failed.
    Simulation(MnaError),
    /// A vector has the wrong length for this environment.
    DimensionMismatch {
        /// What the vector represents ("design", "stat", …).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// A design vector leaves the box bounds of the design space.
    OutOfBounds {
        /// Index of the offending parameter.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// A performance could not be extracted (e.g. no unity-gain crossing).
    Extraction {
        /// Which performance failed.
        performance: &'static str,
        /// Why.
        reason: &'static str,
    },
    /// An invalid configuration value.
    InvalidConfig {
        /// Description of the problem.
        reason: &'static str,
    },
    /// An annotated deck failed to parse or compile into a testbench.
    Deck {
        /// 1-based deck line the problem originates from (0 when the
        /// problem is not tied to a single line).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A worker panicked while evaluating a point. Evaluation engines
    /// isolate panics with `catch_unwind`, so a poisoned sample degrades to
    /// this error instead of killing the process. Treated like a failed
    /// simulation by retry and degradation policies.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An error annotated with where it happened: the evaluation phase,
    /// spec under analysis, and a short summary of the offending
    /// `(d, ŝ, θ)` point. Produced at layer boundaries (e.g. an
    /// `EvalService` whose retries are exhausted) so a failed run names the
    /// point instead of surfacing a bare [`CktError::Simulation`].
    Context {
        /// Human-readable location/point description.
        context: String,
        /// The underlying error.
        source: Box<CktError>,
    },
}

impl CktError {
    /// Wraps this error with a location annotation (see
    /// [`CktError::Context`]). Chains nest: the innermost context is the
    /// most specific.
    #[must_use]
    pub fn with_context(self, context: impl Into<String>) -> CktError {
        CktError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The error underneath any [`CktError::Context`] annotations.
    pub fn root(&self) -> &CktError {
        match self {
            CktError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// `true` for failures of the simulation itself — a non-converged or
    /// singular solve ([`CktError::Simulation`]) or an isolated worker
    /// panic ([`CktError::WorkerPanic`]) — looking through any
    /// [`CktError::Context`] annotations. These are the errors retry and
    /// degradation policies may absorb; configuration and dimension errors
    /// must propagate.
    pub fn is_simulation_failure(&self) -> bool {
        matches!(
            self.root(),
            CktError::Simulation(_) | CktError::WorkerPanic { .. }
        )
    }
}

impl fmt::Display for CktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CktError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CktError::DimensionMismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} vector has length {found}, expected {expected}")
            }
            CktError::OutOfBounds { index, value } => {
                write!(f, "design parameter {index} = {value} outside bounds")
            }
            CktError::Extraction {
                performance,
                reason,
            } => {
                write!(f, "could not extract {performance}: {reason}")
            }
            CktError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CktError::Deck { line, reason } => {
                if *line == 0 {
                    write!(f, "deck error: {reason}")
                } else {
                    write!(f, "deck line {line}: {reason}")
                }
            }
            CktError::WorkerPanic { message } => {
                write!(f, "worker panicked during evaluation: {message}")
            }
            CktError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl Error for CktError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CktError::Simulation(e) => Some(e),
            CktError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<MnaError> for CktError {
    fn from(e: MnaError) -> Self {
        CktError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_error() -> CktError {
        CktError::Simulation(MnaError::NoConvergence {
            analysis: "dc",
            iterations: 50,
            residual: 1.0,
        })
    }

    #[test]
    fn context_wrapping_preserves_simulation_classification() {
        let err = sim_error()
            .with_context("wcd search, spec 'gain'")
            .with_context("d=[1, 2] ŝ=[0] θ=nominal");
        assert!(err.is_simulation_failure());
        assert_eq!(err.root(), &sim_error());
        let msg = err.to_string();
        assert!(msg.contains("wcd search, spec 'gain'"), "{msg}");
        assert!(msg.contains("simulation failed"), "{msg}");
    }

    #[test]
    fn worker_panic_counts_as_simulation_failure() {
        let err = CktError::WorkerPanic {
            message: "index out of bounds".into(),
        };
        assert!(err.is_simulation_failure());
        assert!(err.to_string().contains("worker panicked"));
    }

    #[test]
    fn non_simulation_errors_stay_fatal_through_context() {
        let err = CktError::InvalidConfig {
            reason: "bad option",
        }
        .with_context("optimizer setup");
        assert!(!err.is_simulation_failure());
    }
}
