//! Circuit library for the `specwise` yield-optimization workspace:
//! a synthetic (but order-realistic) CMOS technology card, statistical
//! parameter spaces with Pelgrom-style local variations, operating ranges,
//! performance extraction, and the two benchmark circuits of the DAC 2001
//! paper — the folded-cascode opamp (Fig. 7) and the Miller opamp (Fig. 8).
//!
//! The central abstraction is [`CircuitEnv`]: the interface consumed by the
//! worst-case analysis (`specwise-wcd`) and the yield optimizer
//! (`specwise`). It evaluates performances `f(d, ŝ, θ)` where
//!
//! * `d` — design parameters (widths/lengths in µm, currents in µA, …),
//! * `ŝ` — *standardized* statistical parameters `~ N(0, I)`; the
//!   design-dependent covariance `C(d)` of paper Eq. 10 is applied inside
//!   the environment (Eq. 14: `f̂(d, ŝ, θ) = f(d, s(ŝ), θ)`),
//! * `θ` — operating conditions (temperature, supply voltage).
//!
//! # Example
//!
//! ```
//! use specwise_ckt::{CircuitEnv, FoldedCascode};
//! use specwise_linalg::DVec;
//!
//! # fn main() -> Result<(), specwise_ckt::CktError> {
//! let env = FoldedCascode::paper_setup();
//! let d0 = env.design_space().initial();
//! let s0 = DVec::zeros(env.stat_dim());
//! let theta = env.operating_range().nominal();
//! let perf = env.eval_performances(&d0, &s0, &theta)?;
//! assert_eq!(perf.len(), env.specs().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod design;
mod env;
pub mod env_knob;
mod error;
mod folded;
mod measure;
mod miller;
mod operating;
mod ota;
mod spec;
mod stats;
mod tech;
mod testbench;
mod warm;

pub use analytic::{AnalyticEnv, AnalyticEnvBuilder};
pub use design::{DesignParam, DesignSpace};
pub use env::{CircuitEnv, SimCounter, SimPhase};
pub use error::CktError;
pub use folded::FoldedCascode;
pub use measure::{Measure, MeasureContext, MeasureFn, OpampMetrics, SlewRateMethod};
pub use miller::MillerOpamp;
pub use operating::{OperatingPoint, OperatingRange};
pub use ota::FiveTransistorOta;
pub use spec::{Spec, SpecKind};
pub use specwise_mna::DeckLimits;
pub use stats::{StatKind, StatParam, StatSpace};
pub use tech::Technology;
pub use testbench::{DesignBinding, DesignMap, DesignTarget, StatMap, Testbench};
pub use warm::WarmStartCache;
