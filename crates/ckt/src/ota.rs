//! A five-transistor OTA — the minimal reference implementation of a
//! [`CircuitEnv`], intended as the template for plugging your own circuit
//! into the yield-optimization flow.
//!
//! Topology (NMOS input pair, PMOS mirror load, single-ended output):
//!
//! ```text
//!  VDD ──────┬──────────────┐
//!           M3 (diode) ──── M4
//!            │x1             │
//!  inp ─g M1─┘     out ──────┴──┬── CL
//!  inn ─g M2───────out          │
//!        tail ── MT ── gnd     gnd
//!  bias: IB1 → MB1 (diode) → gate of MT
//! ```
//!
//! Compared to the paper's two benchmark circuits this one is deliberately
//! small: six devices, six design parameters, and relaxed specifications —
//! it optimizes in well under a second and is used by the quick-start
//! documentation and smoke tests.

use specwise_linalg::DVec;
use specwise_mna::{Circuit, MosPolarity, MosfetParams};

use crate::extract::{dc_solve_counted, measure, saturation_constraints, BuiltOpamp, OpampBuilder};
use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignParam, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SimCounter, SlewRateMethod, Spec, SpecKind, StatSpace, Technology,
};

/// Device list in netlist order (name, polarity).
const DEVICES: [(&str, MosPolarity); 6] = [
    ("m1", MosPolarity::Nmos),
    ("m2", MosPolarity::Nmos),
    ("m3", MosPolarity::Pmos),
    ("m4", MosPolarity::Pmos),
    ("mt", MosPolarity::Nmos),
    ("mb1", MosPolarity::Nmos),
];

/// Load capacitance \[F\].
const CL: f64 = 2.0e-12;
/// Bias diode geometry \[m\].
const MB1_W: f64 = 10e-6;
const MB1_L: f64 = 2e-6;
/// Tail device channel length \[m\].
const TAIL_L: f64 = 2e-6;

/// The five-transistor OTA environment.
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, FiveTransistorOta};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = FiveTransistorOta::default_setup();
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(env.stat_dim()),
///     &env.operating_range().nominal(),
/// )?;
/// assert_eq!(perf.len(), env.specs().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FiveTransistorOta {
    tech: Technology,
    design: DesignSpace,
    stats: StatSpace,
    specs: Vec<Spec>,
    range: OperatingRange,
    sr_method: SlewRateMethod,
    counter: SimCounter,
    warm: WarmStartCache,
}

impl FiveTransistorOta {
    /// A modest default setup: every spec passes at the nominal point with
    /// a small margin, so the optimizer has work to do on the tails.
    pub fn default_setup() -> Self {
        let design = DesignSpace::new(vec![
            DesignParam::new("w1", "um", 2.0, 200.0, 6.0),
            DesignParam::new("l1", "um", 0.6, 10.0, 1.0),
            DesignParam::new("w3", "um", 2.0, 200.0, 12.0),
            DesignParam::new("l3", "um", 0.6, 10.0, 2.0),
            DesignParam::new("wt", "um", 2.0, 200.0, 20.0),
            DesignParam::new("ib", "uA", 1.0, 100.0, 5.0),
        ]);
        let stats = StatSpace::build(&DEVICES, true);
        let specs = vec![
            Spec::new("A0", "dB", SpecKind::LowerBound, 30.0),
            Spec::new("ft", "MHz", SpecKind::LowerBound, 4.0),
            Spec::new("CMRR", "dB", SpecKind::LowerBound, 55.0),
            Spec::new("SRp", "V/us", SpecKind::LowerBound, 4.0),
            Spec::new("Power", "mW", SpecKind::UpperBound, 0.5),
        ];
        FiveTransistorOta {
            tech: Technology::c06(),
            design,
            stats,
            specs,
            range: OperatingRange::new(-40.0, 125.0, 3.0, 3.6),
            sr_method: SlewRateMethod::Analytic,
            counter: SimCounter::new(),
            warm: WarmStartCache::from_env(),
        }
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.sr_method = method;
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm = if enabled {
            WarmStartCache::always_enabled()
        } else {
            WarmStartCache::disabled()
        };
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        &self.warm
    }

    /// Full metric set at one evaluation point.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.check_dims(d, s_hat)?;
        let (m, _) = measure(
            self,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
        )?;
        Ok(m)
    }

    fn check_dims(&self, d: &DVec, s_hat: &DVec) -> Result<(), CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        if s_hat.len() != self.stats.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.stats.dim(),
                found: s_hat.len(),
            });
        }
        Ok(())
    }

    fn geometry(&self, d: &DVec, device: &str) -> (f64, f64) {
        let um = 1e-6;
        match device {
            "m1" | "m2" => (d[0] * um, d[1] * um),
            "m3" | "m4" => (d[2] * um, d[3] * um),
            "mt" => (d[4] * um, TAIL_L),
            "mb1" => (MB1_W, MB1_L),
            other => unreachable!("unknown device {other}"),
        }
    }

    fn device_params(
        &self,
        d: &DVec,
        s_hat: &DVec,
        device: &str,
        polarity: MosPolarity,
    ) -> Result<MosfetParams, CktError> {
        let (w, l) = self.geometry(d, device);
        let (delta_vth, beta_factor) = self
            .stats
            .device_deltas(&self.tech, device, polarity, w, l, s_hat)?;
        let mut p = MosfetParams::new(*self.tech.model(polarity), w, l);
        p.delta_vth = delta_vth;
        p.beta_factor = beta_factor;
        Ok(p)
    }
}

impl OpampBuilder for FiveTransistorOta {
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError> {
        let mut ckt = Circuit::new();
        ckt.set_temperature(theta.temp_k());
        let gnd = Circuit::GROUND;
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        let x1 = ckt.node("x1");
        let tail = ckt.node("tail");
        let vbn = ckt.node("vbn");
        let inn = if feedback { out } else { ckt.node("inn") };

        let vcm = theta.vdd / 2.0;
        let ib = d[5] * 1e-6;

        ckt.voltage_source("VDD", vdd, gnd, theta.vdd)?;
        ckt.voltage_source("VINP", inp, gnd, vcm)?;
        let vinn_src = if feedback {
            None
        } else {
            ckt.voltage_source("VINN", inn, gnd, vinn_dc)?;
            Some("VINN".to_string())
        };
        ckt.current_source("IB1", vdd, vbn, ib)?;

        let p = |dev: &str, pol| self.device_params(d, s_hat, dev, pol);
        // M1 (the non-inverting gate) drives the diode side of the mirror.
        ckt.mosfet("m1", x1, inp, tail, gnd, p("m1", MosPolarity::Nmos)?)?;
        ckt.mosfet("m2", out, inn, tail, gnd, p("m2", MosPolarity::Nmos)?)?;
        ckt.mosfet("m3", x1, x1, vdd, vdd, p("m3", MosPolarity::Pmos)?)?;
        ckt.mosfet("m4", out, x1, vdd, vdd, p("m4", MosPolarity::Pmos)?)?;
        ckt.mosfet("mt", tail, vbn, gnd, gnd, p("mt", MosPolarity::Nmos)?)?;
        ckt.mosfet("mb1", vbn, vbn, gnd, gnd, p("mb1", MosPolarity::Nmos)?)?;

        let cl = CL * self.stats.cap_factor(&self.tech, s_hat)?;
        ckt.capacitor("CL", out, gnd, cl)?;

        Ok(BuiltOpamp {
            circuit: ckt,
            vinp_src: "VINP".to_string(),
            vinn_src,
            out,
            vdd_src: "VDD".to_string(),
            vcm,
            slew_cap: cl,
            tail_device: "mt".to_string(),
        })
    }
}

impl CircuitEnv for FiveTransistorOta {
    fn name(&self) -> &str {
        "five-transistor OTA"
    }

    fn design_space(&self) -> &DesignSpace {
        &self.design
    }

    fn stat_space(&self) -> &StatSpace {
        &self.stats
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn operating_range(&self) -> &OperatingRange {
        &self.range
    }

    fn constraint_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(3 * DEVICES.len());
        for (dev, _) in DEVICES {
            names.push(format!("vsat_{dev}"));
            names.push(format!("vov_{dev}"));
            names.push(format!("vovmax_{dev}"));
        }
        names
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let m = self.metrics(d, s_hat, theta)?;
        Ok(DVec::from_slice(&[
            m.a0_db,
            m.ft_hz / 1e6,
            m.cmrr_db,
            m.slew_v_per_s / 1e6,
            m.power_w * 1e3,
        ]))
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.check_dims(d, &DVec::zeros(self.stats.dim()))?;
        let theta = self.range.nominal();
        let built = self.build(d, &DVec::zeros(self.stats.dim()), &theta, true, 0.0)?;
        let op = dc_solve_counted(&built.circuit, &self.counter, &self.warm, d, &theta)?;
        Ok(saturation_constraints(&op, 0.05, 0.05, 0.5))
    }

    fn sim_count(&self) -> u64 {
        self.counter.count()
    }

    fn reset_sim_count(&self) {
        self.counter.reset();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.counter.set_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.counter.phase_counts()
    }

    fn warm_commit(&self) {
        self.warm.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> FiveTransistorOta {
        FiveTransistorOta::default_setup()
    }

    #[test]
    fn nominal_design_simulates_sensibly() {
        let e = env();
        let m = e
            .metrics(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(m.a0_db > 30.0 && m.a0_db < 70.0, "A0 = {}", m.a0_db);
        assert!(m.ft_hz > 1e6 && m.ft_hz < 100e6, "ft = {}", m.ft_hz);
        assert!(m.cmrr_db > 40.0, "CMRR = {}", m.cmrr_db);
        assert!(m.power_w < 0.5e-3, "P = {}", m.power_w);
    }

    #[test]
    fn initial_design_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        for (i, name) in e.constraint_names().iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn stat_dimensions() {
        let e = env();
        // 5 globals + 2 locals per device.
        assert_eq!(e.stat_dim(), 5 + 2 * DEVICES.len());
    }

    #[test]
    fn mirror_mismatch_degrades_cmrr() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let base = e
            .metrics(&d0, &DVec::zeros(e.stat_dim()), &theta)
            .unwrap()
            .cmrr_db;
        let mut s = DVec::zeros(e.stat_dim());
        s[e.stat_space().index_of("vth_m3").unwrap()] = 2.5;
        s[e.stat_space().index_of("vth_m4").unwrap()] = -2.5;
        let worse = e.metrics(&d0, &s, &theta).unwrap().cmrr_db;
        assert!(
            worse < base,
            "mirror mismatch must reduce CMRR: {worse} vs {base}"
        );
    }

    #[test]
    fn bigger_input_pair_raises_ft() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let d0 = e.design_space().initial();
        let mut d_big = d0.clone();
        d_big[0] *= 3.0;
        let ft0 = e.metrics(&d0, &s0, &theta).unwrap().ft_hz;
        let ft1 = e.metrics(&d_big, &s0, &theta).unwrap().ft_hz;
        assert!(ft1 > ft0, "wider input pair must raise ft: {ft1} vs {ft0}");
    }
}
