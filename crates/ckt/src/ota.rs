//! A five-transistor OTA — the minimal reference implementation of a
//! [`CircuitEnv`], intended as the template for plugging your own circuit
//! into the yield-optimization flow.
//!
//! Topology (NMOS input pair, PMOS mirror load, single-ended output):
//!
//! ```text
//!  VDD ──────┬──────────────┐
//!           M3 (diode) ──── M4
//!            │x1             │
//!  inp ─g M1─┘     out ──────┴──┬── CL
//!  inn ─g M2───────out          │
//!        tail ── MT ── gnd     gnd
//!  bias: IB1 → MB1 (diode) → gate of MT
//! ```
//!
//! Compared to the paper's two benchmark circuits this one is deliberately
//! small: six devices, six design parameters, and relaxed specifications —
//! it optimizes in well under a second and is used by the quick-start
//! documentation and smoke tests.
//!
//! The environment is a thin wrapper over the deck-driven [`Testbench`];
//! see `examples/custom_circuit.rs` for the same pattern applied to a
//! circuit that has no hand-written Rust at all.

use specwise_linalg::DVec;

use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SlewRateMethod, Spec, StatSpace, Testbench,
};

/// The annotated deck defining the environment.
const DECK: &str = "\
.name five-transistor OTA
.nodes vdd inp out x1 tail vbn
.design w1 um 2.0 200.0 6.0
.design l1 um 0.6 10.0 1.0
.design w3 um 2.0 200.0 12.0
.design l3 um 0.6 10.0 2.0
.design wt um 2.0 200.0 20.0
.design ib uA 1.0 100.0 5.0
.range temp -40.0 125.0
.range vdd 3.0 3.6
.spec A0 dB min 30.0 dcgain
.spec ft MHz min 4.0 ugf
.spec CMRR dB min 55.0 cmrr
.spec SRp V/us min 4.0 slew
.spec Power mW max 0.5 power
.match m1 m2
.match m3 m4
.match mt
.match mb1
.tb vinp VINP
.tb vinn VINN
.tb out out
.tb vdd VDD
.tb tail mt
.tb slewcap CL
VDD vdd 0 {vdd}
VINP inp 0 {vcm}
VINN inn 0 {vcm}
IB1 vdd vbn {ib}
m1 x1 inp tail 0 NMOS W={w1} L={l1}
m2 out inn tail 0 NMOS W={w1} L={l1}
m3 x1 x1 vdd vdd PMOS W={w3} L={l3}
m4 out x1 vdd vdd PMOS W={w3} L={l3}
mt tail vbn 0 0 NMOS W={wt} L=2e-6
mb1 vbn vbn 0 0 NMOS W=10e-6 L=2e-6
CL out 0 2.0e-12
.end
";

/// The five-transistor OTA environment.
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, FiveTransistorOta};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = FiveTransistorOta::default_setup();
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(env.stat_dim()),
///     &env.operating_range().nominal(),
/// )?;
/// assert_eq!(perf.len(), env.specs().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FiveTransistorOta {
    tb: Testbench,
}

impl FiveTransistorOta {
    /// A modest default setup: every spec passes at the nominal point with
    /// a small margin, so the optimizer has work to do on the tails.
    pub fn default_setup() -> Self {
        FiveTransistorOta {
            tb: Testbench::from_deck(DECK).expect("embedded OTA deck is valid"),
        }
    }

    /// The annotated deck this environment is compiled from.
    pub fn deck() -> &'static str {
        DECK
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.tb = self.tb.with_sr_method(method);
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.tb = self.tb.with_warm_start(enabled);
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        self.tb.warm_cache()
    }

    /// Full metric set at one evaluation point.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.tb.metrics(d, s_hat, theta)
    }
}

impl CircuitEnv for FiveTransistorOta {
    fn name(&self) -> &str {
        self.tb.name()
    }

    fn design_space(&self) -> &DesignSpace {
        self.tb.design_space()
    }

    fn stat_space(&self) -> &StatSpace {
        self.tb.stat_space()
    }

    fn specs(&self) -> &[Spec] {
        self.tb.specs()
    }

    fn operating_range(&self) -> &OperatingRange {
        self.tb.operating_range()
    }

    fn constraint_names(&self) -> Vec<String> {
        self.tb.constraint_names()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        self.tb.eval_performances(d, s_hat, theta)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.tb.eval_constraints(d)
    }

    fn sim_count(&self) -> u64 {
        self.tb.sim_count()
    }

    fn reset_sim_count(&self) {
        self.tb.reset_sim_count();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.tb.set_sim_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.tb.sim_phase_counts()
    }

    fn warm_commit(&self) {
        self.tb.warm_commit();
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        self.tb.eval_margins_perturbed(d, s_hat, theta, directions)
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        self.tb.eval_margins_samples(d, points)
    }

    fn adjoint_solve_count(&self) -> u64 {
        self.tb.adjoint_solve_count()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.tb.fd_sims_avoided()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> FiveTransistorOta {
        FiveTransistorOta::default_setup()
    }

    #[test]
    fn nominal_design_simulates_sensibly() {
        let e = env();
        let m = e
            .metrics(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(m.a0_db > 30.0 && m.a0_db < 70.0, "A0 = {}", m.a0_db);
        assert!(m.ft_hz > 1e6 && m.ft_hz < 100e6, "ft = {}", m.ft_hz);
        assert!(m.cmrr_db > 40.0, "CMRR = {}", m.cmrr_db);
        assert!(m.power_w < 0.5e-3, "P = {}", m.power_w);
    }

    #[test]
    fn initial_design_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        for (i, name) in e.constraint_names().iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn stat_dimensions() {
        let e = env();
        // 5 globals + 2 locals per device (six matched devices).
        assert_eq!(e.stat_dim(), 5 + 2 * 6);
    }

    #[test]
    fn mirror_mismatch_degrades_cmrr() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let base = e
            .metrics(&d0, &DVec::zeros(e.stat_dim()), &theta)
            .unwrap()
            .cmrr_db;
        let mut s = DVec::zeros(e.stat_dim());
        s[e.stat_space().index_of("vth_m3").unwrap()] = 2.5;
        s[e.stat_space().index_of("vth_m4").unwrap()] = -2.5;
        let worse = e.metrics(&d0, &s, &theta).unwrap().cmrr_db;
        assert!(
            worse < base,
            "mirror mismatch must reduce CMRR: {worse} vs {base}"
        );
    }

    #[test]
    fn bigger_input_pair_raises_ft() {
        let e = env();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let d0 = e.design_space().initial();
        let mut d_big = d0.clone();
        d_big[0] *= 3.0;
        let ft0 = e.metrics(&d0, &s0, &theta).unwrap().ft_hz;
        let ft1 = e.metrics(&d_big, &s0, &theta).unwrap().ft_hz;
        assert!(ft1 > ft0, "wider input pair must raise ft: {ft1} vs {ft0}");
    }
}
