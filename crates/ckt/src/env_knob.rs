//! Shared warn-and-default parsing of `SPECWISE_*` environment knobs.
//!
//! Every knob in the workspace (`SPECWISE_WORKERS`, `SPECWISE_BATCH`,
//! `SPECWISE_GRAD`, `SPECWISE_ESTIMATOR`, …) follows one contract: an
//! unset variable keeps its default silently; a set-but-malformed value
//! also keeps the default, after a one-line stderr warning naming the
//! variable and the rejected value (a silent fallback here once meant a
//! typo'd `SPECWISE_WORKERS=8x` quietly ran serial).
//!
//! The implementation lives in `specwise-ckt` because it is the lowest
//! crate in the workspace graph that reads a knob (`SPECWISE_BATCH` in the
//! testbench's lockstep sample path); `specwise-exec::config` re-exports
//! it as the canonical public surface for the higher layers.

use std::str::FromStr;

/// Reads and parses one `SPECWISE_*` environment knob.
///
/// Returns `None` when the variable is unset, and also when it is set but
/// malformed — in that case the standard warning line is printed to
/// stderr first. Callers supply the default via `unwrap_or`/`map_or`.
pub fn parse_env_knob<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse_knob_checked(name, &raw) {
        Ok(value) => Some(value),
        Err(warning) => {
            eprintln!("{warning}");
            None
        }
    }
}

/// Parses one `SPECWISE_*` value without touching the process environment;
/// a malformed value yields the warning line [`parse_env_knob`] prints
/// before falling back to the default.
///
/// # Errors
///
/// Returns the warning text when `raw` does not parse as `T`.
pub fn parse_knob_checked<T: FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.trim().parse().map_err(|_| {
        format!("specwise: ignoring malformed {name}={raw:?} (not a valid value); keeping default")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_values_warn_and_name_the_variable() {
        let err = parse_knob_checked::<usize>("SPECWISE_BATCH", "64x").unwrap_err();
        assert!(err.contains("SPECWISE_BATCH"), "{err}");
        assert!(err.contains("64x"), "{err}");
        assert!(err.contains("keeping default"), "{err}");
    }

    #[test]
    fn well_formed_values_parse_with_whitespace() {
        assert_eq!(parse_knob_checked::<usize>("SPECWISE_BATCH", " 8 "), Ok(8));
        assert_eq!(parse_knob_checked::<f64>("X", "1e-9"), Ok(1e-9));
    }

    #[test]
    fn unset_variables_stay_silent() {
        assert_eq!(
            parse_env_knob::<usize>("SPECWISE_KNOB_THAT_IS_NEVER_SET"),
            None
        );
    }
}
