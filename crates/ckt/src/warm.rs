//! Warm-started DC solves across evaluation streams.
//!
//! Every phase of the optimization flow — finite-difference linearization,
//! worst-case search, line search, and MC/IS verification — evaluates the
//! same circuit topology at thousands of *nearby* parameter points. A cold
//! Newton solve from zero spends most of its iterations rediscovering an
//! operating point that barely moved. [`WarmStartCache`] removes that waste:
//!
//! * **exact hit** — the same `(d, ŝ, θ)` signature was solved and committed
//!   before: the stored unknown vector is wrapped via
//!   [`DcOp::solution_from`] with no Newton iterations at all. Because the
//!   operating records are re-derived deterministically from the stored
//!   vector, repeated evaluations stay bit-identical (the determinism the
//!   validation suite asserts).
//! * **near hit** — a committed solution of the same circuit configuration
//!   exists: Newton is seeded from it via [`DcOp::solve_from`] (the base
//!   point for FD perturbations, the previous snapshot for MC streams). On
//!   non-convergence the solve silently falls back to a cold start, so the
//!   result is always convergence-equivalent to the cold path.
//! * **miss** — cold start, exactly as before.
//!
//! # Snapshot semantics (determinism under parallel evaluation)
//!
//! Lookups never see solutions stored since the last [`commit`]: a solve
//! reads only the *committed snapshot*, and new solutions park in a pending
//! set until the next commit publishes them. Batch evaluators commit
//! exactly once per batch (see `Evaluator::eval_*_batch` in
//! `specwise-exec`), so every point of a batch is seeded from the same
//! frozen state no matter how many workers evaluate it or in which order
//! they finish — results and downstream simulation counts are bit-identical
//! at any worker count. Serial per-point streams commit between points and
//! therefore seed each solve from the previous one. When several solutions
//! of one configuration park in the same pending window, the commit keeps
//! the one with the smallest signature (a deterministic, order-independent
//! tie-break).
//!
//! [`commit`]: WarmStartCache::commit
//!
//! The cache is disabled by setting `SPECWISE_WARM_START=0` (or `off` /
//! `false`), in which case every solve is a cold start.

use std::collections::HashMap;
use std::sync::Mutex;

use specwise_linalg::DVec;
use specwise_mna::{Circuit, DcOp, DcSolution, MnaError};

use crate::OperatingPoint;

/// Which circuit configuration a solve belongs to. Configurations have
/// different MNA structures (the open-loop netlist has an extra source),
/// so seeds never cross between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum WarmConfig {
    /// Unity-feedback measurement configuration.
    Feedback,
    /// Open-loop measurement configuration.
    OpenLoop,
    /// Constraint-evaluation configuration (feedback netlist at ŝ = 0).
    Constraint,
}

impl WarmConfig {
    fn index(self) -> usize {
        match self {
            WarmConfig::Feedback => 0,
            WarmConfig::OpenLoop => 1,
            WarmConfig::Constraint => 2,
        }
    }
}

/// Exact evaluation signature: environment/netlist identity, configuration,
/// plus the bit patterns of every input that influences the DC solve.
///
/// The identity component keeps two environments that share one cache (or
/// two `Testbench` instances compiled from different decks) from ever
/// replaying each other's operating points — identical `(d, ŝ, θ)` vectors
/// on different netlists are different keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct WarmKey {
    identity: u64,
    config: WarmConfig,
    bits: Vec<u64>,
}

impl WarmKey {
    /// Builds a key from the evaluation inputs. `identity` distinguishes
    /// environments/netlists; `extra` carries any derived quantities that
    /// also feed the netlist (e.g. the open-loop bias).
    pub(crate) fn new(
        identity: u64,
        config: WarmConfig,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        extra: &[f64],
    ) -> Self {
        let mut bits = Vec::with_capacity(d.len() + s_hat.len() + 2 + extra.len());
        bits.extend(d.iter().map(|v| v.to_bits()));
        bits.extend(s_hat.iter().map(|v| v.to_bits()));
        bits.push(theta.temp_c.to_bits());
        bits.push(theta.vdd.to_bits());
        bits.extend(extra.iter().map(|v| v.to_bits()));
        WarmKey {
            identity,
            config,
            bits,
        }
    }

    fn seed_slot(&self) -> (u64, usize) {
        (self.identity, self.config.index())
    }
}

/// Committed-map capacity; cleared wholesale when full (deterministic, and
/// large enough that a full MC verification round fits).
const EXACT_CAPACITY: usize = 8192;

#[derive(Debug, Default)]
struct WarmState {
    /// Committed signature → converged unknown vector (exact-hit store).
    exact: HashMap<WarmKey, DVec>,
    /// Committed near-hit seeds, one per `(identity, configuration)`.
    seed: HashMap<(u64, usize), DVec>,
    /// Solutions stored since the last commit (invisible to lookups).
    pending_exact: HashMap<WarmKey, DVec>,
    /// Smallest-signature pending solution per `(identity, configuration)`.
    pending_seed: HashMap<(u64, usize), (Vec<u64>, DVec)>,
}

/// Per-environment cache of converged DC operating points with snapshot
/// visibility (see the module docs): lookups read only state published by
/// the last [`commit`](WarmStartCache::commit), so results are independent
/// of evaluation order within a batch.
#[derive(Debug)]
pub struct WarmStartCache {
    enabled: bool,
    state: Mutex<WarmState>,
}

impl Default for WarmStartCache {
    fn default() -> Self {
        Self::from_env()
    }
}

impl WarmStartCache {
    /// Creates a cache, enabled unless `SPECWISE_WARM_START` is set to
    /// `0`, `off`, or `false`.
    pub fn from_env() -> Self {
        let enabled = match std::env::var("SPECWISE_WARM_START") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            ),
            Err(_) => true,
        };
        WarmStartCache {
            enabled,
            state: Mutex::new(WarmState::default()),
        }
    }

    /// Creates a disabled cache (every solve is a cold start).
    pub fn disabled() -> Self {
        WarmStartCache {
            enabled: false,
            state: Mutex::new(WarmState::default()),
        }
    }

    /// Creates an enabled cache regardless of the environment.
    pub fn always_enabled() -> Self {
        WarmStartCache {
            enabled: true,
            state: Mutex::new(WarmState::default()),
        }
    }

    /// Whether warm starting is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of committed operating points.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .exact
            .len()
    }

    /// True when nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored operating point, committed and pending.
    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = WarmState::default();
    }

    /// Publishes every solution stored since the previous commit: pending
    /// exact entries become hit-able and each configuration's seed advances
    /// to the smallest-signature pending solution (deterministic regardless
    /// of the order the solutions arrived in).
    pub fn commit(&self) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.pending_exact.is_empty() && st.pending_seed.is_empty() {
            return;
        }
        if st.exact.len() + st.pending_exact.len() > EXACT_CAPACITY {
            st.exact.clear();
        }
        let pending = std::mem::take(&mut st.pending_exact);
        st.exact.extend(pending);
        let pending_seed = std::mem::take(&mut st.pending_seed);
        for (slot, (_, x)) in pending_seed {
            st.seed.insert(slot, x);
        }
    }

    /// Reads the committed snapshot for `key`: an exact replayable solution,
    /// a near-hit Newton seed of the same configuration, or nothing.
    /// Pending (uncommitted) state is never visible — see the module docs.
    pub(crate) fn lookup(&self, n: usize, key: &WarmKey) -> WarmSeed {
        if !self.enabled {
            return WarmSeed::Cold;
        }
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(x) = st.exact.get(key) {
            if x.len() == n {
                return WarmSeed::Exact(x.clone());
            }
        }
        match st.seed.get(&key.seed_slot()).filter(|x| x.len() == n) {
            Some(x) => WarmSeed::Near(x.clone()),
            None => WarmSeed::Cold,
        }
    }

    /// Parks a converged solution in the pending set for the next
    /// [`commit`](WarmStartCache::commit). The pending near-hit seed keeps
    /// the smallest signature stored this window (order-independent).
    pub(crate) fn record(&self, key: WarmKey, x: &DVec) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let slot = key.seed_slot();
        let replace = match st.pending_seed.get(&slot) {
            Some((bits, _)) => key.bits < *bits,
            None => true,
        };
        if replace {
            st.pending_seed.insert(slot, (key.bits.clone(), x.clone()));
        }
        st.pending_exact.insert(key, x.clone());
    }

    /// Solves the DC operating point of `circuit`, warm-started from the
    /// committed snapshot under `key`; parks the converged result in the
    /// pending set for the next [`commit`](WarmStartCache::commit).
    ///
    /// # Errors
    ///
    /// Propagates the cold-start solver error when all paths fail.
    pub(crate) fn solve(&self, circuit: &Circuit, key: WarmKey) -> Result<DcSolution, MnaError> {
        let op = DcOp::new(circuit);
        if !self.enabled {
            return op.solve();
        }
        let sol = match self.lookup(circuit.num_unknowns(), &key) {
            WarmSeed::Exact(x) => return op.solution_from(x),
            WarmSeed::Near(x0) => op.solve_from(&x0).or_else(|_| op.solve())?,
            WarmSeed::Cold => op.solve()?,
        };
        self.record(key, sol.unknowns());
        Ok(sol)
    }
}

/// Committed-snapshot lookup result (see [`WarmStartCache::lookup`]).
#[derive(Debug, Clone)]
pub(crate) enum WarmSeed {
    /// The exact signature was committed: replay without any Newton work.
    Exact(DVec),
    /// A committed solution of the same configuration seeds Newton.
    Near(DVec),
    /// Nothing usable committed: cold start.
    Cold,
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_mna::Circuit;

    fn divider(v: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let mid = ckt.node("mid");
        ckt.voltage_source("V1", a, Circuit::GROUND, v).unwrap();
        ckt.resistor("R1", a, mid, 2e3).unwrap();
        ckt.resistor("R2", mid, Circuit::GROUND, 1e3).unwrap();
        ckt
    }

    fn key(v: f64) -> WarmKey {
        key_for(0, v)
    }

    fn key_for(identity: u64, v: f64) -> WarmKey {
        WarmKey::new(
            identity,
            WarmConfig::Feedback,
            &DVec::from_slice(&[v]),
            &DVec::zeros(0),
            &OperatingPoint::new(27.0, 3.0),
            &[],
        )
    }

    #[test]
    fn exact_hit_after_commit_skips_newton_and_is_bit_identical() {
        let cache = WarmStartCache::always_enabled();
        let ckt = divider(3.0);
        let first = cache.solve(&ckt, key(3.0)).unwrap();
        assert!(first.iterations() > 0);
        cache.commit();
        let second = cache.solve(&ckt, key(3.0)).unwrap();
        assert_eq!(second.iterations(), 0, "exact hit skips the solve");
        assert_eq!(first.unknowns().as_slice(), second.unknowns().as_slice());
    }

    #[test]
    fn pending_solutions_are_invisible_until_commit() {
        let cache = WarmStartCache::always_enabled();
        let ckt = divider(3.0);
        let first = cache.solve(&ckt, key(3.0)).unwrap();
        // No commit: the same signature must re-solve from cold, giving
        // bit-identical results (order independence within a batch).
        let second = cache.solve(&ckt, key(3.0)).unwrap();
        assert!(second.iterations() > 0, "pending entries are not hits");
        assert_eq!(first.unknowns().as_slice(), second.unknowns().as_slice());
        assert!(cache.is_empty(), "nothing committed yet");
    }

    #[test]
    fn near_hit_seeds_from_committed_snapshot() {
        let cache = WarmStartCache::always_enabled();
        let a = cache.solve(&divider(3.0), key(3.0)).unwrap();
        cache.commit();
        // Different signature, same configuration: seeded from `a`.
        let b = cache.solve(&divider(3.1), key(3.1)).unwrap();
        assert!((b.unknowns()[1] - a.unknowns()[1]).abs() < 0.2);
        cache.commit();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn commit_seed_tiebreak_is_smallest_signature() {
        let cache = WarmStartCache::always_enabled();
        // Two solutions park in the same pending window, stored in
        // descending-signature order; the committed seed must be the
        // smallest signature regardless.
        let hi = cache.solve(&divider(4.0), key(4.0)).unwrap();
        let lo = cache.solve(&divider(2.0), key(2.0)).unwrap();
        assert_ne!(hi.unknowns().as_slice()[1], lo.unknowns().as_slice()[1]);
        cache.commit();
        let st = cache.state.lock().unwrap();
        let seed = st.seed.get(&(0, WarmConfig::Feedback.index())).unwrap();
        assert_eq!(seed.as_slice(), lo.unknowns().as_slice());
    }

    #[test]
    fn identities_do_not_replay_each_others_points() {
        let cache = WarmStartCache::always_enabled();
        let ckt = divider(3.0);
        cache.solve(&ckt, key_for(1, 3.0)).unwrap();
        cache.commit();
        // Same (d, ŝ, θ) signature under a different identity: neither an
        // exact hit (iterations > 0) nor a shared seed slot.
        let other = cache.solve(&ckt, key_for(2, 3.0)).unwrap();
        assert!(other.iterations() > 0, "no cross-identity exact hit");
        cache.commit();
        let st = cache.state.lock().unwrap();
        assert!(st.seed.contains_key(&(1, WarmConfig::Feedback.index())));
        assert!(st.seed.contains_key(&(2, WarmConfig::Feedback.index())));
        assert_eq!(st.exact.len(), 2, "one committed point per identity");
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = WarmStartCache::disabled();
        let ckt = divider(3.0);
        let first = cache.solve(&ckt, key(3.0)).unwrap();
        cache.commit();
        let second = cache.solve(&ckt, key(3.0)).unwrap();
        assert!(second.iterations() > 0, "no exact-hit shortcut");
        assert_eq!(first.unknowns().as_slice(), second.unknowns().as_slice());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets_state() {
        let cache = WarmStartCache::always_enabled();
        cache.solve(&divider(3.0), key(3.0)).unwrap();
        cache.commit();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        let again = cache.solve(&divider(3.0), key(3.0)).unwrap();
        assert!(again.iterations() > 0, "cache was really cleared");
    }
}
