//! Statistical parameter spaces: global process spreads plus per-device
//! local (mismatch) deviations with design-dependent sigma (paper Secs. 3–4).
//!
//! All parameters are expressed in the *standardized* space `ŝ ~ N(0, I)`;
//! the physical deviation of a device is assembled as
//!
//! ```text
//! ΔVth(dev)   = ŝ[global_vth(pol)]·σ_vth_glob(pol) + ŝ[local_vth(dev)]·A_VT/√(W·L)
//! β/β₀(dev)   = 1 + ŝ[global_beta(pol)]·σ_β_glob(pol) + ŝ[local_beta(dev)]·A_β/√(W·L)
//! ```
//!
//! which is exactly the diagonal `s = G(d)·ŝ` transform of paper Eq. 11:
//! the local sigmas depend on the design point through the device areas.

use specwise_linalg::DVec;
use specwise_mna::MosPolarity;

use crate::{CktError, Technology};

/// The physical meaning of one standardized statistical parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StatKind {
    /// Global threshold-voltage deviation shared by all devices of a polarity.
    GlobalVth(MosPolarity),
    /// Global current-factor deviation shared by all devices of a polarity.
    GlobalBeta(MosPolarity),
    /// Global relative capacitance deviation (oxide/poly-cap thickness),
    /// scaling every explicit capacitor in the netlist.
    GlobalCap,
    /// Local (mismatch) threshold deviation of one device.
    LocalVth {
        /// Device instance name.
        device: String,
    },
    /// Local (mismatch) current-factor deviation of one device.
    LocalBeta {
        /// Device instance name.
        device: String,
    },
}

/// One statistical parameter: name plus physical meaning.
#[derive(Debug, Clone, PartialEq)]
pub struct StatParam {
    /// Short name (e.g. `"vth_m1"`).
    pub name: String,
    /// Physical meaning.
    pub kind: StatKind,
}

/// An ordered statistical parameter space.
///
/// # Example
///
/// ```
/// use specwise_ckt::StatSpace;
/// use specwise_mna::MosPolarity;
///
/// let devices = [("m1", MosPolarity::Nmos), ("m2", MosPolarity::Nmos)];
/// let space = StatSpace::build(&devices, true);
/// // 5 globals + 2 locals per device.
/// assert_eq!(space.dim(), 9);
/// assert!(space.index_of("vth_m1").is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StatSpace {
    params: Vec<StatParam>,
}

impl StatSpace {
    /// Builds a space: the five global parameters (Vth and β per polarity,
    /// plus the capacitance spread), plus (`with_locals`) a local Vth and a
    /// local β parameter per listed device.
    pub fn build(devices: &[(&str, MosPolarity)], with_locals: bool) -> Self {
        if with_locals {
            let names: Vec<&str> = devices.iter().map(|(dev, _)| *dev).collect();
            Self::with_locals(&names)
        } else {
            Self::with_locals(&[])
        }
    }

    /// Builds a space from the device names that receive local mismatch
    /// parameters: the five globals, then `vth_<dev>`/`beta_<dev>` per
    /// listed device, in order. This is the constructor the deck-driven
    /// `Testbench` uses with the `.match` group members.
    pub fn with_locals(local_devices: &[&str]) -> Self {
        let mut params = vec![
            StatParam {
                name: "vthn_glob".to_string(),
                kind: StatKind::GlobalVth(MosPolarity::Nmos),
            },
            StatParam {
                name: "vthp_glob".to_string(),
                kind: StatKind::GlobalVth(MosPolarity::Pmos),
            },
            StatParam {
                name: "betan_glob".to_string(),
                kind: StatKind::GlobalBeta(MosPolarity::Nmos),
            },
            StatParam {
                name: "betap_glob".to_string(),
                kind: StatKind::GlobalBeta(MosPolarity::Pmos),
            },
            StatParam {
                name: "cap_glob".to_string(),
                kind: StatKind::GlobalCap,
            },
        ];
        for dev in local_devices {
            params.push(StatParam {
                name: format!("vth_{dev}"),
                kind: StatKind::LocalVth {
                    device: (*dev).to_string(),
                },
            });
            params.push(StatParam {
                name: format!("beta_{dev}"),
                kind: StatKind::LocalBeta {
                    device: (*dev).to_string(),
                },
            });
        }
        StatSpace { params }
    }

    /// Number of statistical parameters.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters in order.
    pub fn params(&self) -> &[StatParam] {
        &self.params
    }

    /// Names in order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Physical sigma of parameter `i` for a device of geometry `(w, l)` \[m\]
    /// (geometry is ignored for global parameters).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sigma(&self, i: usize, tech: &Technology, w: f64, l: f64) -> f64 {
        match &self.params[i].kind {
            StatKind::GlobalVth(pol) => tech.sigma_vth_global(*pol),
            StatKind::GlobalBeta(pol) => tech.sigma_beta_global(*pol),
            StatKind::GlobalCap => tech.sigma_cap_global,
            StatKind::LocalVth { .. } => tech.sigma_vth_local(w, l),
            StatKind::LocalBeta { .. } => tech.sigma_beta_local(w, l),
        }
    }

    /// Assembles the physical deviations of one device from the standardized
    /// vector: returns `(delta_vth \[V\], beta_factor)`.
    ///
    /// `beta_factor` is clamped to `≥ 0.05` so extreme tail samples cannot
    /// produce an unphysical non-positive current factor.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::DimensionMismatch`] when `s_hat` has the wrong
    /// length.
    pub fn device_deltas(
        &self,
        tech: &Technology,
        device: &str,
        polarity: MosPolarity,
        w: f64,
        l: f64,
        s_hat: &DVec,
    ) -> Result<(f64, f64), CktError> {
        if s_hat.len() != self.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.dim(),
                found: s_hat.len(),
            });
        }
        let mut delta_vth = 0.0;
        let mut dbeta = 0.0;
        for (i, p) in self.params.iter().enumerate() {
            match &p.kind {
                StatKind::GlobalVth(pol) if *pol == polarity => {
                    delta_vth += s_hat[i] * tech.sigma_vth_global(*pol);
                }
                StatKind::GlobalBeta(pol) if *pol == polarity => {
                    dbeta += s_hat[i] * tech.sigma_beta_global(*pol);
                }
                StatKind::LocalVth { device: dev } if dev == device => {
                    delta_vth += s_hat[i] * tech.sigma_vth_local(w, l);
                }
                StatKind::LocalBeta { device: dev } if dev == device => {
                    dbeta += s_hat[i] * tech.sigma_beta_local(w, l);
                }
                _ => {}
            }
        }
        Ok((delta_vth, (1.0 + dbeta).max(0.05)))
    }

    /// Global capacitance scale factor `1 + ŝ[cap]·σ_cap`, clamped to
    /// `≥ 0.2` against unphysical tail samples.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::DimensionMismatch`] when `s_hat` has the wrong
    /// length.
    pub fn cap_factor(&self, tech: &Technology, s_hat: &DVec) -> Result<f64, CktError> {
        if s_hat.len() != self.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.dim(),
                found: s_hat.len(),
            });
        }
        let mut f = 1.0;
        for (i, p) in self.params.iter().enumerate() {
            if matches!(p.kind, StatKind::GlobalCap) {
                f += s_hat[i] * tech.sigma_cap_global;
            }
        }
        Ok(f.max(0.2))
    }

    /// Indices of the local-Vth parameters, with their device names — the
    /// candidate mismatch pairs of the Sec. 3 analysis.
    pub fn local_vth_indices(&self) -> Vec<(usize, &str)> {
        self.params
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match &p.kind {
                StatKind::LocalVth { device } => Some((i, device.as_str())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Vec<(&'static str, MosPolarity)> {
        vec![
            ("m1", MosPolarity::Nmos),
            ("m2", MosPolarity::Nmos),
            ("m3", MosPolarity::Pmos),
        ]
    }

    #[test]
    fn dimensions() {
        let devs = devices();
        assert_eq!(StatSpace::build(&devs, true).dim(), 5 + 6);
        assert_eq!(StatSpace::build(&devs, false).dim(), 5);
    }

    #[test]
    fn with_locals_matches_build() {
        let devs = devices();
        let names: Vec<&str> = devs.iter().map(|(d, _)| *d).collect();
        assert_eq!(
            StatSpace::with_locals(&names),
            StatSpace::build(&devs, true)
        );
        assert_eq!(StatSpace::with_locals(&[]), StatSpace::build(&devs, false));
    }

    #[test]
    fn zero_s_hat_is_nominal() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        let (dv, bf) = sp
            .device_deltas(
                &t,
                "m1",
                MosPolarity::Nmos,
                10e-6,
                1e-6,
                &DVec::zeros(sp.dim()),
            )
            .unwrap();
        assert_eq!(dv, 0.0);
        assert_eq!(bf, 1.0);
    }

    #[test]
    fn global_affects_same_polarity_only() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        let mut s = DVec::zeros(sp.dim());
        s[sp.index_of("vthn_glob").unwrap()] = 1.0;
        let (dv_n, _) = sp
            .device_deltas(&t, "m1", MosPolarity::Nmos, 1e-5, 1e-6, &s)
            .unwrap();
        let (dv_p, _) = sp
            .device_deltas(&t, "m3", MosPolarity::Pmos, 1e-5, 1e-6, &s)
            .unwrap();
        assert!((dv_n - t.sigma_vth_global_n).abs() < 1e-15);
        assert_eq!(dv_p, 0.0);
    }

    #[test]
    fn local_scales_with_area() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        let mut s = DVec::zeros(sp.dim());
        s[sp.index_of("vth_m1").unwrap()] = 1.0;
        let (small, _) = sp
            .device_deltas(&t, "m1", MosPolarity::Nmos, 1e-6, 1e-6, &s)
            .unwrap();
        let (large, _) = sp
            .device_deltas(&t, "m1", MosPolarity::Nmos, 4e-6, 1e-6, &s)
            .unwrap();
        assert!(
            (small / large - 2.0).abs() < 1e-12,
            "σ halves when area quadruples"
        );
        // m2's local parameter does not move m1.
        let mut s2 = DVec::zeros(sp.dim());
        s2[sp.index_of("vth_m2").unwrap()] = 1.0;
        let (dv, _) = sp
            .device_deltas(&t, "m1", MosPolarity::Nmos, 1e-6, 1e-6, &s2)
            .unwrap();
        assert_eq!(dv, 0.0);
    }

    #[test]
    fn beta_factor_clamped() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        let mut s = DVec::zeros(sp.dim());
        s[sp.index_of("betan_glob").unwrap()] = -1000.0;
        let (_, bf) = sp
            .device_deltas(&t, "m1", MosPolarity::Nmos, 1e-6, 1e-6, &s)
            .unwrap();
        assert_eq!(bf, 0.05);
    }

    #[test]
    fn wrong_length_rejected() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        assert!(matches!(
            sp.device_deltas(&t, "m1", MosPolarity::Nmos, 1e-6, 1e-6, &DVec::zeros(2)),
            Err(CktError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn local_vth_index_listing() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let idx = sp.local_vth_indices();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0].1, "m1");
        let sp_glob = StatSpace::build(&devs, false);
        assert!(sp_glob.local_vth_indices().is_empty());
    }

    #[test]
    fn sigma_accessor_consistency() {
        let devs = devices();
        let sp = StatSpace::build(&devs, true);
        let t = Technology::c06();
        let i = sp.index_of("vth_m1").unwrap();
        assert!((sp.sigma(i, &t, 1e-6, 1e-6) - t.a_vth * 1e6).abs() < 1e-12);
        let g = sp.index_of("vthn_glob").unwrap();
        assert_eq!(sp.sigma(g, &t, 1e-6, 1e-6), t.sigma_vth_global_n);
    }
}
