//! The declarative testbench IR: a full [`CircuitEnv`] compiled from one
//! annotated SPICE deck.
//!
//! The three hand-coded opamp environments shared one structure — a netlist
//! template, a mapping from design variables to device geometries and
//! element values, Pelgrom mismatch wiring, a spec list, an operating range,
//! and the two-configuration measurement harness. [`Testbench`] captures
//! that structure as *data*:
//!
//! ```text
//! .name  my opamp                      ; environment name
//! .nodes vdd inp out x1 tail vbn       ; node ordering (pins the MNA layout)
//! .design w1 um 2.0 200.0 6.0          ; design var, unit, lo, hi, initial
//! .design ib uA 1.0 100.0 5.0
//! .range temp -40.0 125.0              ; operating range Θ
//! .range vdd 3.0 3.6
//! .spec  A0 dB min 30.0 dcgain         ; spec → measurement binding
//! .spec  Power mW max 0.5 power
//! .match m1 m2                         ; Pelgrom mismatch group
//! .tb    vinp VINP                     ; harness wiring
//! .tb    vinn VINN
//! .tb    out  out
//! .tb    vdd  VDD
//! .tb    tail mt
//! .tb    slewcap CL
//! VDD vdd 0 {vdd}                      ; elements; {param} placeholders
//! VINP inp 0 {vcm}
//! VINN inn 0 {vcm}
//! m1 x1 inp tail 0 NMOS W={w1} L=1e-6
//! ...
//! .end
//! ```
//!
//! `{vdd}` and `{vcm}` are reserved parameters bound to the operating
//! point (`θ.vdd` and `θ.vdd/2`); every other `{name}` must be declared by
//! a `.design` line, whose unit fixes the SI scale (`um` → ×1e-6, `uA` →
//! ×1e-6, `pF` → ×1e-12, …).
//!
//! Mismatch is derived from mapped geometry: every device listed in a
//! `.match` group gets local `ΔVth`/`Δβ` parameters whose sigmas follow the
//! Pelgrom law `σ = A/√(W·L)` with `W`, `L` taken from the *evaluated*
//! design point — exactly the design-dependent `G(d)` transform of the
//! paper's Eq. 11.
//!
//! The inverting-input source named by `.tb vinn` is special: its positive
//! node must not appear in `.nodes`, because the feedback configuration
//! wires that node to the output (the source is dropped entirely) while the
//! open-loop configuration re-biases it at the feedback output voltage.

use specwise_linalg::DVec;
use specwise_mna::{
    parse_deck_ast, parse_deck_ast_limited, Circuit, DeckAst, DeckElementKind, DeckLimits,
    DeckValue, MosPolarity, MosfetParams, NodeId,
};

use crate::measure::{
    dc_solve_counted, measure, measure_samples, measure_with_directions, saturation_constraints,
    BuiltOpamp, Measure, MeasureContext, Measured, OpampBuilder,
};
use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignParam, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SimCounter, SlewRateMethod, Spec, SpecKind, StatSpace, Technology,
};

/// FNV-1a over bytes — the environment/netlist identity for warm-start
/// cache namespacing.
fn fnv1a_bytes(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn derr(line: usize, reason: impl Into<String>) -> CktError {
    CktError::Deck {
        line,
        reason: reason.into(),
    }
}

/// A value field of the compiled template: a literal, a scaled design
/// variable, or one of the reserved operating-point parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ValueExpr {
    Lit(f64),
    Design { index: usize, scale: f64 },
    Vdd,
    Vcm,
}

impl ValueExpr {
    fn eval(&self, d: &DVec, theta: &OperatingPoint) -> f64 {
        match self {
            ValueExpr::Lit(v) => *v,
            ValueExpr::Design { index, scale } => d[*index] * scale,
            ValueExpr::Vdd => theta.vdd,
            ValueExpr::Vcm => theta.vdd / 2.0,
        }
    }
}

/// What a design variable substitutes into inside one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignTarget {
    /// MOSFET channel width.
    Width,
    /// MOSFET channel length.
    Length,
    /// The element's principal value (resistance, capacitance, source
    /// level, gain, …).
    Value,
}

/// One substitution site of a design variable.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignBinding {
    /// Element instance name.
    pub element: String,
    /// Which field of the element the variable drives.
    pub target: DesignTarget,
}

/// Where each design variable lands in the netlist — the record the
/// compiler builds while resolving `{param}` placeholders.
#[derive(Debug, Clone, Default)]
pub struct DesignMap {
    per_var: Vec<(String, Vec<DesignBinding>)>,
}

impl DesignMap {
    /// `(variable, bindings)` pairs in design-space order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[DesignBinding])> {
        self.per_var
            .iter()
            .map(|(name, b)| (name.as_str(), b.as_slice()))
    }

    /// The substitution sites of one variable (empty for unknown names —
    /// a declared-but-unused variable also yields an empty slice).
    pub fn bindings_of(&self, var: &str) -> &[DesignBinding] {
        self.per_var
            .iter()
            .find(|(name, _)| name == var)
            .map(|(_, b)| b.as_slice())
            .unwrap_or(&[])
    }
}

/// The mismatch groups declared by `.match` directives, in order.
#[derive(Debug, Clone, Default)]
pub struct StatMap {
    groups: Vec<Vec<String>>,
}

impl StatMap {
    /// Every group, in declaration order.
    pub fn groups(&self) -> &[Vec<String>] {
        &self.groups
    }

    /// The two-device groups — the classic mismatch pairs the paper's
    /// Sec. 3 analysis ranks.
    pub fn pairs(&self) -> Vec<(&str, &str)> {
        self.groups
            .iter()
            .filter(|g| g.len() == 2)
            .map(|g| (g[0].as_str(), g[1].as_str()))
            .collect()
    }

    /// All matched devices, flattened in declaration order (the order of
    /// the local parameters in the statistical space).
    pub fn devices(&self) -> Vec<&str> {
        self.groups
            .iter()
            .flat_map(|g| g.iter().map(String::as_str))
            .collect()
    }
}

/// Spec-unit conversion from the harness's SI metrics to the deck's
/// display unit, replicating the exact floating-point operation the
/// hand-coded environments used (one division or one multiplication).
#[derive(Debug, Clone, Copy, PartialEq)]
enum UnitConv {
    Id,
    Div(f64),
    Mul(f64),
}

impl UnitConv {
    fn from_unit(unit: &str) -> Self {
        match unit {
            "kHz" => UnitConv::Div(1e3),
            "MHz" | "V/us" => UnitConv::Div(1e6),
            "GHz" => UnitConv::Div(1e9),
            "mW" | "mV" | "mA" => UnitConv::Mul(1e3),
            "uW" | "uV" | "uA" => UnitConv::Mul(1e6),
            _ => UnitConv::Id,
        }
    }

    fn apply(self, v: f64) -> f64 {
        match self {
            UnitConv::Id => v,
            UnitConv::Div(s) => v / s,
            UnitConv::Mul(s) => v * s,
        }
    }
}

/// SI scale of a `.design` unit (the factor applied when the variable is
/// substituted into the netlist).
fn design_unit_scale(unit: &str) -> Option<f64> {
    Some(match unit {
        "m" | "V" | "A" | "F" | "Ohm" | "ohm" | "S" | "Hz" | "x" => 1.0,
        "mm" | "mV" | "mA" | "mS" => 1e-3,
        "um" | "uV" | "uA" | "uF" => 1e-6,
        "nm" | "nV" | "nA" | "nF" => 1e-9,
        "pm" | "pA" | "pF" => 1e-12,
        "fA" | "fF" => 1e-15,
        "kOhm" | "kHz" => 1e3,
        "MOhm" | "MHz" => 1e6,
        _ => return None,
    })
}

/// A compiled element: the deck element with values resolved to
/// [`ValueExpr`]s.
#[derive(Debug, Clone)]
struct TElem {
    name: String,
    kind: TElemKind,
}

#[derive(Debug, Clone)]
enum TElemKind {
    Resistor {
        a: String,
        b: String,
        value: ValueExpr,
    },
    Capacitor {
        a: String,
        b: String,
        value: ValueExpr,
    },
    VoltageSource {
        p: String,
        n: String,
        dc: ValueExpr,
        ac: Option<f64>,
    },
    CurrentSource {
        p: String,
        n: String,
        dc: ValueExpr,
        ac: Option<f64>,
    },
    Vcvs {
        p: String,
        n: String,
        cp: String,
        cn: String,
        gain: ValueExpr,
    },
    Vccs {
        p: String,
        n: String,
        cp: String,
        cn: String,
        gm: ValueExpr,
    },
    Mosfet {
        d: String,
        g: String,
        s: String,
        b: String,
        polarity: MosPolarity,
        w: ValueExpr,
        l: ValueExpr,
    },
    Diode {
        a: String,
        k: String,
        is_sat: ValueExpr,
        ideality: ValueExpr,
    },
}

/// Harness wiring resolved from the `.tb` directives.
#[derive(Debug, Clone)]
struct BenchConfig {
    /// Non-inverting input source (element name).
    vinp: String,
    /// Inverting input source (element name).
    vinn: String,
    /// Output node name.
    out: String,
    /// Supply source (element name).
    vdd: String,
    /// Tail device (element name) whose |I_D| limits slewing.
    tail: String,
    /// The capacitor (element name) that limits slewing.
    slewcap: String,
    /// Positive node of the `vinn` source — aliased to the output in the
    /// feedback configuration.
    inn_node: String,
    /// DC expression of the `vinp` source (the input common mode).
    vcm_expr: ValueExpr,
}

/// A [`CircuitEnv`] compiled from one annotated deck (see the module docs
/// for the directive grammar).
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, MillerOpamp, Testbench};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = Testbench::from_deck(MillerOpamp::deck())?;
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(env.stat_dim()),
///     &env.operating_range().nominal(),
/// )?;
/// assert_eq!(perf.len(), env.specs().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Testbench {
    name: String,
    tech: Technology,
    declared_nodes: Vec<String>,
    elements: Vec<TElem>,
    design: DesignSpace,
    design_map: DesignMap,
    stats: StatSpace,
    stat_map: StatMap,
    specs: Vec<Spec>,
    measures: Vec<(Measure, UnitConv)>,
    range: OperatingRange,
    bench: BenchConfig,
    sr_method: SlewRateMethod,
    counter: SimCounter,
    warm: WarmStartCache,
    identity: u64,
}

impl Testbench {
    /// Compiles an annotated deck into a ready-to-run environment.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::Deck`] (with the 1-based deck line) for parse
    /// errors and for semantic problems: unknown `{param}` references,
    /// invalid design bounds or units, missing/duplicate `.range` axes,
    /// unknown `.spec` measures, `.match` devices that are not MOSFETs of
    /// the netlist, and incomplete `.tb` wiring.
    pub fn from_deck(deck: &str) -> Result<Self, CktError> {
        let ast = parse_deck_ast(deck).map_err(|e| derr(e.line(), e.to_string()))?;
        let identity = fnv1a_bytes(ast.to_deck().bytes());
        Self::compile(&ast, identity)
    }

    /// [`Testbench::from_deck`] with explicit ingestion [`DeckLimits`] — the
    /// untrusted-input boundary used by services that accept decks over the
    /// wire. Limit violations (deck too large, too many directives or
    /// elements, `{param}` brace bombs) surface as [`CktError::Deck`] with
    /// the offending line; hostile input never panics.
    pub fn from_deck_limited(deck: &str, limits: &DeckLimits) -> Result<Self, CktError> {
        let ast =
            parse_deck_ast_limited(deck, limits).map_err(|e| derr(e.line(), e.to_string()))?;
        let identity = fnv1a_bytes(ast.to_deck().bytes());
        Self::compile(&ast, identity)
    }

    fn compile(ast: &DeckAst, identity: u64) -> Result<Self, CktError> {
        // Design space. Units fix the substitution scale; bounds are
        // validated here so `DesignParam::new` cannot panic.
        let mut params = Vec::with_capacity(ast.designs.len());
        let mut scales = Vec::with_capacity(ast.designs.len());
        for dir in &ast.designs {
            if dir.name == "vdd" || dir.name == "vcm" {
                return Err(derr(
                    dir.line,
                    format!("design variable name {:?} is reserved", dir.name),
                ));
            }
            if ast.designs.iter().filter(|d| d.name == dir.name).count() > 1 {
                return Err(derr(
                    dir.line,
                    format!("design variable {:?} declared twice", dir.name),
                ));
            }
            let scale = design_unit_scale(&dir.unit).ok_or_else(|| {
                derr(
                    dir.line,
                    format!("unknown design unit {:?} for {:?}", dir.unit, dir.name),
                )
            })?;
            let ok = dir.lower.is_finite()
                && dir.upper.is_finite()
                && dir.initial.is_finite()
                && dir.lower < dir.upper
                && dir.lower <= dir.initial
                && dir.initial <= dir.upper;
            if !ok {
                return Err(derr(
                    dir.line,
                    format!(
                        "invalid bounds for {:?}: need lo < hi and lo <= init <= hi, got {} {} {}",
                        dir.name, dir.lower, dir.upper, dir.initial
                    ),
                ));
            }
            params.push(DesignParam::new(
                &dir.name,
                &dir.unit,
                dir.lower,
                dir.upper,
                dir.initial,
            ));
            scales.push(scale);
        }
        // An untrusted deck may declare no `.design` directives at all;
        // `DesignSpace::new` asserts non-emptiness, so reject here with a
        // typed deck error instead of panicking at the trust boundary.
        if params.is_empty() {
            return Err(derr(
                0,
                "deck declares no .design parameters; at least one is required".to_string(),
            ));
        }
        let design = DesignSpace::new(params);

        // Operating range: exactly one temp axis and one vdd axis.
        let mut temp = None;
        let mut vdd = None;
        for r in &ast.ranges {
            let slot = if r.quantity == "temp" {
                &mut temp
            } else {
                &mut vdd
            };
            if slot.is_some() {
                return Err(derr(
                    r.line,
                    format!(".range {} declared twice", r.quantity),
                ));
            }
            if !(r.lower.is_finite() && r.upper.is_finite() && r.lower < r.upper) {
                return Err(derr(
                    r.line,
                    format!(
                        "invalid .range {} bounds {} {}",
                        r.quantity, r.lower, r.upper
                    ),
                ));
            }
            if r.quantity == "vdd" && r.lower <= 0.0 {
                return Err(derr(r.line, "vdd range must be positive"));
            }
            *slot = Some((r.lower, r.upper));
        }
        let (t_lo, t_hi) =
            temp.ok_or_else(|| derr(0, "missing `.range temp <lo> <hi>` directive"))?;
        let (v_lo, v_hi) =
            vdd.ok_or_else(|| derr(0, "missing `.range vdd <lo> <hi>` directive"))?;
        let range = OperatingRange::new(t_lo, t_hi, v_lo, v_hi);

        // Specs and their measurement bindings.
        let mut specs = Vec::with_capacity(ast.specs.len());
        let mut measures = Vec::with_capacity(ast.specs.len());
        for s in &ast.specs {
            if !s.bound.is_finite() {
                return Err(derr(
                    s.line,
                    format!("non-finite bound for spec {:?}", s.name),
                ));
            }
            let m = Measure::parse(&s.measure).ok_or_else(|| {
                derr(
                    s.line,
                    format!("unknown measure {:?} for spec {:?}", s.measure, s.name),
                )
            })?;
            let kind = if s.lower_bound {
                SpecKind::LowerBound
            } else {
                SpecKind::UpperBound
            };
            specs.push(Spec::new(&s.name, &s.unit, kind, s.bound));
            measures.push((m, UnitConv::from_unit(&s.unit)));
        }

        // Mismatch groups: every member must be a MOSFET of the netlist and
        // appear in at most one group.
        let mosfet_names: Vec<&str> = ast
            .elements
            .iter()
            .filter(|e| matches!(e.kind, DeckElementKind::Mosfet { .. }))
            .map(|e| e.name.as_str())
            .collect();
        let mut groups: Vec<Vec<String>> = Vec::with_capacity(ast.matches.len());
        for m in &ast.matches {
            for dev in &m.devices {
                if !mosfet_names.contains(&dev.as_str()) {
                    return Err(derr(
                        m.line,
                        format!(".match device {dev:?} is not a MOSFET of the netlist"),
                    ));
                }
                if groups.iter().any(|g| g.contains(dev)) {
                    return Err(derr(
                        m.line,
                        format!(".match device {dev:?} is already in another group"),
                    ));
                }
            }
            groups.push(m.devices.clone());
        }
        let stat_map = StatMap { groups };
        let stats = StatSpace::with_locals(&stat_map.devices());

        // Element templates, with `{param}` resolution and design-map
        // recording.
        let mut design_map = DesignMap {
            per_var: design
                .params()
                .iter()
                .map(|p| (p.name.clone(), Vec::new()))
                .collect(),
        };
        let mut elements = Vec::with_capacity(ast.elements.len());
        for e in &ast.elements {
            let mut resolve =
                |v: &DeckValue, target: DesignTarget| -> Result<ValueExpr, CktError> {
                    match v {
                        DeckValue::Num(x) => Ok(ValueExpr::Lit(*x)),
                        DeckValue::Param(p) if p == "vdd" => Ok(ValueExpr::Vdd),
                        DeckValue::Param(p) if p == "vcm" => Ok(ValueExpr::Vcm),
                        DeckValue::Param(p) => {
                            let index = design.index_of(p).ok_or_else(|| {
                                derr(
                                    e.line,
                                    format!(
                                        "element {:?} references undeclared parameter {{{p}}}",
                                        e.name
                                    ),
                                )
                            })?;
                            design_map.per_var[index].1.push(DesignBinding {
                                element: e.name.clone(),
                                target,
                            });
                            Ok(ValueExpr::Design {
                                index,
                                scale: scales[index],
                            })
                        }
                    }
                };
            let kind = match &e.kind {
                DeckElementKind::Resistor { a, b, value } => TElemKind::Resistor {
                    a: a.clone(),
                    b: b.clone(),
                    value: resolve(value, DesignTarget::Value)?,
                },
                DeckElementKind::Capacitor { a, b, value } => TElemKind::Capacitor {
                    a: a.clone(),
                    b: b.clone(),
                    value: resolve(value, DesignTarget::Value)?,
                },
                DeckElementKind::VoltageSource { p, n, dc, ac } => TElemKind::VoltageSource {
                    p: p.clone(),
                    n: n.clone(),
                    dc: resolve(dc, DesignTarget::Value)?,
                    ac: *ac,
                },
                DeckElementKind::CurrentSource { p, n, dc, ac } => TElemKind::CurrentSource {
                    p: p.clone(),
                    n: n.clone(),
                    dc: resolve(dc, DesignTarget::Value)?,
                    ac: *ac,
                },
                DeckElementKind::Vcvs { p, n, cp, cn, gain } => TElemKind::Vcvs {
                    p: p.clone(),
                    n: n.clone(),
                    cp: cp.clone(),
                    cn: cn.clone(),
                    gain: resolve(gain, DesignTarget::Value)?,
                },
                DeckElementKind::Vccs { p, n, cp, cn, gm } => TElemKind::Vccs {
                    p: p.clone(),
                    n: n.clone(),
                    cp: cp.clone(),
                    cn: cn.clone(),
                    gm: resolve(gm, DesignTarget::Value)?,
                },
                DeckElementKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    polarity,
                    w,
                    l,
                } => TElemKind::Mosfet {
                    d: d.clone(),
                    g: g.clone(),
                    s: s.clone(),
                    b: b.clone(),
                    polarity: *polarity,
                    w: resolve(w, DesignTarget::Width)?,
                    l: resolve(l, DesignTarget::Length)?,
                },
                DeckElementKind::Diode {
                    a,
                    k,
                    is_sat,
                    ideality,
                } => TElemKind::Diode {
                    a: a.clone(),
                    k: k.clone(),
                    is_sat: resolve(is_sat, DesignTarget::Value)?,
                    ideality: resolve(ideality, DesignTarget::Value)?,
                },
                // `DeckElementKind` is non-exhaustive: fail loudly if the
                // parser grows element kinds the testbench does not know.
                other => {
                    return Err(derr(
                        e.line,
                        format!("element kind {other:?} is not supported by the testbench"),
                    ));
                }
            };
            elements.push(TElem {
                name: e.name.clone(),
                kind,
            });
        }

        // Harness wiring.
        let mut vinp = None;
        let mut vinn = None;
        let mut out = None;
        let mut vdd_src = None;
        let mut tail = None;
        let mut slewcap = None;
        for t in &ast.tb {
            let slot = match t.key.as_str() {
                "vinp" => &mut vinp,
                "vinn" => &mut vinn,
                "out" => &mut out,
                "vdd" => &mut vdd_src,
                "tail" => &mut tail,
                "slewcap" => &mut slewcap,
                other => {
                    return Err(derr(t.line, format!("unknown .tb key {other:?}")));
                }
            };
            if slot.is_some() {
                return Err(derr(t.line, format!(".tb {} declared twice", t.key)));
            }
            *slot = Some((t.line, t.value.clone()));
        }
        let require =
            |slot: Option<(usize, String)>, key: &str| -> Result<(usize, String), CktError> {
                slot.ok_or_else(|| derr(0, format!("missing `.tb {key} <value>` directive")))
            };
        let (vinp_line, vinp) = require(vinp, "vinp")?;
        let (vinn_line, vinn) = require(vinn, "vinn")?;
        let (out_line, out) = require(out, "out")?;
        let (vdd_line, vdd_src) = require(vdd_src, "vdd")?;
        let (tail_line, tail) = require(tail, "tail")?;
        let (slewcap_line, slewcap) = require(slewcap, "slewcap")?;

        let find = |name: &str| elements.iter().find(|el| el.name == name);
        let vsource =
            |line: usize, name: &str, key: &str| -> Result<(ValueExpr, String), CktError> {
                match find(name) {
                    Some(TElem {
                        kind: TElemKind::VoltageSource { p, dc, .. },
                        ..
                    }) => Ok((*dc, p.clone())),
                    _ => Err(derr(
                        line,
                        format!(".tb {key} must name a voltage source, got {name:?}"),
                    )),
                }
            };
        let (vcm_expr, _) = vsource(vinp_line, &vinp, "vinp")?;
        let (_, inn_node) = vsource(vinn_line, &vinn, "vinn")?;
        vsource(vdd_line, &vdd_src, "vdd")?;
        if !matches!(
            find(&tail),
            Some(TElem {
                kind: TElemKind::Mosfet { .. },
                ..
            })
        ) {
            return Err(derr(
                tail_line,
                format!(".tb tail must name a MOSFET, got {tail:?}"),
            ));
        }
        if !matches!(
            find(&slewcap),
            Some(TElem {
                kind: TElemKind::Capacitor { .. },
                ..
            })
        ) {
            return Err(derr(
                slewcap_line,
                format!(".tb slewcap must name a capacitor, got {slewcap:?}"),
            ));
        }
        if ast.nodes.contains(&inn_node) {
            return Err(derr(
                vinn_line,
                format!(
                    "the inverting-input node {inn_node:?} must not be listed in .nodes \
                     (the feedback configuration replaces it with the output node)"
                ),
            ));
        }
        for n in &ast.nodes {
            if n == "0" || n.eq_ignore_ascii_case("gnd") {
                return Err(derr(0, "ground must not be listed in .nodes"));
            }
        }
        let node_exists = ast.nodes.contains(&out)
            || elements
                .iter()
                .any(|el| el_nodes(&el.kind).iter().any(|n| **n == out));
        if !node_exists {
            return Err(derr(
                out_line,
                format!(".tb out names unknown node {out:?}"),
            ));
        }

        Ok(Testbench {
            name: ast
                .title
                .clone()
                .unwrap_or_else(|| "deck testbench".to_string()),
            tech: Technology::c06(),
            declared_nodes: ast.nodes.clone(),
            elements,
            design,
            design_map,
            stats,
            stat_map,
            specs,
            measures,
            range,
            bench: BenchConfig {
                vinp,
                vinn,
                out,
                vdd: vdd_src,
                tail,
                slewcap,
                inn_node,
                vcm_expr,
            },
            sr_method: SlewRateMethod::Analytic,
            counter: SimCounter::new(),
            warm: WarmStartCache::from_env(),
            identity,
        })
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.sr_method = method;
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob).
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm = if enabled {
            WarmStartCache::always_enabled()
        } else {
            WarmStartCache::disabled()
        };
        self
    }

    /// Replaces the technology card (default: [`Technology::c06`]).
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// Replaces the measurement bound to the named spec with a custom
    /// closure — the escape hatch for performances outside the built-in
    /// vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::Deck`] when no spec has that name.
    pub fn with_custom_measure(
        mut self,
        spec_name: &str,
        f: impl Fn(&MeasureContext) -> Result<f64, CktError> + Send + Sync + 'static,
    ) -> Result<Self, CktError> {
        let i = self
            .specs
            .iter()
            .position(|s| s.name() == spec_name)
            .ok_or_else(|| derr(0, format!("no spec named {spec_name:?}")))?;
        self.measures[i].0 = Measure::Custom(std::sync::Arc::new(f));
        Ok(self)
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        &self.warm
    }

    /// The technology card in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Where each design variable substitutes into the netlist.
    pub fn design_map(&self) -> &DesignMap {
        &self.design_map
    }

    /// The `.match` mismatch groups.
    pub fn stat_map(&self) -> &StatMap {
        &self.stat_map
    }

    /// Full metric set at one evaluation point.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.check_dims(d, s_hat)?;
        let m = measure(
            self,
            self.identity,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
        )?;
        Ok(m.metrics)
    }

    /// Converts one harness result into the margin vector of this bench's
    /// spec list — the same `measure → performance → margin` chain as
    /// [`CircuitEnv::eval_margins`], applied to an already-measured point.
    fn margins_from(&self, m: &Measured) -> Result<DVec, CktError> {
        let ctx = MeasureContext {
            metrics: &m.metrics,
            op: &m.op_fb,
            circuit: &m.fb_circuit,
        };
        let mut out = Vec::with_capacity(self.measures.len());
        for ((measure, conv), spec) in self.measures.iter().zip(&self.specs) {
            out.push(spec.margin(conv.apply(measure.eval(&ctx)?)));
        }
        Ok(DVec::from(out))
    }

    fn check_dims(&self, d: &DVec, s_hat: &DVec) -> Result<(), CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        if s_hat.len() != self.stats.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.stats.dim(),
                found: s_hat.len(),
            });
        }
        Ok(())
    }
}

fn el_nodes(kind: &TElemKind) -> Vec<&String> {
    match kind {
        TElemKind::Resistor { a, b, .. } | TElemKind::Capacitor { a, b, .. } => vec![a, b],
        TElemKind::VoltageSource { p, n, .. } | TElemKind::CurrentSource { p, n, .. } => {
            vec![p, n]
        }
        TElemKind::Vcvs { p, n, cp, cn, .. } | TElemKind::Vccs { p, n, cp, cn, .. } => {
            vec![p, n, cp, cn]
        }
        TElemKind::Mosfet { d, g, s, b, .. } => vec![d, g, s, b],
        TElemKind::Diode { a, k, .. } => vec![a, k],
    }
}

impl OpampBuilder for Testbench {
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError> {
        let mut ckt = Circuit::new();
        ckt.set_temperature(theta.temp_k());
        // Pre-intern the declared nodes: this pins the MNA unknown ordering
        // (and thereby the LU pivoting sequence) to the deck's `.nodes`
        // line, independent of element order.
        for n in &self.declared_nodes {
            ckt.node(n);
        }
        let out = ckt.node(&self.bench.out);
        let cap_factor = self.stats.cap_factor(&self.tech, s_hat)?;

        let mut slew_cap = 0.0;
        for el in &self.elements {
            // The feedback configuration drops the inverting-input source
            // and wires its node to the output.
            if feedback && el.name == self.bench.vinn {
                continue;
            }
            let mut node = |name: &String| -> NodeId {
                if name == "0" || name.eq_ignore_ascii_case("gnd") {
                    Circuit::GROUND
                } else if feedback && *name == self.bench.inn_node {
                    out
                } else {
                    ckt.node(name)
                }
            };
            match &el.kind {
                TElemKind::Resistor { a, b, value } => {
                    let (a, b) = (node(a), node(b));
                    ckt.resistor(&el.name, a, b, value.eval(d, theta))?;
                }
                TElemKind::Capacitor { a, b, value } => {
                    let (a, b) = (node(a), node(b));
                    let c = value.eval(d, theta) * cap_factor;
                    if el.name == self.bench.slewcap {
                        slew_cap = c;
                    }
                    ckt.capacitor(&el.name, a, b, c)?;
                }
                TElemKind::VoltageSource { p, n, dc, ac } => {
                    let (p, n) = (node(p), node(n));
                    let v = if el.name == self.bench.vinn {
                        vinn_dc
                    } else {
                        dc.eval(d, theta)
                    };
                    ckt.voltage_source(&el.name, p, n, v)?;
                    if let Some(mag) = ac {
                        ckt.set_ac(&el.name, *mag)?;
                    }
                }
                TElemKind::CurrentSource { p, n, dc, ac } => {
                    let (p, n) = (node(p), node(n));
                    ckt.current_source(&el.name, p, n, dc.eval(d, theta))?;
                    if let Some(mag) = ac {
                        ckt.set_ac(&el.name, *mag)?;
                    }
                }
                TElemKind::Vcvs { p, n, cp, cn, gain } => {
                    let (p, n, cp, cn) = (node(p), node(n), node(cp), node(cn));
                    ckt.vcvs(&el.name, p, n, cp, cn, gain.eval(d, theta))?;
                }
                TElemKind::Vccs { p, n, cp, cn, gm } => {
                    let (p, n, cp, cn) = (node(p), node(n), node(cp), node(cn));
                    ckt.vccs(&el.name, p, n, cp, cn, gm.eval(d, theta))?;
                }
                TElemKind::Mosfet {
                    d: dn,
                    g,
                    s,
                    b,
                    polarity,
                    w,
                    l,
                } => {
                    let (dn, g, s, b) = (node(dn), node(g), node(s), node(b));
                    let (wv, lv) = (w.eval(d, theta), l.eval(d, theta));
                    let (delta_vth, beta_factor) = self
                        .stats
                        .device_deltas(&self.tech, &el.name, *polarity, wv, lv, s_hat)?;
                    let mut p = MosfetParams::new(*self.tech.model(*polarity), wv, lv);
                    p.delta_vth = delta_vth;
                    p.beta_factor = beta_factor;
                    ckt.mosfet(&el.name, dn, g, s, b, p)?;
                }
                TElemKind::Diode {
                    a,
                    k,
                    is_sat,
                    ideality,
                } => {
                    let (a, k) = (node(a), node(k));
                    ckt.diode(
                        &el.name,
                        a,
                        k,
                        is_sat.eval(d, theta),
                        ideality.eval(d, theta),
                    )?;
                }
            }
        }

        Ok(BuiltOpamp {
            circuit: ckt,
            vinp_src: self.bench.vinp.clone(),
            vinn_src: if feedback {
                None
            } else {
                Some(self.bench.vinn.clone())
            },
            out,
            vdd_src: self.bench.vdd.clone(),
            vcm: self.bench.vcm_expr.eval(d, theta),
            slew_cap,
            tail_device: self.bench.tail.clone(),
        })
    }
}

/// Default lockstep width of the batched Monte-Carlo path.
const DEFAULT_BATCH_WIDTH: usize = 64;

/// Reads the `SPECWISE_BATCH` knob: `0` or `1` disable the batched sample
/// path (callers fall back to the per-sample loop), any larger value bounds
/// the lockstep width, unset uses [`DEFAULT_BATCH_WIDTH`] and garbage
/// warns-and-defaults through the shared knob parser.
fn batch_width() -> Option<usize> {
    match crate::env_knob::parse_env_knob::<usize>("SPECWISE_BATCH") {
        Some(0) | Some(1) => None,
        Some(n) => Some(n),
        None => Some(DEFAULT_BATCH_WIDTH),
    }
}

impl CircuitEnv for Testbench {
    fn name(&self) -> &str {
        &self.name
    }

    fn design_space(&self) -> &DesignSpace {
        &self.design
    }

    fn stat_space(&self) -> &StatSpace {
        &self.stats
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn operating_range(&self) -> &OperatingRange {
        &self.range
    }

    fn constraint_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for el in &self.elements {
            if matches!(el.kind, TElemKind::Mosfet { .. }) {
                names.push(format!("vsat_{}", el.name));
                names.push(format!("vov_{}", el.name));
                names.push(format!("vovmax_{}", el.name));
            }
        }
        names
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        self.check_dims(d, s_hat)?;
        let m = measure(
            self,
            self.identity,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
        )?;
        let ctx = MeasureContext {
            metrics: &m.metrics,
            op: &m.op_fb,
            circuit: &m.fb_circuit,
        };
        let mut out = Vec::with_capacity(self.measures.len());
        for (measure, conv) in &self.measures {
            out.push(conv.apply(measure.eval(&ctx)?));
        }
        Ok(DVec::from(out))
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        let s0 = DVec::zeros(self.stats.dim());
        self.check_dims(d, &s0)?;
        let theta = self.range.nominal();
        let built = self.build(d, &s0, &theta, true, 0.0)?;
        let op = dc_solve_counted(
            &built.circuit,
            self.identity,
            &self.counter,
            &self.warm,
            d,
            &theta,
        )?;
        Ok(saturation_constraints(&op, 0.05, 0.05, 0.5))
    }

    fn sim_count(&self) -> u64 {
        self.counter.count()
    }

    fn reset_sim_count(&self) {
        self.counter.reset();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.counter.set_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.counter.phase_counts()
    }

    fn warm_commit(&self) {
        self.warm.commit();
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        self.check_dims(d, s_hat)?;
        for (dp, sp) in directions {
            self.check_dims(dp, sp)?;
        }
        let Some((base, per)) = measure_with_directions(
            self,
            self.identity,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
            directions,
        )?
        else {
            return Ok(None);
        };
        let base_margins = self.margins_from(&base)?;
        let mut out = Vec::with_capacity(per.len());
        for m in &per {
            out.push(self.margins_from(m)?);
        }
        Ok(Some((base_margins, out)))
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        let width = batch_width()?;
        // Malformed inputs take the scalar loop so the per-sample errors
        // come out exactly as `eval_margins` would report them.
        if points.iter().any(|(s, _)| self.check_dims(d, s).is_err()) {
            return None;
        }
        let mut out = Vec::with_capacity(points.len());
        for chunk in points.chunks(width.max(2)) {
            for r in measure_samples(
                self,
                self.identity,
                d,
                chunk,
                self.sr_method,
                &self.counter,
                &self.warm,
            ) {
                out.push(r.and_then(|m| self.margins_from(&m)));
            }
        }
        Some(out)
    }

    fn adjoint_solve_count(&self) -> u64 {
        self.counter.adjoint_solves()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.counter.fd_sims_avoided()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
.name tiny test ota
.nodes vdd inp out x1 tail vbn
.design w1 um 2.0 200.0 6.0
.design l1 um 0.6 10.0 1.0
.design w3 um 2.0 200.0 12.0
.design wt um 2.0 200.0 20.0
.design ib uA 1.0 100.0 5.0
.range temp -40.0 125.0
.range vdd 3.0 3.6
.spec A0 dB min 30.0 dcgain
.spec ft MHz min 4.0 ugf
.spec SRp V/us min 4.0 slew
.spec Power mW max 0.5 power
.spec Vout V min 0.5 vdc(out)
.match m1 m2
.match m3 m4
.tb vinp VINP
.tb vinn VINN
.tb out out
.tb vdd VDD
.tb tail mt
.tb slewcap CL
VDD vdd 0 {vdd}
VINP inp 0 {vcm}
VINN inn 0 {vcm}
IB1 vdd vbn {ib}
m1 x1 inp tail 0 NMOS W={w1} L={l1}
m2 out inn tail 0 NMOS W={w1} L={l1}
m3 x1 x1 vdd vdd PMOS W={w3} L=2e-6
m4 out x1 vdd vdd PMOS W={w3} L=2e-6
mt tail vbn 0 0 NMOS W={wt} L=2e-6
mb1 vbn vbn 0 0 NMOS W=10e-6 L=2e-6
CL out 0 2.0e-12
.end
";

    #[test]
    fn compiles_and_exposes_spaces() {
        let tb = Testbench::from_deck(DECK).unwrap();
        assert_eq!(tb.name(), "tiny test ota");
        assert_eq!(tb.design_space().dim(), 5);
        // 5 globals + 2 locals for each of the 4 matched devices.
        assert_eq!(tb.stat_dim(), 5 + 8);
        assert_eq!(tb.specs().len(), 5);
        assert_eq!(tb.stat_map().pairs(), vec![("m1", "m2"), ("m3", "m4")]);
        // 6 mosfets × 3 constraints.
        assert_eq!(tb.constraint_names().len(), 18);
        let w1 = tb.design_map().bindings_of("w1");
        assert_eq!(w1.len(), 2, "w1 drives the widths of m1 and m2");
        assert!(w1
            .iter()
            .all(|b| b.target == DesignTarget::Width && (b.element == "m1" || b.element == "m2")));
        let ib = tb.design_map().bindings_of("ib");
        assert_eq!(ib.len(), 1);
        assert_eq!(ib[0].target, DesignTarget::Value);
    }

    #[test]
    fn evaluates_performances_and_constraints() {
        let tb = Testbench::from_deck(DECK).unwrap();
        let d0 = tb.design_space().initial();
        let s0 = DVec::zeros(tb.stat_dim());
        let theta = tb.operating_range().nominal();
        let perf = tb.eval_performances(&d0, &s0, &theta).unwrap();
        assert_eq!(perf.len(), 5);
        assert!(perf[0] > 20.0, "A0 = {} dB", perf[0]);
        // vdc(out): the unity buffer holds the output near the common mode.
        assert!(
            (perf[4] - theta.vdd / 2.0).abs() < 0.3,
            "V(out) = {}",
            perf[4]
        );
        let c = tb.eval_constraints(&d0).unwrap();
        assert_eq!(c.len(), 18);
        assert!(tb.sim_count() > 0);
    }

    #[test]
    fn custom_measure_replaces_builtin() {
        let tb = Testbench::from_deck(DECK)
            .unwrap()
            .with_custom_measure("Vout", |ctx| Ok(ctx.metrics.a0_db * 2.0))
            .unwrap();
        let d0 = tb.design_space().initial();
        let s0 = DVec::zeros(tb.stat_dim());
        let theta = tb.operating_range().nominal();
        let perf = tb.eval_performances(&d0, &s0, &theta).unwrap();
        assert!((perf[4] - 2.0 * perf[0]).abs() < 1e-9);
        assert!(Testbench::from_deck(DECK)
            .unwrap()
            .with_custom_measure("nope", |_| Ok(0.0))
            .is_err());
    }

    #[test]
    fn semantic_errors_carry_lines() {
        // Unknown parameter reference.
        let bad = DECK.replace("{ib}", "{ibx}");
        match Testbench::from_deck(&bad).unwrap_err() {
            CktError::Deck { line, reason } => {
                assert_eq!(line, 26, "{reason}");
                assert!(reason.contains("ibx"), "{reason}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Match group member that is not a MOSFET.
        let bad = DECK.replace(".match m3 m4", ".match m3 CL");
        assert!(matches!(
            Testbench::from_deck(&bad),
            Err(CktError::Deck { .. })
        ));
        // Unknown measure token.
        let bad = DECK.replace("dcgain", "gainz");
        assert!(matches!(
            Testbench::from_deck(&bad),
            Err(CktError::Deck { .. })
        ));
        // Missing range axis.
        let bad = DECK.replace(".range vdd 3.0 3.6\n", "");
        assert!(matches!(
            Testbench::from_deck(&bad),
            Err(CktError::Deck { .. })
        ));
        // Inverting-input node must not be pre-declared.
        let bad = DECK.replace(
            ".nodes vdd inp out x1 tail vbn",
            ".nodes vdd inp inn out x1 tail vbn",
        );
        assert!(matches!(
            Testbench::from_deck(&bad),
            Err(CktError::Deck { .. })
        ));
        // Unknown design unit.
        let bad = DECK.replace(".design ib uA", ".design ib furlongs");
        assert!(matches!(
            Testbench::from_deck(&bad),
            Err(CktError::Deck { .. })
        ));
    }

    #[test]
    fn mismatch_locals_move_offset_but_not_globals_only_parity() {
        let tb = Testbench::from_deck(DECK).unwrap();
        let d0 = tb.design_space().initial();
        let theta = tb.operating_range().nominal();
        let base = tb
            .eval_performances(&d0, &DVec::zeros(tb.stat_dim()), &theta)
            .unwrap();
        let mut s = DVec::zeros(tb.stat_dim());
        s[tb.stat_space().index_of("vth_m1").unwrap()] = 3.0;
        let shifted = tb.eval_performances(&d0, &s, &theta).unwrap();
        assert!(
            (&shifted - &base).norm_inf() > 1e-6,
            "local mismatch must move performances"
        );
    }
}
