//! The folded-cascode operational amplifier of the paper's Fig. 7,
//! modeled with both global and local (mismatch) variations.
//!
//! Topology (NMOS input variant):
//!
//! ```text
//!             VDD ──────┬────────────┬──────────┬─────────┐
//!                      MB2(diode)   M3          M4        MT? (no: tail is NMOS)
//!                       │ vbp────────┴─(gates)──┘
//!                       ⇓ IB2
//!  vcasc = VDD − 1.5 ── gates of M5, M6 (PMOS cascodes)
//!
//!   inp ──g M1─┐f1── s M5 d ──o1──┐            f2 ── s M6 d ── out ──┬── CL
//!   inn ──g M2─┘f2                M7(diode)────gate────M8            │
//!        tail──MT──gnd            └── gnd       └── gnd             gnd
//! ```
//!
//! * M1/M2 — NMOS input pair (matching pair **P1** of the paper's Table 5),
//! * M3/M4 — PMOS current sources (pair P2),
//! * M5/M6 — PMOS cascodes,
//! * M7/M8 — NMOS mirror (pair P3),
//! * MT — NMOS tail source mirrored from the MB1/IB1 reference,
//! * MB1/MB2 — bias diodes.
//!
//! Specifications (paper Table 1): `A0 ≥ 40 dB`, `ft ≥ 40 MHz`,
//! `CMRR ≥ 80 dB`, `SR ≥ 35 V/µs`, `P ≤ 3.5 mW`.

use specwise_linalg::DVec;
use specwise_mna::{Circuit, MosPolarity, MosfetParams};

use crate::extract::{dc_solve_counted, measure, saturation_constraints, BuiltOpamp, OpampBuilder};
use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignParam, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SimCounter, SlewRateMethod, Spec, SpecKind, StatSpace, Technology,
};

/// Device list in netlist order (name, polarity).
const DEVICES: [(&str, MosPolarity); 11] = [
    ("m1", MosPolarity::Nmos),
    ("m2", MosPolarity::Nmos),
    ("m3", MosPolarity::Pmos),
    ("m4", MosPolarity::Pmos),
    ("m5", MosPolarity::Pmos),
    ("m6", MosPolarity::Pmos),
    ("m7", MosPolarity::Nmos),
    ("m8", MosPolarity::Nmos),
    ("mt", MosPolarity::Nmos),
    ("mb1", MosPolarity::Nmos),
    ("mb2", MosPolarity::Pmos),
];

/// Load capacitance \[F\].
const CL: f64 = 2.0e-12;
/// Cascode gate bias below VDD \[V\].
const VCASC_BELOW_VDD: f64 = 1.5;
/// Bias diode geometries \[m\].
const MB1_W: f64 = 10e-6;
const MB1_L: f64 = 2e-6;
const MB2_W: f64 = 20e-6;
const MB2_L: f64 = 2e-6;
/// Tail device channel length \[m\].
const TAIL_L: f64 = 1e-6;

/// The folded-cascode opamp environment (paper Fig. 7).
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, FoldedCascode};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = FoldedCascode::paper_setup();
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(env.stat_dim()),
///     &env.operating_range().nominal(),
/// )?;
/// // A0 of the nominal initial design is comfortably above 40 dB.
/// assert!(perf[0] > 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FoldedCascode {
    tech: Technology,
    design: DesignSpace,
    stats: StatSpace,
    specs: Vec<Spec>,
    range: OperatingRange,
    sr_method: SlewRateMethod,
    counter: SimCounter,
    warm: WarmStartCache,
}

impl FoldedCascode {
    /// The paper's experimental setup: initial sizing chosen so that the
    /// initial design is feasible w.r.t. the functional constraints but
    /// violates the ft and CMRR specs at the worst-case operating corner
    /// (Table 1, "Initial" rows).
    pub fn paper_setup() -> Self {
        let design = DesignSpace::new(vec![
            DesignParam::new("w1", "um", 4.0, 400.0, 36.0),
            DesignParam::new("l1", "um", 0.6, 10.0, 1.0),
            DesignParam::new("w3", "um", 4.0, 400.0, 70.0),
            DesignParam::new("l3", "um", 0.6, 10.0, 1.0),
            DesignParam::new("w5", "um", 4.0, 400.0, 60.0),
            DesignParam::new("l5", "um", 0.6, 10.0, 0.8),
            DesignParam::new("w7", "um", 4.0, 400.0, 11.0),
            DesignParam::new("l7", "um", 0.6, 10.0, 1.0),
            DesignParam::new("wt", "um", 4.0, 400.0, 36.0),
            DesignParam::new("ib", "uA", 2.0, 200.0, 10.0),
        ]);
        let stats = StatSpace::build(&DEVICES, true);
        let specs = vec![
            Spec::new("A0", "dB", SpecKind::LowerBound, 40.0),
            Spec::new("ft", "MHz", SpecKind::LowerBound, 40.0),
            Spec::new("CMRR", "dB", SpecKind::LowerBound, 80.0),
            Spec::new("SRp", "V/us", SpecKind::LowerBound, 35.0),
            Spec::new("Power", "mW", SpecKind::UpperBound, 3.5),
        ];
        FoldedCascode {
            tech: Technology::c06(),
            design,
            stats,
            specs,
            range: OperatingRange::new(-40.0, 125.0, 3.0, 3.6),
            sr_method: SlewRateMethod::Analytic,
            counter: SimCounter::new(),
            warm: WarmStartCache::from_env(),
        }
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.sr_method = method;
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm = if enabled {
            WarmStartCache::always_enabled()
        } else {
            WarmStartCache::disabled()
        };
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        &self.warm
    }

    /// The technology card in use.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Full metric set (physical units) at one evaluation point — the
    /// low-level view behind [`CircuitEnv::eval_performances`].
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.check_dims(d, s_hat)?;
        let (m, _) = measure(
            self,
            d,
            s_hat,
            theta,
            self.sr_method,
            &self.counter,
            &self.warm,
        )?;
        Ok(m)
    }

    fn check_dims(&self, d: &DVec, s_hat: &DVec) -> Result<(), CktError> {
        if d.len() != self.design.dim() {
            return Err(CktError::DimensionMismatch {
                what: "design",
                expected: self.design.dim(),
                found: d.len(),
            });
        }
        if s_hat.len() != self.stats.dim() {
            return Err(CktError::DimensionMismatch {
                what: "stat",
                expected: self.stats.dim(),
                found: s_hat.len(),
            });
        }
        Ok(())
    }

    /// Geometry of every device \[m\] for a design vector (µm units inside `d`).
    fn geometry(&self, d: &DVec, device: &str) -> (f64, f64) {
        let um = 1e-6;
        match device {
            "m1" | "m2" => (d[0] * um, d[1] * um),
            "m3" | "m4" => (d[2] * um, d[3] * um),
            "m5" | "m6" => (d[4] * um, d[5] * um),
            "m7" | "m8" => (d[6] * um, d[7] * um),
            "mt" => (d[8] * um, TAIL_L),
            "mb1" => (MB1_W, MB1_L),
            "mb2" => (MB2_W, MB2_L),
            other => unreachable!("unknown device {other}"),
        }
    }

    fn device_params(
        &self,
        d: &DVec,
        s_hat: &DVec,
        device: &str,
        polarity: MosPolarity,
    ) -> Result<MosfetParams, CktError> {
        let (w, l) = self.geometry(d, device);
        let (delta_vth, beta_factor) = self
            .stats
            .device_deltas(&self.tech, device, polarity, w, l, s_hat)?;
        let mut p = MosfetParams::new(*self.tech.model(polarity), w, l);
        p.delta_vth = delta_vth;
        p.beta_factor = beta_factor;
        Ok(p)
    }
}

impl OpampBuilder for FoldedCascode {
    fn build(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        feedback: bool,
        vinn_dc: f64,
    ) -> Result<BuiltOpamp, CktError> {
        let mut ckt = Circuit::new();
        ckt.set_temperature(theta.temp_k());
        let gnd = Circuit::GROUND;
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        let f1 = ckt.node("f1");
        let f2 = ckt.node("f2");
        let o1 = ckt.node("o1");
        let tail = ckt.node("tail");
        let vbn = ckt.node("vbn");
        let vbp = ckt.node("vbp");
        let vcp = ckt.node("vcp");
        // Inverting gate: the output itself under feedback, a driven node
        // otherwise.
        let inn = if feedback { out } else { ckt.node("inn") };

        let vcm = theta.vdd / 2.0;
        let ib = d[9] * 1e-6;

        ckt.voltage_source("VDD", vdd, gnd, theta.vdd)?;
        ckt.voltage_source("VINP", inp, gnd, vcm)?;
        let vinn_src = if feedback {
            None
        } else {
            ckt.voltage_source("VINN", inn, gnd, vinn_dc)?;
            Some("VINN".to_string())
        };
        // Cascode gate bias tracks VDD.
        ckt.voltage_source("VCASC", vdd, vcp, VCASC_BELOW_VDD)?;
        // Bias reference currents.
        ckt.current_source("IB1", vdd, vbn, ib)?;
        ckt.current_source("IB2", vbp, gnd, ib)?;

        // Devices — keep this order in sync with `DEVICES`.
        let p = |dev: &str, pol| self.device_params(d, s_hat, dev, pol);
        ckt.mosfet("m1", f1, inp, tail, gnd, p("m1", MosPolarity::Nmos)?)?;
        ckt.mosfet("m2", f2, inn, tail, gnd, p("m2", MosPolarity::Nmos)?)?;
        ckt.mosfet("m3", f1, vbp, vdd, vdd, p("m3", MosPolarity::Pmos)?)?;
        ckt.mosfet("m4", f2, vbp, vdd, vdd, p("m4", MosPolarity::Pmos)?)?;
        ckt.mosfet("m5", o1, vcp, f1, vdd, p("m5", MosPolarity::Pmos)?)?;
        ckt.mosfet("m6", out, vcp, f2, vdd, p("m6", MosPolarity::Pmos)?)?;
        ckt.mosfet("m7", o1, o1, gnd, gnd, p("m7", MosPolarity::Nmos)?)?;
        ckt.mosfet("m8", out, o1, gnd, gnd, p("m8", MosPolarity::Nmos)?)?;
        ckt.mosfet("mt", tail, vbn, gnd, gnd, p("mt", MosPolarity::Nmos)?)?;
        ckt.mosfet("mb1", vbn, vbn, gnd, gnd, p("mb1", MosPolarity::Nmos)?)?;
        ckt.mosfet("mb2", vbp, vbp, vdd, vdd, p("mb2", MosPolarity::Pmos)?)?;

        let cl = CL * self.stats.cap_factor(&self.tech, s_hat)?;
        ckt.capacitor("CL", out, gnd, cl)?;

        Ok(BuiltOpamp {
            circuit: ckt,
            vinp_src: "VINP".to_string(),
            vinn_src,
            out,
            vdd_src: "VDD".to_string(),
            vcm,
            slew_cap: cl,
            tail_device: "mt".to_string(),
        })
    }
}

impl CircuitEnv for FoldedCascode {
    fn name(&self) -> &str {
        "folded-cascode opamp"
    }

    fn design_space(&self) -> &DesignSpace {
        &self.design
    }

    fn stat_space(&self) -> &StatSpace {
        &self.stats
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn operating_range(&self) -> &OperatingRange {
        &self.range
    }

    fn constraint_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(3 * DEVICES.len());
        for (dev, _) in DEVICES {
            names.push(format!("vsat_{dev}"));
            names.push(format!("vov_{dev}"));
            names.push(format!("vovmax_{dev}"));
        }
        names
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let m = self.metrics(d, s_hat, theta)?;
        Ok(DVec::from_slice(&[
            m.a0_db,
            m.ft_hz / 1e6,
            m.cmrr_db,
            m.slew_v_per_s / 1e6,
            m.power_w * 1e3,
        ]))
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.check_dims(d, &DVec::zeros(self.stats.dim()))?;
        let theta = self.range.nominal();
        let built = self.build(d, &DVec::zeros(self.stats.dim()), &theta, true, 0.0)?;
        let op = dc_solve_counted(&built.circuit, &self.counter, &self.warm, d, &theta)?;
        Ok(saturation_constraints(&op, 0.05, 0.05, 0.5))
    }

    fn sim_count(&self) -> u64 {
        self.counter.count()
    }

    fn reset_sim_count(&self) {
        self.counter.reset();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.counter.set_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.counter.phase_counts()
    }

    fn warm_commit(&self) {
        self.warm.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> FoldedCascode {
        FoldedCascode::paper_setup()
    }

    #[test]
    fn nominal_design_simulates() {
        let e = env();
        let d0 = e.design_space().initial();
        let s0 = DVec::zeros(e.stat_dim());
        let theta = e.operating_range().nominal();
        let m = e.metrics(&d0, &s0, &theta).unwrap();
        assert!(m.a0_db > 40.0, "A0 = {} dB", m.a0_db);
        assert!(m.ft_hz > 10e6, "ft = {} Hz", m.ft_hz);
        assert!(m.cmrr_db > 40.0, "CMRR = {} dB", m.cmrr_db);
        assert!(m.power_w > 0.0 && m.power_w < 3.5e-3, "P = {} W", m.power_w);
        assert!(m.slew_v_per_s > 10e6, "SR = {} V/s", m.slew_v_per_s);
    }

    #[test]
    fn initial_design_is_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        let names = e.constraint_names();
        assert_eq!(c.len(), names.len());
        for (i, name) in names.iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn sim_counter_increments() {
        let e = env();
        e.reset_sim_count();
        let _ = e
            .eval_performances(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(e.sim_count() >= 5, "count = {}", e.sim_count());
    }

    #[test]
    fn mismatch_degrades_cmrr() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let base = e.metrics(&d0, &s0, &theta).unwrap().cmrr_db;
        // Push the mirror pair apart along the mismatch line. (Input-pair
        // Vth mismatch is largely absorbed as input offset; the mirror and
        // current-source pairs are the CMRR-critical ones.)
        let mut s = DVec::zeros(e.stat_dim());
        s[e.stat_space().index_of("vth_m7").unwrap()] = 3.0;
        s[e.stat_space().index_of("vth_m8").unwrap()] = -3.0;
        let worse = e.metrics(&d0, &s, &theta).unwrap().cmrr_db;
        assert!(worse < base, "mismatch must reduce CMRR: {worse} vs {base}");
    }

    #[test]
    fn neutral_direction_is_benign() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let base = e.metrics(&d0, &s0, &theta).unwrap().cmrr_db;
        let mut s_ml = DVec::zeros(e.stat_dim());
        s_ml[e.stat_space().index_of("vth_m7").unwrap()] = 2.0;
        s_ml[e.stat_space().index_of("vth_m8").unwrap()] = -2.0;
        let ml = e.metrics(&d0, &s_ml, &theta).unwrap().cmrr_db;
        let mut s_nl = DVec::zeros(e.stat_dim());
        s_nl[e.stat_space().index_of("vth_m7").unwrap()] = 2.0;
        s_nl[e.stat_space().index_of("vth_m8").unwrap()] = 2.0;
        let nl = e.metrics(&d0, &s_nl, &theta).unwrap().cmrr_db;
        // Neutral-line deviation must hurt far less than mismatch-line.
        assert!(
            base - nl < 0.5 * (base - ml),
            "NL drop {} vs ML drop {}",
            base - nl,
            base - ml
        );
    }

    #[test]
    fn wrong_dimensions_rejected() {
        let e = env();
        let theta = e.operating_range().nominal();
        assert!(matches!(
            e.eval_performances(&DVec::zeros(3), &DVec::zeros(e.stat_dim()), &theta),
            Err(CktError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            e.eval_performances(&e.design_space().initial(), &DVec::zeros(2), &theta),
            Err(CktError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn margins_match_specs() {
        let e = env();
        let d0 = e.design_space().initial();
        let s0 = DVec::zeros(e.stat_dim());
        let theta = e.operating_range().nominal();
        let perf = e.eval_performances(&d0, &s0, &theta).unwrap();
        let margins = e.eval_margins(&d0, &s0, &theta).unwrap();
        for (i, spec) in e.specs().iter().enumerate() {
            assert!((margins[i] - spec.margin(perf[i])).abs() < 1e-12);
        }
    }
}
