//! The folded-cascode operational amplifier of the paper's Fig. 7,
//! modeled with both global and local (mismatch) variations.
//!
//! Topology (NMOS input variant):
//!
//! ```text
//!             VDD ──────┬────────────┬──────────┬─────────┐
//!                      MB2(diode)   M3          M4        MT? (no: tail is NMOS)
//!                       │ vbp────────┴─(gates)──┘
//!                       ⇓ IB2
//!  vcasc = VDD − 1.5 ── gates of M5, M6 (PMOS cascodes)
//!
//!   inp ──g M1─┐f1── s M5 d ──o1──┐            f2 ── s M6 d ── out ──┬── CL
//!   inn ──g M2─┘f2                M7(diode)────gate────M8            │
//!        tail──MT──gnd            └── gnd       └── gnd             gnd
//! ```
//!
//! * M1/M2 — NMOS input pair (matching pair **P1** of the paper's Table 5),
//! * M3/M4 — PMOS current sources (pair P2),
//! * M5/M6 — PMOS cascodes,
//! * M7/M8 — NMOS mirror (pair P3),
//! * MT — NMOS tail source mirrored from the MB1/IB1 reference,
//! * MB1/MB2 — bias diodes.
//!
//! Specifications (paper Table 1): `A0 ≥ 40 dB`, `ft ≥ 40 MHz`,
//! `CMRR ≥ 80 dB`, `SR ≥ 35 V/µs`, `P ≤ 3.5 mW`.
//!
//! The environment is a thin wrapper over the deck-driven [`Testbench`]:
//! the `.match` groups reproduce the seed's per-device mismatch ordering
//! (every device carries local parameters, pairs declared jointly).

use specwise_linalg::DVec;

use crate::warm::WarmStartCache;
use crate::{
    CircuitEnv, CktError, DesignSpace, OpampMetrics, OperatingPoint, OperatingRange,
    SlewRateMethod, Spec, StatSpace, Technology, Testbench,
};

/// The annotated deck defining the environment. The `.match` flattening
/// order (m1 m2 m3 m4 m5 m6 m7 m8 mt mb1 mb2) fixes the statistical
/// parameter ordering.
const DECK: &str = "\
.name folded-cascode opamp
.nodes vdd inp out f1 f2 o1 tail vbn vbp vcp
.design w1 um 4.0 400.0 36.0
.design l1 um 0.6 10.0 1.0
.design w3 um 4.0 400.0 70.0
.design l3 um 0.6 10.0 1.0
.design w5 um 4.0 400.0 60.0
.design l5 um 0.6 10.0 0.8
.design w7 um 4.0 400.0 11.0
.design l7 um 0.6 10.0 1.0
.design wt um 4.0 400.0 36.0
.design ib uA 2.0 200.0 10.0
.range temp -40.0 125.0
.range vdd 3.0 3.6
.spec A0 dB min 40.0 dcgain
.spec ft MHz min 40.0 ugf
.spec CMRR dB min 80.0 cmrr
.spec SRp V/us min 35.0 slew
.spec Power mW max 3.5 power
.match m1 m2
.match m3 m4
.match m5 m6
.match m7 m8
.match mt
.match mb1
.match mb2
.tb vinp VINP
.tb vinn VINN
.tb out out
.tb vdd VDD
.tb tail mt
.tb slewcap CL
VDD vdd 0 {vdd}
VINP inp 0 {vcm}
VINN inn 0 {vcm}
VCASC vdd vcp 1.5
IB1 vdd vbn {ib}
IB2 vbp 0 {ib}
m1 f1 inp tail 0 NMOS W={w1} L={l1}
m2 f2 inn tail 0 NMOS W={w1} L={l1}
m3 f1 vbp vdd vdd PMOS W={w3} L={l3}
m4 f2 vbp vdd vdd PMOS W={w3} L={l3}
m5 o1 vcp f1 vdd PMOS W={w5} L={l5}
m6 out vcp f2 vdd PMOS W={w5} L={l5}
m7 o1 o1 0 0 NMOS W={w7} L={l7}
m8 out o1 0 0 NMOS W={w7} L={l7}
mt tail vbn 0 0 NMOS W={wt} L=1e-6
mb1 vbn vbn 0 0 NMOS W=10e-6 L=2e-6
mb2 vbp vbp vdd vdd PMOS W=20e-6 L=2e-6
CL out 0 2.0e-12
.end
";

/// The folded-cascode opamp environment (paper Fig. 7).
///
/// # Example
///
/// ```
/// use specwise_ckt::{CircuitEnv, FoldedCascode};
/// use specwise_linalg::DVec;
///
/// # fn main() -> Result<(), specwise_ckt::CktError> {
/// let env = FoldedCascode::paper_setup();
/// let perf = env.eval_performances(
///     &env.design_space().initial(),
///     &DVec::zeros(env.stat_dim()),
///     &env.operating_range().nominal(),
/// )?;
/// // A0 of the nominal initial design is comfortably above 40 dB.
/// assert!(perf[0] > 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FoldedCascode {
    tb: Testbench,
}

impl FoldedCascode {
    /// The paper's experimental setup: initial sizing chosen so that the
    /// initial design is feasible w.r.t. the functional constraints but
    /// violates the ft and CMRR specs at the worst-case operating corner
    /// (Table 1, "Initial" rows).
    pub fn paper_setup() -> Self {
        FoldedCascode {
            tb: Testbench::from_deck(DECK).expect("embedded folded-cascode deck is valid"),
        }
    }

    /// The annotated deck this environment is compiled from.
    pub fn deck() -> &'static str {
        DECK
    }

    /// Replaces the slew-rate extraction method.
    pub fn with_sr_method(mut self, method: SlewRateMethod) -> Self {
        self.tb = self.tb.with_sr_method(method);
        self
    }

    /// Forces the DC warm-start cache on or off (overriding the
    /// `SPECWISE_WARM_START` environment knob); used by benchmarks and
    /// A/B comparisons.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.tb = self.tb.with_warm_start(enabled);
        self
    }

    /// The DC warm-start cache (e.g. to clear between benchmark runs).
    pub fn warm_cache(&self) -> &WarmStartCache {
        self.tb.warm_cache()
    }

    /// The technology card in use.
    pub fn technology(&self) -> &Technology {
        self.tb.technology()
    }

    /// Full metric set (physical units) at one evaluation point — the
    /// low-level view behind [`CircuitEnv::eval_performances`].
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    pub fn metrics(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<OpampMetrics, CktError> {
        self.tb.metrics(d, s_hat, theta)
    }
}

impl CircuitEnv for FoldedCascode {
    fn name(&self) -> &str {
        self.tb.name()
    }

    fn design_space(&self) -> &DesignSpace {
        self.tb.design_space()
    }

    fn stat_space(&self) -> &StatSpace {
        self.tb.stat_space()
    }

    fn specs(&self) -> &[Spec] {
        self.tb.specs()
    }

    fn operating_range(&self) -> &OperatingRange {
        self.tb.operating_range()
    }

    fn constraint_names(&self) -> Vec<String> {
        self.tb.constraint_names()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        self.tb.eval_performances(d, s_hat, theta)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.tb.eval_constraints(d)
    }

    fn sim_count(&self) -> u64 {
        self.tb.sim_count()
    }

    fn reset_sim_count(&self) {
        self.tb.reset_sim_count();
    }

    fn set_sim_phase(&self, phase: crate::SimPhase) {
        self.tb.set_sim_phase(phase);
    }

    fn sim_phase_counts(&self) -> [u64; crate::SimPhase::COUNT] {
        self.tb.sim_phase_counts()
    }

    fn warm_commit(&self) {
        self.tb.warm_commit();
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        self.tb.eval_margins_perturbed(d, s_hat, theta, directions)
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        self.tb.eval_margins_samples(d, points)
    }

    fn adjoint_solve_count(&self) -> u64 {
        self.tb.adjoint_solve_count()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.tb.fd_sims_avoided()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> FoldedCascode {
        FoldedCascode::paper_setup()
    }

    #[test]
    fn nominal_design_simulates() {
        let e = env();
        let d0 = e.design_space().initial();
        let s0 = DVec::zeros(e.stat_dim());
        let theta = e.operating_range().nominal();
        let m = e.metrics(&d0, &s0, &theta).unwrap();
        assert!(m.a0_db > 40.0, "A0 = {} dB", m.a0_db);
        assert!(m.ft_hz > 10e6, "ft = {} Hz", m.ft_hz);
        assert!(m.cmrr_db > 40.0, "CMRR = {} dB", m.cmrr_db);
        assert!(m.power_w > 0.0 && m.power_w < 3.5e-3, "P = {} W", m.power_w);
        assert!(m.slew_v_per_s > 10e6, "SR = {} V/s", m.slew_v_per_s);
    }

    #[test]
    fn initial_design_is_feasible() {
        let e = env();
        let c = e.eval_constraints(&e.design_space().initial()).unwrap();
        let names = e.constraint_names();
        assert_eq!(c.len(), names.len());
        for (i, name) in names.iter().enumerate() {
            assert!(c[i] >= 0.0, "constraint {name} violated: {}", c[i]);
        }
    }

    #[test]
    fn sim_counter_increments() {
        let e = env();
        e.reset_sim_count();
        let _ = e
            .eval_performances(
                &e.design_space().initial(),
                &DVec::zeros(e.stat_dim()),
                &e.operating_range().nominal(),
            )
            .unwrap();
        assert!(e.sim_count() >= 5, "count = {}", e.sim_count());
    }

    #[test]
    fn stat_space_order_matches_seed_layout() {
        // 5 globals, then vth/beta locals for every device in netlist order.
        let e = env();
        assert_eq!(e.stat_dim(), 5 + 2 * 11);
        assert_eq!(e.stat_space().index_of("vth_m1"), Some(5));
        assert_eq!(e.stat_space().index_of("beta_mb2"), Some(5 + 2 * 11 - 1));
        let pairs = Testbench::from_deck(FoldedCascode::deck())
            .unwrap()
            .stat_map()
            .pairs()
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect::<Vec<_>>();
        assert_eq!(
            pairs,
            vec![
                ("m1".to_string(), "m2".to_string()),
                ("m3".to_string(), "m4".to_string()),
                ("m5".to_string(), "m6".to_string()),
                ("m7".to_string(), "m8".to_string()),
            ]
        );
    }

    #[test]
    fn mismatch_degrades_cmrr() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let base = e.metrics(&d0, &s0, &theta).unwrap().cmrr_db;
        // Push the mirror pair apart along the mismatch line. (Input-pair
        // Vth mismatch is largely absorbed as input offset; the mirror and
        // current-source pairs are the CMRR-critical ones.)
        let mut s = DVec::zeros(e.stat_dim());
        s[e.stat_space().index_of("vth_m7").unwrap()] = 3.0;
        s[e.stat_space().index_of("vth_m8").unwrap()] = -3.0;
        let worse = e.metrics(&d0, &s, &theta).unwrap().cmrr_db;
        assert!(worse < base, "mismatch must reduce CMRR: {worse} vs {base}");
    }

    #[test]
    fn neutral_direction_is_benign() {
        let e = env();
        let d0 = e.design_space().initial();
        let theta = e.operating_range().nominal();
        let s0 = DVec::zeros(e.stat_dim());
        let base = e.metrics(&d0, &s0, &theta).unwrap().cmrr_db;
        let mut s_ml = DVec::zeros(e.stat_dim());
        s_ml[e.stat_space().index_of("vth_m7").unwrap()] = 2.0;
        s_ml[e.stat_space().index_of("vth_m8").unwrap()] = -2.0;
        let ml = e.metrics(&d0, &s_ml, &theta).unwrap().cmrr_db;
        let mut s_nl = DVec::zeros(e.stat_dim());
        s_nl[e.stat_space().index_of("vth_m7").unwrap()] = 2.0;
        s_nl[e.stat_space().index_of("vth_m8").unwrap()] = 2.0;
        let nl = e.metrics(&d0, &s_nl, &theta).unwrap().cmrr_db;
        // Neutral-line deviation must hurt far less than mismatch-line.
        assert!(
            base - nl < 0.5 * (base - ml),
            "NL drop {} vs ML drop {}",
            base - nl,
            base - ml
        );
    }

    #[test]
    fn wrong_dimensions_rejected() {
        let e = env();
        let theta = e.operating_range().nominal();
        assert!(matches!(
            e.eval_performances(&DVec::zeros(3), &DVec::zeros(e.stat_dim()), &theta),
            Err(CktError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            e.eval_performances(&e.design_space().initial(), &DVec::zeros(2), &theta),
            Err(CktError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn margins_match_specs() {
        let e = env();
        let d0 = e.design_space().initial();
        let s0 = DVec::zeros(e.stat_dim());
        let theta = e.operating_range().nominal();
        let perf = e.eval_performances(&d0, &s0, &theta).unwrap();
        let margins = e.eval_margins(&d0, &s0, &theta).unwrap();
        for (i, spec) in e.specs().iter().enumerate() {
            assert!((margins[i] - spec.margin(perf[i])).abs() < 1e-12);
        }
    }
}
