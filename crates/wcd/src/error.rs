use std::error::Error;
use std::fmt;

use specwise_ckt::CktError;

/// Errors produced by the worst-case analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WcdError {
    /// The underlying circuit evaluation failed.
    Circuit(CktError),
    /// A vector has the wrong length.
    DimensionMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// The worst-case search could not make progress (vanishing gradient).
    DegenerateGradient {
        /// Specification index.
        spec: usize,
    },
    /// Invalid option value.
    InvalidOption {
        /// What was wrong.
        reason: &'static str,
    },
}

impl WcdError {
    /// `true` when the error is a failure of the simulation itself (see
    /// [`CktError::is_simulation_failure`]) — the class degradation
    /// policies may absorb. Configuration, option, and dimension errors
    /// must propagate.
    pub fn is_simulation_failure(&self) -> bool {
        matches!(self, WcdError::Circuit(c) if c.is_simulation_failure())
    }
}

impl fmt::Display for WcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcdError::Circuit(e) => write!(f, "circuit evaluation failed: {e}"),
            WcdError::DimensionMismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} vector has length {found}, expected {expected}")
            }
            WcdError::DegenerateGradient { spec } => {
                write!(
                    f,
                    "worst-case search stalled for spec {spec}: gradient vanished"
                )
            }
            WcdError::InvalidOption { reason } => write!(f, "invalid option: {reason}"),
        }
    }
}

impl Error for WcdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WcdError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CktError> for WcdError {
    fn from(e: CktError) -> Self {
        WcdError::Circuit(e)
    }
}
