//! Tuning options of the worst-case analysis.

/// Where the spec-wise performance linearizations are anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearizationPoint {
    /// At the per-spec worst-case point `ŝ_wc⁽ⁱ⁾` (the paper's method).
    WorstCase,
    /// At the nominal point `ŝ = 0` — the Table 4 ablation, which the paper
    /// shows fails to improve the true yield.
    Nominal,
}

/// Options of the worst-case analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcOptions {
    /// Finite-difference step in the standardized statistical space
    /// (units of σ).
    pub fd_step_s: f64,
    /// Relative finite-difference step in the design space.
    pub fd_step_d: f64,
    /// Maximum SQP iterations of the worst-case distance search.
    pub max_sqp_iters: usize,
    /// Cap on `‖ŝ_wc‖` — specs that cannot fail within this many sigmas are
    /// treated as uncritical (β_wc clamped to this value).
    pub beta_max: f64,
    /// Convergence: the margin at the worst-case point must shrink below
    /// `margin_tol_rel · ‖∇margin‖` (≈ that many sigmas of residual
    /// distance error).
    pub margin_tol_rel: f64,
    /// Anchoring of the linearizations.
    pub linearization_point: LinearizationPoint,
    /// Whether to add mirrored models at `−ŝ_wc` for performances with
    /// semidefinite-quadratic (mismatch) behaviour (paper Eqs. 21–22).
    pub mirrored_models: bool,
}

impl Default for WcOptions {
    fn default() -> Self {
        WcOptions {
            fd_step_s: 0.01,
            fd_step_d: 1e-3,
            max_sqp_iters: 8,
            beta_max: 8.0,
            margin_tol_rel: 5e-3,
            linearization_point: LinearizationPoint::WorstCase,
            mirrored_models: true,
        }
    }
}

impl WcOptions {
    /// Validates option values.
    ///
    /// # Errors
    ///
    /// Returns [`crate::WcdError::InvalidOption`] for non-positive steps or
    /// tolerances.
    pub fn validate(&self) -> Result<(), crate::WcdError> {
        if !(self.fd_step_s > 0.0) {
            return Err(crate::WcdError::InvalidOption {
                reason: "fd_step_s must be > 0",
            });
        }
        if !(self.fd_step_d > 0.0) {
            return Err(crate::WcdError::InvalidOption {
                reason: "fd_step_d must be > 0",
            });
        }
        if self.max_sqp_iters == 0 {
            return Err(crate::WcdError::InvalidOption {
                reason: "max_sqp_iters must be > 0",
            });
        }
        if !(self.beta_max > 0.0) {
            return Err(crate::WcdError::InvalidOption {
                reason: "beta_max must be > 0",
            });
        }
        if !(self.margin_tol_rel > 0.0) {
            return Err(crate::WcdError::InvalidOption {
                reason: "margin_tol_rel must be > 0",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(WcOptions::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let mut o = WcOptions::default();
        o.fd_step_s = 0.0;
        assert!(o.validate().is_err());
        let mut o = WcOptions::default();
        o.max_sqp_iters = 0;
        assert!(o.validate().is_err());
        let mut o = WcOptions::default();
        o.beta_max = -1.0;
        assert!(o.validate().is_err());
    }
}
