//! Worst-case operating-point search by corner enumeration (paper Eq. 2).

use specwise_ckt::OperatingPoint;
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::DVec;

use crate::WcdError;

/// Finds, for every specification, the corner of the operating range `Θ`
/// with the smallest margin — the worst-case operating point `θ_wc⁽ⁱ⁾`
/// (paper Eq. 2, specialized to margins so that `≤` specs are covered too).
///
/// Returns per-spec `(θ_wc, margin at θ_wc)`. Costs one simulation per
/// corner (`2^dim(Θ)` total), shared across all specs — the sharing the
/// paper's effort bound `N* ≤ N·min(n_spec, 2^dim(Θ))` exploits. The
/// corners are independent and go out as one batch.
///
/// # Errors
///
/// Propagates circuit-evaluation errors.
pub fn worst_case_corners<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
) -> Result<Vec<(OperatingPoint, f64)>, WcdError> {
    let corners = env.operating_range().corners();
    let n_spec = env.specs().len();
    let points: Vec<EvalPoint> = corners
        .iter()
        .map(|theta| EvalPoint::new(d.clone(), s_hat.clone(), *theta))
        .collect();
    let mut best: Vec<Option<(OperatingPoint, f64)>> = vec![None; n_spec];
    for (theta, result) in corners.iter().zip(env.eval_margins_batch(&points)) {
        let margins = result?;
        for i in 0..n_spec {
            match &best[i] {
                Some((_, m)) if *m <= margins[i] => {}
                _ => best[i] = Some((*theta, margins[i])),
            }
        }
    }
    Ok(best
        .into_iter()
        .map(|b| b.expect("at least one corner"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, OperatingRange, Spec, SpecKind};

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 0.0,
            )]))
            .stat_dim(1)
            .operating_range(OperatingRange::new(-40.0, 125.0, 3.0, 3.6))
            // f0 worst at high temperature, f1 worst at low VDD.
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::UpperBound, 10.0))
            .performances(|d, s, th| {
                DVec::from_slice(&[
                    d[0] + s[0] - 0.01 * th.temp_c,
                    5.0 + s[0] + 2.0 * (3.6 - th.vdd),
                ])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn picks_correct_corners() {
        let e = env();
        let wc = worst_case_corners(&e, &DVec::from_slice(&[1.0]), &DVec::zeros(1)).unwrap();
        // f0 (lower bound) is smallest at T = 125.
        assert_eq!(wc[0].0.temp_c, 125.0);
        assert!((wc[0].1 - (1.0 - 1.25)).abs() < 1e-12);
        // f1 (upper bound): margin = 10 − f1, smallest when f1 largest → low VDD.
        assert_eq!(wc[1].0.vdd, 3.0);
        assert!((wc[1].1 - (10.0 - 5.0 - 1.2)).abs() < 1e-12);
    }

    #[test]
    fn uses_four_simulations() {
        let e = env();
        e.reset_sim_count();
        let _ = worst_case_corners(&e, &DVec::from_slice(&[0.0]), &DVec::zeros(1)).unwrap();
        assert_eq!(e.sim_count(), 4);
    }
}
