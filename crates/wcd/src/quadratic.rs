//! Diagonal-quadratic margin models — the "model of higher order" the
//! paper argues is *unnecessary* once the feasibility region and worst-case
//! anchoring are in place (Sec. 5.1: "no model of higher order is needed
//! when considering functional constraints").
//!
//! This module exists to test that claim quantitatively: a
//! [`QuadraticMarginModel`] augments the spec-wise linearization with a
//! diagonal Hessian estimated by central second differences, and the
//! `specwise` core can estimate yield over either model class so their
//! accuracies can be compared against simulation Monte Carlo (see
//! `tests/model_order.rs` at the workspace root).

use specwise_ckt::OperatingPoint;
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::DVec;

use crate::{SpecLinearization, WcdError};

/// A margin model with linear design dependence and diagonal-quadratic
/// statistical dependence:
///
/// ```text
/// m̄(d, ŝ) = m₀ + g·(ŝ − ŝ₀) + ½·Σᵢ hᵢ·(ŝᵢ − ŝ₀ᵢ)² + g_d·(d − d_f)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticMarginModel {
    /// Specification index.
    pub spec: usize,
    /// Worst-case operating point.
    pub theta_wc: OperatingPoint,
    /// Statistical anchor `ŝ₀`.
    pub s_anchor: DVec,
    /// Design anchor `d_f`.
    pub d_f: DVec,
    /// Margin at the anchor.
    pub margin_at_anchor: f64,
    /// Central-difference gradient w.r.t. `ŝ` at the anchor.
    pub grad_s: DVec,
    /// Diagonal of the Hessian w.r.t. `ŝ` at the anchor.
    pub hess_diag: DVec,
    /// Gradient w.r.t. `d` at the anchor.
    pub grad_d: DVec,
}

impl QuadraticMarginModel {
    /// Fits the model at `(d_f, s_anchor, theta)` with central differences
    /// of step `h` (σ units): `2·n_s + 1` margin evaluations plus the
    /// design gradient.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; rejects non-positive steps.
    pub fn fit<E: Evaluator + ?Sized>(
        env: &E,
        d_f: &DVec,
        spec: usize,
        theta: &OperatingPoint,
        s_anchor: &DVec,
        h: f64,
    ) -> Result<Self, WcdError> {
        if !(h > 0.0) {
            return Err(WcdError::InvalidOption {
                reason: "fd step must be > 0",
            });
        }
        let n_s = env.stat_dim();
        if s_anchor.len() != n_s {
            return Err(WcdError::DimensionMismatch {
                what: "stat",
                expected: n_s,
                found: s_anchor.len(),
            });
        }
        // One batch: the anchor plus ± probes per axis.
        let mut points = Vec::with_capacity(2 * n_s + 1);
        points.push(EvalPoint::new(d_f.clone(), s_anchor.clone(), *theta));
        for i in 0..n_s {
            let mut sp = s_anchor.clone();
            sp[i] += h;
            let mut sm = s_anchor.clone();
            sm[i] -= h;
            points.push(EvalPoint::new(d_f.clone(), sp, *theta));
            points.push(EvalPoint::new(d_f.clone(), sm, *theta));
        }
        let mut results = env.eval_margins_batch(&points).into_iter();
        let m0 = results
            .next()
            .expect("batch returns one result per point")?[spec];
        let mut grad_s = DVec::zeros(n_s);
        let mut hess_diag = DVec::zeros(n_s);
        for i in 0..n_s {
            let mp = results.next().expect("one +h probe per axis")?[spec];
            let mm = results.next().expect("one -h probe per axis")?[spec];
            grad_s[i] = (mp - mm) / (2.0 * h);
            hess_diag[i] = (mp - 2.0 * m0 + mm) / (h * h);
        }
        let (_, jac_d) = crate::margins_gradient_d(env, d_f, s_anchor, theta, 1e-3)?;
        Ok(QuadraticMarginModel {
            spec,
            theta_wc: *theta,
            s_anchor: s_anchor.clone(),
            d_f: d_f.clone(),
            margin_at_anchor: m0,
            grad_s,
            hess_diag,
            grad_d: jac_d.row(spec),
        })
    }

    /// The statistical (sample-constant) part of the model at `ŝ`.
    pub fn sample_part(&self, s_hat: &DVec) -> f64 {
        let mut acc = self.margin_at_anchor;
        for i in 0..self.grad_s.len() {
            let ds = s_hat[i] - self.s_anchor[i];
            acc += self.grad_s[i] * ds + 0.5 * self.hess_diag[i] * ds * ds;
        }
        acc
    }

    /// The design shift `g_d·(d − d_f)`.
    pub fn design_shift(&self, d: &DVec) -> f64 {
        self.grad_d.dot(&(d - &self.d_f))
    }

    /// Full model evaluation.
    pub fn eval(&self, d: &DVec, s_hat: &DVec) -> f64 {
        self.sample_part(s_hat) + self.design_shift(d)
    }

    /// Drops the quadratic term, yielding the corresponding (central
    /// difference) linearization.
    pub fn to_linear(&self) -> SpecLinearization {
        SpecLinearization {
            spec: self.spec,
            mirrored: false,
            theta_wc: self.theta_wc,
            s_wc: self.s_anchor.clone(),
            d_f: self.d_f.clone(),
            margin_at_anchor: self.margin_at_anchor,
            grad_s: self.grad_s.clone(),
            grad_d: self.grad_d.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    /// margin = 2 + 3·s0 − s1² + 0.5·d0 — linear + pure diagonal quadratic.
    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, 0.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[2.0 + 3.0 * s[0] - s[1] * s[1] + 0.5 * d[0]])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn fit_recovers_exact_coefficients() {
        let e = env();
        let theta = e.operating_range().nominal();
        let d = DVec::from_slice(&[0.0]);
        let anchor = DVec::from_slice(&[0.3, -0.4]);
        let q = QuadraticMarginModel::fit(&e, &d, 0, &theta, &anchor, 0.05).unwrap();
        // grad = (3, −2·s1) = (3, 0.8); hess = (0, −2); grad_d = 0.5.
        assert!((q.grad_s[0] - 3.0).abs() < 1e-9, "g0 = {}", q.grad_s[0]);
        assert!((q.grad_s[1] - 0.8).abs() < 1e-9, "g1 = {}", q.grad_s[1]);
        assert!(q.hess_diag[0].abs() < 1e-7, "h0 = {}", q.hess_diag[0]);
        assert!(
            (q.hess_diag[1] + 2.0).abs() < 1e-7,
            "h1 = {}",
            q.hess_diag[1]
        );
        assert!((q.grad_d[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn model_is_exact_for_matching_function() {
        let e = env();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        let anchor = DVec::zeros(2);
        let q = QuadraticMarginModel::fit(&e, &d0, 0, &theta, &anchor, 0.05).unwrap();
        for (dd, s0, s1) in [(0.0, 1.0, 1.0), (2.0, -0.7, 0.4), (-1.0, 0.0, 2.0)] {
            let d = DVec::from_slice(&[dd]);
            let s = DVec::from_slice(&[s0, s1]);
            let truth = e.eval_margins(&d, &s, &theta).unwrap()[0];
            assert!(
                (q.eval(&d, &s) - truth).abs() < 1e-6,
                "model {} vs truth {truth}",
                q.eval(&d, &s)
            );
        }
    }

    #[test]
    fn to_linear_drops_curvature() {
        let e = env();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        let q = QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(2), 0.05).unwrap();
        let lin = q.to_linear();
        // At the anchor both agree; away along s1 they diverge by s1².
        let s = DVec::from_slice(&[0.0, 2.0]);
        assert!((q.eval(&d0, &s) - (lin.eval(&d0, &s) - 4.0)).abs() < 1e-6);
    }

    #[test]
    fn validates_inputs() {
        let e = env();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        assert!(QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(2), 0.0).is_err());
        assert!(QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(3), 0.1).is_err());
    }
}
