//! Finite-difference gradients of margins and constraints.
//!
//! TITAN's internal sensitivities are not available to us (DESIGN.md §6), so
//! gradients are forward differences: `n+1` evaluations per gradient. The
//! base point is evaluated first, as its own batch, and only then are the
//! `n` perturbed points issued together — by the time a perturbed solve
//! starts, the base operating point already sits in the environment's
//! warm-start cache and seeds its Newton iteration (DESIGN.md §7). The
//! perturbed points are independent of each other, so an [`EvalService`]
//! fans them out over its worker pool while a plain environment runs them
//! serially; the results are bit-identical either way.
//!
//! [`EvalService`]: specwise_exec::EvalService

use specwise_ckt::OperatingPoint;
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::{DMat, DVec};

use crate::WcdError;

/// Jacobian of all margins w.r.t. the standardized statistical parameters at
/// `(d, ŝ, θ)`, by forward differences with step `h` (σ units).
///
/// Returns `(margins_at_base, jacobian [n_spec × n_s])`.
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h`.
pub fn margins_gradient_s<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let n_s = s_hat.len();
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    let base_point = [EvalPoint::new(d.clone(), s_hat.clone(), *theta)];
    let base = env
        .eval_margins_batch(&base_point)
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let mut points = Vec::with_capacity(n_s);
    for j in 0..n_s {
        let mut s2 = s_hat.clone();
        s2[j] += h;
        points.push(EvalPoint::new(d.clone(), s2, *theta));
    }
    let results = env.eval_margins_batch(&points).into_iter();
    let n_spec = base.len();
    let mut jac = DMat::zeros(n_spec, n_s);
    for (j, result) in results.enumerate() {
        let m2 = result?;
        for i in 0..n_spec {
            jac[(i, j)] = (m2[i] - base[i]) / h;
        }
    }
    Ok((base, jac))
}

/// Jacobian of all margins w.r.t. the design parameters at `(d, ŝ, θ)`.
///
/// The step for parameter `k` is `h_rel·(upper_k − lower_k)`, taken in the
/// direction that stays inside the design box.
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h_rel`.
pub fn margins_gradient_d<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h_rel: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h_rel > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let space = env.design_space();
    let n_d = d.len();
    let mut signed_steps = Vec::with_capacity(n_d);
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    let base_point = [EvalPoint::new(d.clone(), s_hat.clone(), *theta)];
    let base = env
        .eval_margins_batch(&base_point)
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let mut points = Vec::with_capacity(n_d);
    for k in 0..n_d {
        let p = &space.params()[k];
        let step = h_rel * (p.upper - p.lower);
        // Step inward when at the upper bound.
        let signed = if d[k] + step <= p.upper { step } else { -step };
        signed_steps.push(signed);
        let mut d2 = d.clone();
        d2[k] += signed;
        points.push(EvalPoint::new(d2, s_hat.clone(), *theta));
    }
    let results = env.eval_margins_batch(&points).into_iter();
    let n_spec = base.len();
    let mut jac = DMat::zeros(n_spec, n_d);
    for (k, result) in results.enumerate() {
        let m2 = result?;
        for i in 0..n_spec {
            jac[(i, k)] = (m2[i] - base[i]) / signed_steps[k];
        }
    }
    Ok((base, jac))
}

/// Values and Jacobian of the functional constraints `c(d)` at `d`
/// (paper Eq. 15 inputs).
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h_rel`.
pub fn constraint_jacobian<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    h_rel: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h_rel > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let space = env.design_space();
    let n_d = d.len();
    let mut signed_steps = Vec::with_capacity(n_d);
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    let base = env
        .eval_constraints_batch(std::slice::from_ref(d))
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let mut designs = Vec::with_capacity(n_d);
    for k in 0..n_d {
        let p = &space.params()[k];
        let step = h_rel * (p.upper - p.lower);
        let signed = if d[k] + step <= p.upper { step } else { -step };
        signed_steps.push(signed);
        let mut d2 = d.clone();
        d2[k] += signed;
        designs.push(d2);
    }
    let results = env.eval_constraints_batch(&designs).into_iter();
    let n_c = base.len();
    let mut jac = DMat::zeros(n_c, n_d);
    for (k, result) in results.enumerate() {
        let c2 = result?;
        for i in 0..n_c {
            jac[(i, k)] = (c2[i] - base[i]) / signed_steps[k];
        }
    }
    Ok((base, jac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![
                DesignParam::new("a", "", -5.0, 5.0, 1.0),
                DesignParam::new("b", "", 0.0, 10.0, 2.0),
            ]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::UpperBound, 4.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[2.0 * d[0] + 3.0 * s[0] - s[1], d[1] * d[1] + 0.5 * s[1]])
            })
            .constraints(vec!["c0".to_string()], |d| {
                DVec::from_slice(&[d[0] + d[1] - 1.0])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn stat_gradient_matches_analytic() {
        let e = env();
        let theta = e.operating_range().nominal();
        let (m0, jac) = margins_gradient_s(
            &e,
            &DVec::from_slice(&[1.0, 2.0]),
            &DVec::zeros(2),
            &theta,
            1e-5,
        )
        .unwrap();
        assert!((m0[0] - 2.0).abs() < 1e-12);
        // Margin of the upper-bound spec flips the gradient sign.
        assert!((jac[(0, 0)] - 3.0).abs() < 1e-6);
        assert!((jac[(0, 1)] + 1.0).abs() < 1e-6);
        assert!((jac[(1, 1)] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn design_gradient_matches_analytic() {
        let e = env();
        let theta = e.operating_range().nominal();
        let (_, jac) = margins_gradient_d(
            &e,
            &DVec::from_slice(&[1.0, 2.0]),
            &DVec::zeros(2),
            &theta,
            1e-6,
        )
        .unwrap();
        assert!((jac[(0, 0)] - 2.0).abs() < 1e-4);
        // f1 = b² → ∂f1/∂b = 4 at b = 2; margin = 4 − f1 → −4.
        assert!((jac[(1, 1)] + 4.0).abs() < 1e-3);
    }

    #[test]
    fn design_gradient_steps_inward_at_upper_bound() {
        let e = env();
        let theta = e.operating_range().nominal();
        // b at its upper bound 10: forward step would leave the box.
        let (_, jac) = margins_gradient_d(
            &e,
            &DVec::from_slice(&[1.0, 10.0]),
            &DVec::zeros(2),
            &theta,
            1e-6,
        )
        .unwrap();
        assert!((jac[(1, 1)] + 20.0).abs() < 1e-2);
    }

    #[test]
    fn design_gradient_at_upper_bound_identical_through_parallel_service() {
        // Regression: the batched/parallel path must take the same inward
        // step as the serial path when parameters sit at their upper bounds,
        // including the all-parameters-at-bound corner of the design box.
        use specwise_exec::{EvalService, ExecConfig};
        let e = env();
        let theta = e.operating_range().nominal();
        let corner = DVec::from_slice(&[5.0, 10.0]); // both at upper bound
        let (m_serial, jac_serial) =
            margins_gradient_d(&e, &corner, &DVec::zeros(2), &theta, 1e-6).unwrap();
        for workers in [1usize, 2, 8] {
            let service = EvalService::new(
                &e,
                ExecConfig::serial()
                    .with_workers(workers)
                    .with_cache_capacity(0),
            );
            let (m, jac) =
                margins_gradient_d(&service, &corner, &DVec::zeros(2), &theta, 1e-6).unwrap();
            assert_eq!(m.as_slice(), m_serial.as_slice(), "workers={workers}");
            for i in 0..2 {
                for k in 0..2 {
                    assert_eq!(jac[(i, k)], jac_serial[(i, k)], "workers={workers}");
                }
            }
        }
        // And the inward-step sign is actually exercised: f1 = b² at the
        // bound b = 10 has slope 20, margin flips it to −20.
        assert!((jac_serial[(1, 1)] + 20.0).abs() < 1e-2);
    }

    #[test]
    fn constraint_jacobian_matches() {
        let e = env();
        let (c0, jac) = constraint_jacobian(&e, &DVec::from_slice(&[1.0, 2.0]), 1e-6).unwrap();
        assert!((c0[0] - 2.0).abs() < 1e-12);
        assert!((jac[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_step() {
        let e = env();
        let theta = e.operating_range().nominal();
        assert!(margins_gradient_s(&e, &DVec::zeros(2), &DVec::zeros(2), &theta, 0.0).is_err());
        assert!(constraint_jacobian(&e, &DVec::zeros(2), -1.0).is_err());
    }
}
