//! Margin and constraint Jacobians: forward differences or adjoint
//! sensitivities.
//!
//! Two backends produce the margin Jacobians (selected by
//! `SPECWISE_GRAD=fd|adjoint|auto`, overridable with [`set_grad_override`]):
//!
//! - **Forward differences** (`fd`): `n+1` evaluations per gradient. The
//!   base point is evaluated first, as its own batch, and only then are the
//!   `n` perturbed points issued together — by the time a perturbed solve
//!   starts, the base operating point already sits in the environment's
//!   warm-start cache and seeds its Newton iteration (DESIGN.md §7). The
//!   perturbed points are independent of each other, so an [`EvalService`]
//!   fans them out over its worker pool while a plain environment runs them
//!   serially; the results are bit-identical either way.
//!
//! - **Adjoint sensitivities** (`adjoint`, and the default `auto`): one base
//!   measurement, then every perturbed point is priced from the *cached*
//!   base factorizations — a frozen-Jacobian Newton step per DC
//!   configuration and transposed-solve transfer-function updates for the
//!   AC metrics (DESIGN.md §6). The perturbed *margins* still enter the
//!   same forward-difference quotient as the `fd` backend, so downstream
//!   consumers see the identical `(base, jacobian)` contract; only the
//!   price per column changes. Environments that cannot take the shortcut
//!   (no MNA system behind them, transient slew extraction, degenerate
//!   crossing, sensitivity solve failure) report `None` and the call falls
//!   back to forward differences transparently.
//!
//! [`constraint_jacobian`] always uses forward differences: the functional
//! constraints are cheap sizing rules of `d` alone, with no linear system
//! behind them to differentiate.
//!
//! [`Evaluator::eval_margins_perturbed`]: specwise_exec::Evaluator::eval_margins_perturbed
//! [`EvalService`]: specwise_exec::EvalService

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use specwise_ckt::OperatingPoint;
use specwise_exec::{EvalPoint, Evaluator};
use specwise_linalg::{DMat, DVec};

use crate::WcdError;

/// Which machinery computes the margin Jacobians.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradBackend {
    /// Forward differences: one full evaluation per column.
    Fd,
    /// Adjoint sensitivities on the cached base factorizations, falling
    /// back to forward differences when the environment reports the
    /// shortcut unavailable (`eval_margins_perturbed` returns `None`).
    Adjoint,
    /// Resolve to the best available backend: currently identical to
    /// [`GradBackend::Adjoint`] (try the shortcut, fall back to FD). The
    /// named variant lets configuration say "whatever is best" distinctly
    /// from an explicit request.
    Auto,
}

/// 0 = no override (env / auto), 1 = auto, 2 = fd, 3 = adjoint.
static GRAD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the gradient backend process-wide, taking precedence over the
/// `SPECWISE_GRAD` environment variable. `None` restores env/auto
/// behaviour. Intended for benches and parity tests; library code should
/// prefer the `_with` variants, which take the backend explicitly and
/// cannot race.
pub fn set_grad_override(choice: Option<GradBackend>) {
    let v = match choice {
        None => 0,
        Some(GradBackend::Auto) => 1,
        Some(GradBackend::Fd) => 2,
        Some(GradBackend::Adjoint) => 3,
    };
    GRAD_OVERRIDE.store(v, Ordering::SeqCst);
}

impl std::str::FromStr for GradBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fd" => Ok(GradBackend::Fd),
            "adjoint" => Ok(GradBackend::Adjoint),
            "auto" => Ok(GradBackend::Auto),
            other => Err(format!("unknown gradient backend {other:?}")),
        }
    }
}

fn env_backend() -> GradBackend {
    specwise_ckt::env_knob::parse_env_knob("SPECWISE_GRAD").unwrap_or(GradBackend::Auto)
}

/// The gradient backend under the current override/env/auto policy.
pub fn grad_backend() -> GradBackend {
    match GRAD_OVERRIDE.load(Ordering::SeqCst) {
        1 => GradBackend::Auto,
        2 => GradBackend::Fd,
        3 => GradBackend::Adjoint,
        _ => env_backend(),
    }
}

/// Forward-difference quotients `(m₂ − base) / step`, one column each.
fn quotients(base: &DVec, perturbed: &[DVec], steps: &[f64]) -> DMat {
    let n_spec = base.len();
    let mut jac = DMat::zeros(n_spec, perturbed.len());
    for (j, m2) in perturbed.iter().enumerate() {
        for i in 0..n_spec {
            jac[(i, j)] = (m2[i] - base[i]) / steps[j];
        }
    }
    jac
}

/// Jacobian of all margins w.r.t. the standardized statistical parameters at
/// `(d, ŝ, θ)`, with step `h` (σ units), under the process-wide backend
/// policy ([`grad_backend`]).
///
/// Returns `(margins_at_base, jacobian [n_spec × n_s])`.
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h`.
pub fn margins_gradient_s<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h: f64,
) -> Result<(DVec, DMat), WcdError> {
    margins_gradient_s_with(env, grad_backend(), d, s_hat, theta, h)
}

/// [`margins_gradient_s`] with an explicit backend (race-free in tests).
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h`.
pub fn margins_gradient_s_with<E: Evaluator + ?Sized>(
    env: &E,
    backend: GradBackend,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let n_s = s_hat.len();
    if backend != GradBackend::Fd {
        let mut directions = Vec::with_capacity(n_s);
        for j in 0..n_s {
            let mut s2 = s_hat.clone();
            s2[j] += h;
            directions.push((d.clone(), s2));
        }
        if let Some((base, per)) = env.eval_margins_perturbed(d, s_hat, theta, &directions)? {
            let steps = vec![h; n_s];
            return Ok((base.clone(), quotients(&base, &per, &steps)));
        }
        // Shortcut unavailable here: fall through to forward differences.
    }
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    // The base vectors are shared by reference across all n+1 points.
    let d_arc: Arc<DVec> = Arc::new(d.clone());
    let s_arc: Arc<DVec> = Arc::new(s_hat.clone());
    let base_point = [EvalPoint::new(
        Arc::clone(&d_arc),
        Arc::clone(&s_arc),
        *theta,
    )];
    let base = env
        .eval_margins_batch(&base_point)
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let mut points = Vec::with_capacity(n_s);
    for j in 0..n_s {
        let mut s2 = s_hat.clone();
        s2[j] += h;
        points.push(EvalPoint::new(Arc::clone(&d_arc), s2, *theta));
    }
    let results = env.eval_margins_batch(&points).into_iter();
    let n_spec = base.len();
    let mut jac = DMat::zeros(n_spec, n_s);
    for (j, result) in results.enumerate() {
        let m2 = result?;
        for i in 0..n_spec {
            jac[(i, j)] = (m2[i] - base[i]) / h;
        }
    }
    Ok((base, jac))
}

/// Jacobian of all margins w.r.t. the design parameters at `(d, ŝ, θ)`,
/// under the process-wide backend policy ([`grad_backend`]).
///
/// The step for parameter `k` is `h_rel·(upper_k − lower_k)`, taken in the
/// direction that stays inside the design box.
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h_rel`.
pub fn margins_gradient_d<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h_rel: f64,
) -> Result<(DVec, DMat), WcdError> {
    margins_gradient_d_with(env, grad_backend(), d, s_hat, theta, h_rel)
}

/// [`margins_gradient_d`] with an explicit backend (race-free in tests).
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h_rel`.
pub fn margins_gradient_d_with<E: Evaluator + ?Sized>(
    env: &E,
    backend: GradBackend,
    d: &DVec,
    s_hat: &DVec,
    theta: &OperatingPoint,
    h_rel: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h_rel > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let space = env.design_space();
    let n_d = d.len();
    let mut signed_steps = Vec::with_capacity(n_d);
    let mut perturbed_designs = Vec::with_capacity(n_d);
    for k in 0..n_d {
        let p = &space.params()[k];
        let step = h_rel * (p.upper - p.lower);
        // Step inward when at the upper bound.
        let signed = if d[k] + step <= p.upper { step } else { -step };
        signed_steps.push(signed);
        let mut d2 = d.clone();
        d2[k] += signed;
        perturbed_designs.push(d2);
    }
    if backend != GradBackend::Fd {
        let directions: Vec<(DVec, DVec)> = perturbed_designs
            .iter()
            .map(|d2| (d2.clone(), s_hat.clone()))
            .collect();
        if let Some((base, per)) = env.eval_margins_perturbed(d, s_hat, theta, &directions)? {
            return Ok((base.clone(), quotients(&base, &per, &signed_steps)));
        }
        // Shortcut unavailable here: fall through to forward differences.
    }
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    // The base ŝ is shared by reference across all n+1 points.
    let s_arc: Arc<DVec> = Arc::new(s_hat.clone());
    let base_point = [EvalPoint::new(d.clone(), Arc::clone(&s_arc), *theta)];
    let base = env
        .eval_margins_batch(&base_point)
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let points: Vec<EvalPoint> = perturbed_designs
        .into_iter()
        .map(|d2| EvalPoint::new(d2, Arc::clone(&s_arc), *theta))
        .collect();
    let results = env.eval_margins_batch(&points).into_iter();
    let n_spec = base.len();
    let mut jac = DMat::zeros(n_spec, n_d);
    for (k, result) in results.enumerate() {
        let m2 = result?;
        for i in 0..n_spec {
            jac[(i, k)] = (m2[i] - base[i]) / signed_steps[k];
        }
    }
    Ok((base, jac))
}

/// Values and Jacobian of the functional constraints `c(d)` at `d`
/// (paper Eq. 15 inputs). Always forward differences — the sizing rules
/// carry no linear system to differentiate.
///
/// # Errors
///
/// Propagates circuit-evaluation errors; rejects non-positive `h_rel`.
pub fn constraint_jacobian<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    h_rel: f64,
) -> Result<(DVec, DMat), WcdError> {
    if !(h_rel > 0.0) {
        return Err(WcdError::InvalidOption {
            reason: "fd step must be > 0",
        });
    }
    let space = env.design_space();
    let n_d = d.len();
    let mut signed_steps = Vec::with_capacity(n_d);
    // Base first, alone: seeds the warm-start cache for the perturbed batch.
    let base = env
        .eval_constraints_batch(std::slice::from_ref(d))
        .into_iter()
        .next()
        .expect("batch returns one result per point")?;
    let mut designs = Vec::with_capacity(n_d);
    for k in 0..n_d {
        let p = &space.params()[k];
        let step = h_rel * (p.upper - p.lower);
        let signed = if d[k] + step <= p.upper { step } else { -step };
        signed_steps.push(signed);
        let mut d2 = d.clone();
        d2[k] += signed;
        designs.push(d2);
    }
    let results = env.eval_constraints_batch(&designs).into_iter();
    let n_c = base.len();
    let mut jac = DMat::zeros(n_c, n_d);
    for (k, result) in results.enumerate() {
        let c2 = result?;
        for i in 0..n_c {
            jac[(i, k)] = (c2[i] - base[i]) / signed_steps[k];
        }
    }
    Ok((base, jac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    use adjoint_wrapper::AdjointCapable;

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![
                DesignParam::new("a", "", -5.0, 5.0, 1.0),
                DesignParam::new("b", "", 0.0, 10.0, 2.0),
            ]))
            .stat_dim(2)
            .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("f1", "", SpecKind::UpperBound, 4.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[2.0 * d[0] + 3.0 * s[0] - s[1], d[1] * d[1] + 0.5 * s[1]])
            })
            .constraints(vec!["c0".to_string()], |d| {
                DVec::from_slice(&[d[0] + d[1] - 1.0])
            })
            .build()
            .unwrap()
    }

    /// Lives in its own module so only [`CircuitEnv`] is in method-lookup
    /// scope for the delegation — the blanket `Evaluator` impl would make
    /// every call ambiguous otherwise.
    mod adjoint_wrapper {
        use std::sync::atomic::{AtomicU64, Ordering};

        use specwise_ckt::{
            AnalyticEnv, CircuitEnv, CktError, DesignSpace, OperatingPoint, OperatingRange, Spec,
            StatSpace,
        };
        use specwise_linalg::DVec;

        /// Wraps [`AnalyticEnv`] with an `eval_margins_perturbed` answered
        /// from plain margin evaluations, counting how often the adjoint
        /// entry point is exercised.
        pub(super) struct AdjointCapable {
            inner: AnalyticEnv,
            pub(super) perturbed_calls: AtomicU64,
        }

        impl AdjointCapable {
            pub(super) fn new(inner: AnalyticEnv) -> Self {
                AdjointCapable {
                    inner,
                    perturbed_calls: AtomicU64::new(0),
                }
            }
        }

        impl CircuitEnv for AdjointCapable {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn design_space(&self) -> &DesignSpace {
                self.inner.design_space()
            }
            fn stat_space(&self) -> &StatSpace {
                self.inner.stat_space()
            }
            fn specs(&self) -> &[Spec] {
                self.inner.specs()
            }
            fn operating_range(&self) -> &OperatingRange {
                self.inner.operating_range()
            }
            fn constraint_names(&self) -> Vec<String> {
                self.inner.constraint_names()
            }
            fn eval_performances(
                &self,
                d: &DVec,
                s_hat: &DVec,
                theta: &OperatingPoint,
            ) -> Result<DVec, CktError> {
                self.inner.eval_performances(d, s_hat, theta)
            }
            fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
                self.inner.eval_constraints(d)
            }
            fn sim_count(&self) -> u64 {
                self.inner.sim_count()
            }
            fn reset_sim_count(&self) {
                self.inner.reset_sim_count()
            }
            fn eval_margins_perturbed(
                &self,
                d: &DVec,
                s_hat: &DVec,
                theta: &OperatingPoint,
                directions: &[(DVec, DVec)],
            ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
                self.perturbed_calls.fetch_add(1, Ordering::SeqCst);
                let base = self.inner.eval_margins(d, s_hat, theta)?;
                let mut per = Vec::with_capacity(directions.len());
                for (dp, sp) in directions {
                    per.push(self.inner.eval_margins(dp, sp, theta)?);
                }
                Ok(Some((base, per)))
            }
        }
    }

    #[test]
    fn stat_gradient_matches_analytic() {
        let e = env();
        let theta = e.operating_range().nominal();
        let (m0, jac) = margins_gradient_s(
            &e,
            &DVec::from_slice(&[1.0, 2.0]),
            &DVec::zeros(2),
            &theta,
            1e-5,
        )
        .unwrap();
        assert!((m0[0] - 2.0).abs() < 1e-12);
        // Margin of the upper-bound spec flips the gradient sign.
        assert!((jac[(0, 0)] - 3.0).abs() < 1e-6);
        assert!((jac[(0, 1)] + 1.0).abs() < 1e-6);
        assert!((jac[(1, 1)] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn design_gradient_matches_analytic() {
        let e = env();
        let theta = e.operating_range().nominal();
        let (_, jac) = margins_gradient_d(
            &e,
            &DVec::from_slice(&[1.0, 2.0]),
            &DVec::zeros(2),
            &theta,
            1e-6,
        )
        .unwrap();
        assert!((jac[(0, 0)] - 2.0).abs() < 1e-4);
        // f1 = b² → ∂f1/∂b = 4 at b = 2; margin = 4 − f1 → −4.
        assert!((jac[(1, 1)] + 4.0).abs() < 1e-3);
    }

    #[test]
    fn design_gradient_steps_inward_at_upper_bound() {
        let e = env();
        let theta = e.operating_range().nominal();
        // b at its upper bound 10: forward step would leave the box.
        let (_, jac) = margins_gradient_d(
            &e,
            &DVec::from_slice(&[1.0, 10.0]),
            &DVec::zeros(2),
            &theta,
            1e-6,
        )
        .unwrap();
        assert!((jac[(1, 1)] + 20.0).abs() < 1e-2);
    }

    #[test]
    fn design_gradient_at_upper_bound_identical_through_parallel_service() {
        // Regression: the batched/parallel path must take the same inward
        // step as the serial path when parameters sit at their upper bounds,
        // including the all-parameters-at-bound corner of the design box.
        use specwise_exec::{EvalService, ExecConfig};
        let e = env();
        let theta = e.operating_range().nominal();
        let corner = DVec::from_slice(&[5.0, 10.0]); // both at upper bound
        let (m_serial, jac_serial) =
            margins_gradient_d(&e, &corner, &DVec::zeros(2), &theta, 1e-6).unwrap();
        for workers in [1usize, 2, 8] {
            let service = EvalService::new(
                &e,
                ExecConfig::serial()
                    .with_workers(workers)
                    .with_cache_capacity(0),
            );
            let (m, jac) =
                margins_gradient_d(&service, &corner, &DVec::zeros(2), &theta, 1e-6).unwrap();
            assert_eq!(m.as_slice(), m_serial.as_slice(), "workers={workers}");
            for i in 0..2 {
                for k in 0..2 {
                    assert_eq!(jac[(i, k)], jac_serial[(i, k)], "workers={workers}");
                }
            }
        }
        // And the inward-step sign is actually exercised: f1 = b² at the
        // bound b = 10 has slope 20, margin flips it to −20.
        assert!((jac_serial[(1, 1)] + 20.0).abs() < 1e-2);
    }

    #[test]
    fn constraint_jacobian_matches() {
        let e = env();
        let (c0, jac) = constraint_jacobian(&e, &DVec::from_slice(&[1.0, 2.0]), 1e-6).unwrap();
        assert!((c0[0] - 2.0).abs() < 1e-12);
        assert!((jac[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_step() {
        let e = env();
        let theta = e.operating_range().nominal();
        assert!(margins_gradient_s(&e, &DVec::zeros(2), &DVec::zeros(2), &theta, 0.0).is_err());
        assert!(constraint_jacobian(&e, &DVec::zeros(2), -1.0).is_err());
    }

    #[test]
    fn adjoint_backend_falls_back_on_plain_env() {
        // AnalyticEnv keeps the default `eval_margins_perturbed` (None), so
        // the adjoint backend must fall through to forward differences and
        // reproduce the FD numbers bit for bit.
        let e = env();
        let theta = e.operating_range().nominal();
        let d = DVec::from_slice(&[1.0, 2.0]);
        let s = DVec::zeros(2);
        let (m_fd, j_fd) =
            margins_gradient_s_with(&e, GradBackend::Fd, &d, &s, &theta, 1e-5).unwrap();
        for backend in [GradBackend::Adjoint, GradBackend::Auto] {
            let (m, j) = margins_gradient_s_with(&e, backend, &d, &s, &theta, 1e-5).unwrap();
            assert_eq!(m.as_slice(), m_fd.as_slice());
            for i in 0..2 {
                for k in 0..2 {
                    assert_eq!(j[(i, k)].to_bits(), j_fd[(i, k)].to_bits());
                }
            }
        }
    }

    #[test]
    fn adjoint_backend_uses_perturbed_entry_point() {
        let e = AdjointCapable::new(env());
        let theta = e.operating_range().nominal();
        let d = DVec::from_slice(&[1.0, 2.0]);
        let s = DVec::zeros(2);

        // Fd never touches the adjoint entry point.
        let (_, j_fd) = margins_gradient_s_with(&e, GradBackend::Fd, &d, &s, &theta, 1e-5).unwrap();
        assert_eq!(e.perturbed_calls.load(Ordering::SeqCst), 0);

        // Adjoint goes through it, and the quotients agree with FD because
        // the wrapper answers from the same margin evaluations.
        let (_, j_adj) =
            margins_gradient_s_with(&e, GradBackend::Adjoint, &d, &s, &theta, 1e-5).unwrap();
        assert_eq!(e.perturbed_calls.load(Ordering::SeqCst), 1);
        for i in 0..2 {
            for k in 0..2 {
                assert_eq!(j_adj[(i, k)].to_bits(), j_fd[(i, k)].to_bits());
            }
        }

        // Same on the design side, including the inward step at a bound.
        let corner = DVec::from_slice(&[5.0, 10.0]);
        let (_, jd_fd) =
            margins_gradient_d_with(&e, GradBackend::Fd, &corner, &s, &theta, 1e-6).unwrap();
        let (_, jd_adj) =
            margins_gradient_d_with(&e, GradBackend::Adjoint, &corner, &s, &theta, 1e-6).unwrap();
        assert_eq!(e.perturbed_calls.load(Ordering::SeqCst), 2);
        for i in 0..2 {
            for k in 0..2 {
                assert_eq!(jd_adj[(i, k)].to_bits(), jd_fd[(i, k)].to_bits());
            }
        }
    }

    #[test]
    fn override_takes_precedence_and_restores() {
        let default = grad_backend();
        set_grad_override(Some(GradBackend::Fd));
        assert_eq!(grad_backend(), GradBackend::Fd);
        set_grad_override(Some(GradBackend::Adjoint));
        assert_eq!(grad_backend(), GradBackend::Adjoint);
        set_grad_override(None);
        assert_eq!(grad_backend(), default);
    }
}
