//! The full worst-case analysis of one design point: per-spec worst-case
//! operating corners, worst-case points, spec-wise linearizations and
//! mirrored (quadratic) models.

use specwise_ckt::SimPhase;
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_trace::Tracer;

use crate::corners::worst_case_corners;
use crate::gradient::margins_gradient_d;
use crate::wc_point::{WorstCasePoint, WorstCaseSearch};
use crate::{LinearizationPoint, SpecLinearization, WcOptions, WcdError};

/// Result of a worst-case analysis at one design point.
#[derive(Debug, Clone)]
pub struct WcResult {
    d_f: DVec,
    wc_points: Vec<WorstCasePoint>,
    linearizations: Vec<SpecLinearization>,
    nominal_margins: DVec,
}

impl WcResult {
    /// The analyzed design point.
    pub fn design(&self) -> &DVec {
        &self.d_f
    }

    /// Worst-case points, one per specification (in spec order).
    pub fn worst_case_points(&self) -> &[WorstCasePoint] {
        &self.wc_points
    }

    /// All linear margin models (one per spec, plus mirrored twins).
    pub fn linearizations(&self) -> &[SpecLinearization] {
        &self.linearizations
    }

    /// Margins at the nominal statistical point, each at its spec's
    /// worst-case operating corner — the `f⁽ⁱ⁾ − f_b⁽ⁱ⁾` rows of the
    /// paper's tables.
    pub fn nominal_margins(&self) -> &DVec {
        &self.nominal_margins
    }
}

/// Orchestrates the worst-case analysis (paper Secs. 2, 5.2).
///
/// Generic over the [`Evaluator`], so the same analysis runs against a bare
/// environment or an [`EvalService`](specwise_exec::EvalService) with
/// parallel batches and caching.
pub struct WcAnalysis<'e, E: Evaluator + ?Sized> {
    env: &'e E,
    options: WcOptions,
    tracer: Tracer,
}

impl<E: Evaluator + ?Sized> Clone for WcAnalysis<'_, E> {
    fn clone(&self) -> Self {
        WcAnalysis {
            env: self.env,
            options: self.options,
            tracer: self.tracer.clone(),
        }
    }
}

impl<E: Evaluator + ?Sized> std::fmt::Debug for WcAnalysis<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcAnalysis")
            .field("env", &self.env.name())
            .field("options", &self.options)
            .finish()
    }
}

impl<'e, E: Evaluator + ?Sized> WcAnalysis<'e, E> {
    /// Creates an analysis bound to an evaluator.
    pub fn new(env: &'e E, options: WcOptions) -> Self {
        WcAnalysis {
            env,
            options,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: the analysis then records one `wc_analysis`
    /// span with a `corners` child plus, per specification, a `wcd_spec`
    /// span (carrying `θ_wc`, `ŝ_wc`, `β_wc` and the Eq. 8 search's
    /// simulation count) and a `linearize` span for the design-gradient
    /// finite-difference batch of Eq. 16.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the analysis at the design point `d_f`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors and invalid options. A
    /// [`WcdError::DegenerateGradient`] from a single spec is tolerated by
    /// anchoring that spec's model at the nominal point instead.
    pub fn run(&self, d_f: &DVec) -> Result<WcResult, WcdError> {
        self.options.validate()?;
        let env = self.env;
        let n_spec = env.specs().len();
        env.set_sim_phase(SimPhase::Wcd);

        let mut analysis_span = self.tracer.span("wc_analysis");
        let tr = analysis_span.tracer();

        // Per-spec worst-case operating corners (shared corner sweep).
        let corners = {
            let mut span = tr.span("corners");
            let sims_before = env.sim_count();
            let corners = worst_case_corners(env, d_f, &DVec::zeros(env.stat_dim()))?;
            span.add_count("sims", env.sim_count() - sims_before);
            corners
        };
        let nominal_margins: DVec = corners.iter().map(|(_, m)| *m).collect();

        let mut wc_points = Vec::with_capacity(n_spec);
        let mut linearizations = Vec::new();
        let search = WorstCaseSearch::new(self.options);

        for spec in 0..n_spec {
            let (theta_wc, nominal_margin) = corners[spec];

            env.set_sim_phase(SimPhase::Wcd);
            let mut wcd_span = tr.span("wcd_spec");
            let sims_before = env.sim_count();
            let wc = match self.options.linearization_point {
                LinearizationPoint::WorstCase => {
                    match search.run(env, d_f, spec, &theta_wc) {
                        Ok(wc) => wc,
                        Err(WcdError::DegenerateGradient { .. }) => {
                            // Spec insensitive to ŝ: anchor at nominal.
                            self.nominal_anchor(d_f, spec, theta_wc, nominal_margin)?
                        }
                        Err(e) => return Err(e),
                    }
                }
                LinearizationPoint::Nominal => {
                    self.nominal_anchor(d_f, spec, theta_wc, nominal_margin)?
                }
            };
            if wcd_span.is_enabled() {
                wcd_span.set_attr("spec", spec);
                wcd_span.set_attr("name", env.specs()[spec].name());
                wcd_span.set_attr("theta_wc", vec![wc.theta_wc.temp_c, wc.theta_wc.vdd]);
                wcd_span.set_attr("s_wc", wc.s_wc.as_slice());
                wcd_span.set_attr("beta_wc", wc.beta_wc);
                wcd_span.set_attr("converged", wc.converged);
                wcd_span.add_count("sims", env.sim_count() - sims_before);
            }
            drop(wcd_span);

            // Design-space gradient at the anchor.
            env.set_sim_phase(SimPhase::Linearization);
            let mut lin_span = tr.span("linearize");
            let sims_before = env.sim_count();
            let (margins_anchor, jac_d) =
                margins_gradient_d(env, d_f, &wc.s_wc, &wc.theta_wc, self.options.fd_step_d)?;
            let lin = SpecLinearization {
                spec,
                mirrored: false,
                theta_wc: wc.theta_wc,
                s_wc: wc.s_wc.clone(),
                d_f: d_f.clone(),
                margin_at_anchor: margins_anchor[spec],
                grad_s: wc.grad_s.clone(),
                grad_d: jac_d.row(spec),
            };

            // Mismatch-shaped (semidefinite quadratic) detection: evaluate
            // once at −ŝ_wc (paper: "only one additional simulation"). For a
            // linear performance the margin there would be ≈ 2·m(0); if it
            // is much lower, the performance degrades on both sides of the
            // nominal point and a mirrored model is added (Eqs. 21–22).
            let mut mirrored = false;
            if self.options.mirrored_models
                && matches!(
                    self.options.linearization_point,
                    LinearizationPoint::WorstCase
                )
                && wc.s_wc.norm2() > 1e-9
            {
                let m_mirror = env.eval_margins(d_f, &(-&wc.s_wc), &wc.theta_wc)?[wc.spec];
                let linear_expectation = 2.0 * wc.nominal_margin - lin.margin_at_anchor;
                if m_mirror < 0.5 * linear_expectation {
                    linearizations.push(lin.to_mirrored());
                    mirrored = true;
                }
            }
            if lin_span.is_enabled() {
                lin_span.set_attr("spec", spec);
                lin_span.set_attr("mirrored", mirrored);
                lin_span.add_count("sims", env.sim_count() - sims_before);
            }
            drop(lin_span);

            linearizations.push(lin);
            wc_points.push(wc);
        }

        if analysis_span.is_enabled() {
            analysis_span.set_attr("n_specs", n_spec);
            analysis_span.set_attr("n_models", linearizations.len());
        }

        Ok(WcResult {
            d_f: d_f.clone(),
            wc_points,
            linearizations,
            nominal_margins,
        })
    }

    /// Builds a nominal-anchored pseudo worst-case point (for the Table 4
    /// ablation and for ŝ-insensitive specs).
    fn nominal_anchor(
        &self,
        d_f: &DVec,
        spec: usize,
        theta_wc: specwise_ckt::OperatingPoint,
        nominal_margin: f64,
    ) -> Result<WorstCasePoint, WcdError> {
        let s0 = DVec::zeros(self.env.stat_dim());
        let (margins, jac) = crate::gradient::margins_gradient_s(
            self.env,
            d_f,
            &s0,
            &theta_wc,
            self.options.fd_step_s,
        )?;
        Ok(WorstCasePoint {
            spec,
            theta_wc,
            s_wc: s0,
            beta_wc: if nominal_margin >= 0.0 {
                self.options.beta_max
            } else {
                -self.options.beta_max
            },
            nominal_margin,
            margin_at_wc: margins[spec],
            grad_s: jac.row(spec),
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    /// Two specs: a linear one and a mismatch-shaped (concave quadratic) one.
    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[
                    d[0] + 2.0 * s[0] + s[1],
                    // Mismatch-shaped: degrades along s0 − s1 in both
                    // directions (cf. Fig. 1's CMRR ridge).
                    d[0] - 0.4 * (s[0] - s[1]) * (s[0] - s[1]) - 0.3 * (s[0] - s[1]),
                ])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn analysis_produces_models_per_spec() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        assert_eq!(res.worst_case_points().len(), 2);
        // The quadratic spec must have received a mirrored twin.
        let mirrored: Vec<_> = res.linearizations().iter().filter(|l| l.mirrored).collect();
        assert_eq!(mirrored.len(), 1, "expected exactly one mirrored model");
        assert_eq!(mirrored[0].spec, 1);
        // The linear spec must not.
        assert!(res
            .linearizations()
            .iter()
            .filter(|l| l.spec == 0)
            .all(|l| !l.mirrored));
    }

    #[test]
    fn linear_spec_distance_correct() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        let wc = &res.worst_case_points()[0];
        // margin = 3 + 2 s0 + s1 → distance 3/√5.
        assert!(
            (wc.beta_wc - 3.0 / 5f64.sqrt()).abs() < 1e-3,
            "beta {}",
            wc.beta_wc
        );
        assert!((res.nominal_margins()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linearization_reproduces_margin_locally() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        let lin = res
            .linearizations()
            .iter()
            .find(|l| l.spec == 0 && !l.mirrored)
            .unwrap();
        // For the exactly linear margin, the model is globally exact.
        let theta = lin.theta_wc;
        for (dd, s0, s1) in [(3.0, 0.0, 0.0), (4.0, 1.0, -2.0), (2.5, -0.3, 0.7)] {
            let dv = DVec::from_slice(&[dd]);
            let sv = DVec::from_slice(&[s0, s1]);
            let truth = e.eval_margins(&dv, &sv, &theta).unwrap()[0];
            let model = lin.eval(&dv, &sv);
            assert!((truth - model).abs() < 1e-2, "{truth} vs {model}");
        }
    }

    #[test]
    fn nominal_mode_anchors_at_zero() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let mut opts = WcOptions::default();
        opts.linearization_point = LinearizationPoint::Nominal;
        let res = WcAnalysis::new(&e, opts).run(&d).unwrap();
        for wc in res.worst_case_points() {
            assert!(wc.s_wc.norm2() < 1e-12, "nominal anchoring expected");
        }
        // No mirrored models in nominal mode.
        assert!(res.linearizations().iter().all(|l| !l.mirrored));
        assert_eq!(res.linearizations().len(), 2);
    }

    #[test]
    fn insensitive_spec_tolerated() {
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("dead", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("live", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0], d[0] + s[0]]))
            .build()
            .unwrap();
        let res = WcAnalysis::new(&e, WcOptions::default())
            .run(&DVec::from_slice(&[3.0]))
            .unwrap();
        assert_eq!(res.worst_case_points().len(), 2);
        assert!(!res.worst_case_points()[0].converged);
        assert!((res.worst_case_points()[1].beta_wc - 3.0).abs() < 1e-3);
    }
}
