//! The full worst-case analysis of one design point: per-spec worst-case
//! operating corners, worst-case points, spec-wise linearizations and
//! mirrored (quadratic) models.

use specwise_ckt::SimPhase;
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_trace::Tracer;

use crate::corners::worst_case_corners;
use crate::gradient::margins_gradient_d;
use crate::wc_point::{WorstCasePoint, WorstCaseSearch};
use crate::{LinearizationPoint, SpecLinearization, WcOptions, WcdError};

/// Result of a worst-case analysis at one design point.
#[derive(Debug, Clone)]
pub struct WcResult {
    d_f: DVec,
    wc_points: Vec<WorstCasePoint>,
    linearizations: Vec<SpecLinearization>,
    nominal_margins: DVec,
    fallbacks: Vec<usize>,
}

impl WcResult {
    /// Reassembles a result from its parts — the checkpoint/resume path of
    /// the yield optimizer deserializes analyses through this. `fallbacks`
    /// lists the specs whose worst-case data was carried over from an
    /// earlier analysis (see [`WcAnalysis::with_fallback`]).
    pub fn from_parts(
        d_f: DVec,
        wc_points: Vec<WorstCasePoint>,
        linearizations: Vec<SpecLinearization>,
        nominal_margins: DVec,
        fallbacks: Vec<usize>,
    ) -> Self {
        WcResult {
            d_f,
            wc_points,
            linearizations,
            nominal_margins,
            fallbacks,
        }
    }

    /// The analyzed design point.
    pub fn design(&self) -> &DVec {
        &self.d_f
    }

    /// Worst-case points, one per specification (in spec order).
    pub fn worst_case_points(&self) -> &[WorstCasePoint] {
        &self.wc_points
    }

    /// All linear margin models (one per spec, plus mirrored twins).
    pub fn linearizations(&self) -> &[SpecLinearization] {
        &self.linearizations
    }

    /// Margins at the nominal statistical point, each at its spec's
    /// worst-case operating corner — the `f⁽ⁱ⁾ − f_b⁽ⁱ⁾` rows of the
    /// paper's tables.
    pub fn nominal_margins(&self) -> &DVec {
        &self.nominal_margins
    }

    /// Specs whose worst-case search failed and fell back to last-known
    /// points (empty on a fully clean analysis).
    pub fn fallback_specs(&self) -> &[usize] {
        &self.fallbacks
    }
}

/// Orchestrates the worst-case analysis (paper Secs. 2, 5.2).
///
/// Generic over the [`Evaluator`], so the same analysis runs against a bare
/// environment or an [`EvalService`](specwise_exec::EvalService) with
/// parallel batches and caching.
pub struct WcAnalysis<'e, E: Evaluator + ?Sized> {
    env: &'e E,
    options: WcOptions,
    tracer: Tracer,
    fallback: Option<WcFallback>,
}

/// Last-known worst-case data used when a per-spec search fails.
#[derive(Debug, Clone)]
struct WcFallback {
    wc_points: Vec<WorstCasePoint>,
    linearizations: Vec<SpecLinearization>,
}

impl<E: Evaluator + ?Sized> Clone for WcAnalysis<'_, E> {
    fn clone(&self) -> Self {
        WcAnalysis {
            env: self.env,
            options: self.options,
            tracer: self.tracer.clone(),
            fallback: self.fallback.clone(),
        }
    }
}

impl<E: Evaluator + ?Sized> std::fmt::Debug for WcAnalysis<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WcAnalysis")
            .field("env", &self.env.name())
            .field("options", &self.options)
            .finish()
    }
}

impl<'e, E: Evaluator + ?Sized> WcAnalysis<'e, E> {
    /// Creates an analysis bound to an evaluator.
    pub fn new(env: &'e E, options: WcOptions) -> Self {
        WcAnalysis {
            env,
            options,
            tracer: Tracer::disabled(),
            fallback: None,
        }
    }

    /// Arms the degradation ladder with the last successful analysis:
    /// when a per-spec worst-case search (or its linearization batch)
    /// fails with a *simulation* error, the analysis falls back to that
    /// spec's last-known `θ_wc`/`ŝ_wc` — and, if even re-linearizing there
    /// fails, to the previous linear models — instead of aborting the
    /// whole iteration. Every fallback emits a `warn` event into the
    /// journal and is listed in [`WcResult::fallback_specs`]. Errors that
    /// are not simulation failures still propagate.
    #[must_use]
    pub fn with_fallback(mut self, previous: &WcResult) -> Self {
        self.fallback = Some(WcFallback {
            wc_points: previous.wc_points.clone(),
            linearizations: previous.linearizations.clone(),
        });
        self
    }

    /// Attaches a [`Tracer`]: the analysis then records one `wc_analysis`
    /// span with a `corners` child plus, per specification, a `wcd_spec`
    /// span (carrying `θ_wc`, `ŝ_wc`, `β_wc` and the Eq. 8 search's
    /// simulation count) and a `linearize` span for the design-gradient
    /// finite-difference batch of Eq. 16.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the analysis at the design point `d_f`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors and invalid options. A
    /// [`WcdError::DegenerateGradient`] from a single spec is tolerated by
    /// anchoring that spec's model at the nominal point instead.
    pub fn run(&self, d_f: &DVec) -> Result<WcResult, WcdError> {
        self.options.validate()?;
        let env = self.env;
        let n_spec = env.specs().len();
        env.set_sim_phase(SimPhase::Wcd);

        let mut analysis_span = self.tracer.span("wc_analysis");
        let tr = analysis_span.tracer();

        // Per-spec worst-case operating corners (shared corner sweep).
        let corners = {
            let mut span = tr.span("corners");
            let sims_before = env.sim_count();
            let corners = worst_case_corners(env, d_f, &DVec::zeros(env.stat_dim()))?;
            span.add_count("sims", env.sim_count() - sims_before);
            corners
        };
        let nominal_margins: DVec = corners.iter().map(|(_, m)| *m).collect();

        let mut wc_points = Vec::with_capacity(n_spec);
        let mut linearizations = Vec::new();
        let mut fallbacks: Vec<usize> = Vec::new();
        let search = WorstCaseSearch::new(self.options);

        for spec in 0..n_spec {
            let (theta_wc, nominal_margin) = corners[spec];

            env.set_sim_phase(SimPhase::Wcd);
            let mut wcd_span = tr.span("wcd_spec");
            let sims_before = env.sim_count();
            let mut fell_back = false;
            let wc = match self.options.linearization_point {
                LinearizationPoint::WorstCase => {
                    match search.run(env, d_f, spec, &theta_wc) {
                        Ok(wc) => wc,
                        Err(WcdError::DegenerateGradient { .. }) => {
                            // Spec insensitive to ŝ: anchor at nominal.
                            self.nominal_anchor(d_f, spec, theta_wc, nominal_margin)?
                        }
                        // First rung of the degradation ladder: a failed
                        // search falls back to the spec's last-known
                        // worst-case point instead of aborting.
                        Err(e) if e.is_simulation_failure() && self.last_point(spec).is_some() => {
                            tr.warn(
                                "worst-case search failed; falling back to last-known point",
                                &[
                                    ("spec", spec.into()),
                                    ("name", env.specs()[spec].name().into()),
                                    ("error", e.to_string().into()),
                                ],
                            );
                            let mut prev = self.last_point(spec).expect("checked").clone();
                            prev.nominal_margin = nominal_margin;
                            prev.converged = false;
                            fell_back = true;
                            prev
                        }
                        Err(e) => return Err(e),
                    }
                }
                LinearizationPoint::Nominal => {
                    self.nominal_anchor(d_f, spec, theta_wc, nominal_margin)?
                }
            };
            if fell_back {
                fallbacks.push(spec);
            }
            if wcd_span.is_enabled() {
                wcd_span.set_attr("spec", spec);
                wcd_span.set_attr("name", env.specs()[spec].name());
                wcd_span.set_attr("theta_wc", vec![wc.theta_wc.temp_c, wc.theta_wc.vdd]);
                wcd_span.set_attr("s_wc", wc.s_wc.as_slice());
                wcd_span.set_attr("beta_wc", wc.beta_wc);
                wcd_span.set_attr("converged", wc.converged);
                wcd_span.set_attr("fallback", fell_back);
                wcd_span.add_count("sims", env.sim_count() - sims_before);
            }
            drop(wcd_span);

            // Design-space gradient at the anchor.
            env.set_sim_phase(SimPhase::Linearization);
            let mut lin_span = tr.span("linearize");
            let sims_before = env.sim_count();
            let gradient =
                margins_gradient_d(env, d_f, &wc.s_wc, &wc.theta_wc, self.options.fd_step_d);
            let (margins_anchor, jac_d) = match gradient {
                Ok(parts) => parts,
                // Second rung: even the fallback anchor cannot be
                // linearized — reuse the spec's previous linear models
                // verbatim (stale, but a usable direction) with a warning.
                Err(e) if e.is_simulation_failure() && self.has_last_models(spec) => {
                    tr.warn(
                        "linearization failed; reusing previous spec models",
                        &[
                            ("spec", spec.into()),
                            ("name", env.specs()[spec].name().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                    if !fell_back {
                        fallbacks.push(spec);
                    }
                    if lin_span.is_enabled() {
                        lin_span.set_attr("spec", spec);
                        lin_span.set_attr("fallback", true);
                        lin_span.add_count("sims", env.sim_count() - sims_before);
                    }
                    drop(lin_span);
                    let fallback = self.fallback.as_ref().expect("checked");
                    linearizations.extend(
                        fallback
                            .linearizations
                            .iter()
                            .filter(|l| l.spec == spec)
                            .cloned(),
                    );
                    wc_points.push(wc);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let lin = SpecLinearization {
                spec,
                mirrored: false,
                theta_wc: wc.theta_wc,
                s_wc: wc.s_wc.clone(),
                d_f: d_f.clone(),
                margin_at_anchor: margins_anchor[spec],
                grad_s: wc.grad_s.clone(),
                grad_d: jac_d.row(spec),
            };

            // Mismatch-shaped (semidefinite quadratic) detection: evaluate
            // once at −ŝ_wc (paper: "only one additional simulation"). For a
            // linear performance the margin there would be ≈ 2·m(0); if it
            // is much lower, the performance degrades on both sides of the
            // nominal point and a mirrored model is added (Eqs. 21–22).
            let mut mirrored = false;
            if self.options.mirrored_models
                && matches!(
                    self.options.linearization_point,
                    LinearizationPoint::WorstCase
                )
                && wc.s_wc.norm2() > 1e-9
            {
                match env.eval_margins(d_f, &(-&wc.s_wc), &wc.theta_wc) {
                    Ok(m) => {
                        let m_mirror = m[wc.spec];
                        let linear_expectation = 2.0 * wc.nominal_margin - lin.margin_at_anchor;
                        if m_mirror < 0.5 * linear_expectation {
                            linearizations.push(lin.to_mirrored());
                            mirrored = true;
                        }
                    }
                    // The probe is an optimization; losing it degrades the
                    // model (no mirrored twin), not the analysis.
                    Err(e) if e.is_simulation_failure() => {
                        tr.warn(
                            "mirror probe failed; skipping mirrored-model detection",
                            &[("spec", spec.into()), ("error", e.to_string().into())],
                        );
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if lin_span.is_enabled() {
                lin_span.set_attr("spec", spec);
                lin_span.set_attr("mirrored", mirrored);
                lin_span.add_count("sims", env.sim_count() - sims_before);
            }
            drop(lin_span);

            linearizations.push(lin);
            wc_points.push(wc);
        }

        if analysis_span.is_enabled() {
            analysis_span.set_attr("n_specs", n_spec);
            analysis_span.set_attr("n_models", linearizations.len());
            analysis_span.set_attr("n_fallbacks", fallbacks.len());
        }

        Ok(WcResult {
            d_f: d_f.clone(),
            wc_points,
            linearizations,
            nominal_margins,
            fallbacks,
        })
    }

    /// The last-known worst-case point of `spec`, when armed.
    fn last_point(&self, spec: usize) -> Option<&WorstCasePoint> {
        self.fallback
            .as_ref()
            .and_then(|f| f.wc_points.iter().find(|p| p.spec == spec))
    }

    /// Whether previous linear models exist for `spec`.
    fn has_last_models(&self, spec: usize) -> bool {
        self.fallback
            .as_ref()
            .is_some_and(|f| f.linearizations.iter().any(|l| l.spec == spec))
    }

    /// Builds a nominal-anchored pseudo worst-case point (for the Table 4
    /// ablation and for ŝ-insensitive specs).
    fn nominal_anchor(
        &self,
        d_f: &DVec,
        spec: usize,
        theta_wc: specwise_ckt::OperatingPoint,
        nominal_margin: f64,
    ) -> Result<WorstCasePoint, WcdError> {
        let s0 = DVec::zeros(self.env.stat_dim());
        let (margins, jac) = crate::gradient::margins_gradient_s(
            self.env,
            d_f,
            &s0,
            &theta_wc,
            self.options.fd_step_s,
        )?;
        Ok(WorstCasePoint {
            spec,
            theta_wc,
            s_wc: s0,
            beta_wc: if nominal_margin >= 0.0 {
                self.options.beta_max
            } else {
                -self.options.beta_max
            },
            nominal_margin,
            margin_at_wc: margins[spec],
            grad_s: jac.row(spec),
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    /// Two specs: a linear one and a mismatch-shaped (concave quadratic) one.
    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[
                    d[0] + 2.0 * s[0] + s[1],
                    // Mismatch-shaped: degrades along s0 − s1 in both
                    // directions (cf. Fig. 1's CMRR ridge).
                    d[0] - 0.4 * (s[0] - s[1]) * (s[0] - s[1]) - 0.3 * (s[0] - s[1]),
                ])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn analysis_produces_models_per_spec() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        assert_eq!(res.worst_case_points().len(), 2);
        // The quadratic spec must have received a mirrored twin.
        let mirrored: Vec<_> = res.linearizations().iter().filter(|l| l.mirrored).collect();
        assert_eq!(mirrored.len(), 1, "expected exactly one mirrored model");
        assert_eq!(mirrored[0].spec, 1);
        // The linear spec must not.
        assert!(res
            .linearizations()
            .iter()
            .filter(|l| l.spec == 0)
            .all(|l| !l.mirrored));
    }

    #[test]
    fn linear_spec_distance_correct() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        let wc = &res.worst_case_points()[0];
        // margin = 3 + 2 s0 + s1 → distance 3/√5.
        assert!(
            (wc.beta_wc - 3.0 / 5f64.sqrt()).abs() < 1e-3,
            "beta {}",
            wc.beta_wc
        );
        assert!((res.nominal_margins()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linearization_reproduces_margin_locally() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        let lin = res
            .linearizations()
            .iter()
            .find(|l| l.spec == 0 && !l.mirrored)
            .unwrap();
        // For the exactly linear margin, the model is globally exact.
        let theta = lin.theta_wc;
        for (dd, s0, s1) in [(3.0, 0.0, 0.0), (4.0, 1.0, -2.0), (2.5, -0.3, 0.7)] {
            let dv = DVec::from_slice(&[dd]);
            let sv = DVec::from_slice(&[s0, s1]);
            let truth = e.eval_margins(&dv, &sv, &theta).unwrap()[0];
            let model = lin.eval(&dv, &sv);
            assert!((truth - model).abs() < 1e-2, "{truth} vs {model}");
        }
    }

    #[test]
    fn nominal_mode_anchors_at_zero() {
        let e = env();
        let d = DVec::from_slice(&[3.0]);
        let mut opts = WcOptions::default();
        opts.linearization_point = LinearizationPoint::Nominal;
        let res = WcAnalysis::new(&e, opts).run(&d).unwrap();
        for wc in res.worst_case_points() {
            assert!(wc.s_wc.norm2() < 1e-12, "nominal anchoring expected");
        }
        // No mirrored models in nominal mode.
        assert!(res.linearizations().iter().all(|l| !l.mirrored));
        assert_eq!(res.linearizations().len(), 2);
    }

    #[test]
    fn failed_search_falls_back_to_previous_points() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let probe = Arc::clone(&flag);
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[
                    d[0] + 2.0 * s[0] + s[1],
                    d[0] - 0.4 * (s[0] - s[1]) * (s[0] - s[1]) - 0.3 * (s[0] - s[1]),
                ])
            })
            // Once armed, every evaluation away from the nominal point
            // fails — the worst-case searches cannot reach their anchors.
            .fail_when_stat(move |_, s| probe.load(Ordering::Relaxed) && s.norm2() > 0.25)
            .build()
            .unwrap();
        let d = DVec::from_slice(&[3.0]);
        let clean = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        assert!(clean.fallback_specs().is_empty());

        flag.store(true, Ordering::Relaxed);
        // Without a fallback armed the failure propagates.
        let err = WcAnalysis::new(&e, WcOptions::default())
            .run(&d)
            .unwrap_err();
        assert!(err.is_simulation_failure());
        // With the previous result armed, the analysis degrades instead:
        // stale worst-case points and stale linear models, flagged.
        let res = WcAnalysis::new(&e, WcOptions::default())
            .with_fallback(&clean)
            .run(&d)
            .unwrap();
        assert_eq!(res.fallback_specs(), &[0, 1]);
        for (wc, prev) in res
            .worst_case_points()
            .iter()
            .zip(clean.worst_case_points())
        {
            assert_eq!(wc.s_wc.as_slice(), prev.s_wc.as_slice());
            assert_eq!(wc.theta_wc, prev.theta_wc);
            assert!(!wc.converged, "fallback points must be marked stale");
        }
        assert_eq!(res.linearizations().len(), clean.linearizations().len());
    }

    #[test]
    fn failed_mirror_probe_degrades_to_no_mirrored_model() {
        // Fails exactly in the quadrant the linear spec's mirror probe
        // lands in (−ŝ_wc ∝ +(2, 1)); the searches themselves move the
        // other way and never touch it.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                DVec::from_slice(&[
                    d[0] + 2.0 * s[0] + s[1],
                    d[0] - 0.4 * (s[0] - s[1]) * (s[0] - s[1]) - 0.3 * (s[0] - s[1]),
                ])
            })
            .fail_when_stat(|_, s| s[0] > 0.3 && s[1] > 0.1)
            .build()
            .unwrap();
        let d = DVec::from_slice(&[3.0]);
        // Losing the probe costs at most a mirrored twin, never the run.
        let res = WcAnalysis::new(&e, WcOptions::default()).run(&d).unwrap();
        assert!(res.fallback_specs().is_empty());
        assert!(res
            .linearizations()
            .iter()
            .filter(|l| l.spec == 0)
            .all(|l| !l.mirrored));
        // The quadratic spec's probe lands elsewhere and still mirrors.
        assert!(res
            .linearizations()
            .iter()
            .any(|l| l.spec == 1 && l.mirrored));
    }

    #[test]
    fn insensitive_spec_tolerated() {
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 3.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("dead", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("live", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0], d[0] + s[0]]))
            .build()
            .unwrap();
        let res = WcAnalysis::new(&e, WcOptions::default())
            .run(&DVec::from_slice(&[3.0]))
            .unwrap();
        assert_eq!(res.worst_case_points().len(), 2);
        assert!(!res.worst_case_points()[0].converged);
        assert!((res.worst_case_points()[1].beta_wc - 3.0).abs() < 1e-3);
    }
}
