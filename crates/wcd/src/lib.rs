//! Worst-case analysis and spec-wise linearization for the `specwise`
//! yield-optimization workspace (paper Secs. 2, 3 and 5.2).
//!
//! Pipeline per specification `i`:
//!
//! 1. [`worst_case_corners`] — find the worst-case operating point
//!    `θ_wc⁽ⁱ⁾ = argmin_θ f⁽ⁱ⁾` by corner enumeration (paper Eq. 2),
//! 2. [`WorstCaseSearch`] — solve `min ‖ŝ‖² s.t. margin⁽ⁱ⁾(ŝ) = 0`
//!    (paper Eq. 8) with an SQP-style iteration of hyperplane projections,
//!    yielding the worst-case point `ŝ_wc⁽ⁱ⁾` and the signed worst-case
//!    distance `β_wc⁽ⁱ⁾`,
//! 3. [`WcAnalysis`] — build the spec-wise linear model (paper Eq. 16) of
//!    each margin in `(d, ŝ)` at `(d_f, ŝ_wc⁽ⁱ⁾)` with finite-difference
//!    gradients, adding a mirrored model at `−ŝ_wc` when the performance
//!    shows the semidefinite-quadratic mismatch behaviour (paper
//!    Eqs. 21–22).
//!
//! The resulting [`SpecLinearization`]s are what the yield estimator and the
//! optimizer in the `specwise` core crate consume.
//!
//! # Example
//!
//! ```no_run
//! use specwise_ckt::{CircuitEnv, FoldedCascode};
//! use specwise_wcd::{WcAnalysis, WcOptions};
//!
//! # fn main() -> Result<(), specwise_wcd::WcdError> {
//! let env = FoldedCascode::paper_setup();
//! let d0 = env.design_space().initial();
//! let result = WcAnalysis::new(&env, WcOptions::default()).run(&d0)?;
//! for wc in result.worst_case_points() {
//!     println!("{}: beta_wc = {:.2}", env.specs()[wc.spec].name(), wc.beta_wc);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analysis;
mod corners;
mod error;
mod gradient;
mod linearize;
mod options;
mod quadratic;
mod theta_opt;
mod wc_point;

pub use analysis::{WcAnalysis, WcResult};
pub use corners::worst_case_corners;
pub use error::WcdError;
pub use gradient::{
    constraint_jacobian, grad_backend, margins_gradient_d, margins_gradient_d_with,
    margins_gradient_s, margins_gradient_s_with, set_grad_override, GradBackend,
};
pub use linearize::SpecLinearization;
pub use options::{LinearizationPoint, WcOptions};
pub use quadratic::QuadraticMarginModel;
pub use theta_opt::refine_worst_theta;
pub use wc_point::{WorstCasePoint, WorstCaseSearch};
