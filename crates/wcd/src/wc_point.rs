//! Worst-case distance search: paper Eq. 8,
//! `ŝ_wc = argmin ‖ŝ‖² s.t. margin(d, ŝ, θ_wc) = 0`.
//!
//! The solver is the classical worst-case distance iteration of Antreich,
//! Graeb et al. (paper refs [10, 12]): linearize the margin at the current
//! iterate and jump to the point of the zero-margin hyperplane closest to
//! the origin, repeating until the true margin vanishes there.

use specwise_ckt::OperatingPoint;
use specwise_exec::Evaluator;
use specwise_linalg::DVec;

use crate::gradient::margins_gradient_s;
use crate::{WcOptions, WcdError};

/// The worst-case point of one specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCasePoint {
    /// Specification index.
    pub spec: usize,
    /// Worst-case operating point used for the search.
    pub theta_wc: OperatingPoint,
    /// The worst-case statistical point (standardized space).
    pub s_wc: DVec,
    /// Signed worst-case distance: `+‖ŝ_wc‖` when the nominal design
    /// satisfies the spec, `−‖ŝ_wc‖` when it violates it.
    pub beta_wc: f64,
    /// Margin at the nominal point `ŝ = 0`.
    pub nominal_margin: f64,
    /// Margin at `ŝ_wc` (≈ 0 when converged and unclamped).
    pub margin_at_wc: f64,
    /// Margin gradient w.r.t. `ŝ` at `ŝ_wc`.
    pub grad_s: DVec,
    /// `true` when the search converged to the spec boundary; `false` when
    /// the spec cannot fail within `beta_max` sigmas (β clamped) or the
    /// iteration budget ran out.
    pub converged: bool,
}

impl WorstCasePoint {
    /// The component pair `(k, l)` of `ŝ_wc` with the largest magnitudes —
    /// a convenience accessor for the mismatch analysis.
    ///
    /// Returns `None` when the statistical space has fewer than two
    /// dimensions.
    pub fn dominant_pair(&self) -> Option<(usize, usize)> {
        if self.s_wc.len() < 2 {
            return None;
        }
        let mut idx: Vec<usize> = (0..self.s_wc.len()).collect();
        idx.sort_by(|&a, &b| {
            self.s_wc[b]
                .abs()
                .partial_cmp(&self.s_wc[a].abs())
                .expect("finite components")
        });
        Some((idx[0], idx[1]))
    }
}

/// Worst-case distance solver for one specification.
///
/// See the [crate-level example](crate) for typical usage through
/// [`crate::WcAnalysis`]; this type is the stand-alone building block.
#[derive(Debug, Clone)]
pub struct WorstCaseSearch {
    options: WcOptions,
}

impl WorstCaseSearch {
    /// Creates a solver.
    pub fn new(options: WcOptions) -> Self {
        WorstCaseSearch { options }
    }

    /// Runs the search for specification `spec` at design `d` and operating
    /// point `theta_wc`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns
    /// [`WcdError::DegenerateGradient`] when the margin does not depend on
    /// the statistical parameters at all.
    pub fn run<E: Evaluator + ?Sized>(
        &self,
        env: &E,
        d: &DVec,
        spec: usize,
        theta_wc: &OperatingPoint,
    ) -> Result<WorstCasePoint, WcdError> {
        self.options.validate()?;
        let n_s = env.stat_dim();
        // Start slightly off the nominal point with a deterministic,
        // asymmetric perturbation. Mismatch-shaped performances are locally
        // quadratic ridges whose gradient vanishes *exactly* at ŝ = 0 — and
        // worse, one-sided finite differences there point along the neutral
        // direction. Breaking the symmetry restores a correctly oriented
        // first gradient (this is our stand-in for the mismatch-aware
        // worst-case algorithm of paper ref [12]).
        const GOLDEN: f64 = 1.618_033_988_749_895;
        let mut s = DVec::from_fn(n_s, |i| 0.15 * (GOLDEN * (i as f64 + 1.0)).sin());
        // The exact nominal margin (for the sign of β_wc).
        let nominal_margin = env.eval_margins(d, &DVec::zeros(n_s), theta_wc)?[spec];
        let mut last_margin = f64::NAN;
        let mut last_grad = DVec::zeros(n_s);
        let mut converged = false;

        for iter in 0..self.options.max_sqp_iters {
            let (margins, jac) = margins_gradient_s(env, d, &s, theta_wc, self.options.fd_step_s)?;
            let m = margins[spec];
            let g = jac.row(spec);
            let _ = iter;
            last_margin = m;
            last_grad = g.clone();

            let gnorm2 = g.dot(&g);
            if gnorm2 <= 1e-30 {
                if iter == 0 {
                    return Err(WcdError::DegenerateGradient { spec });
                }
                break;
            }

            // Closest point to the origin on {ŝ : m + gᵀ(ŝ − s) = 0}:
            // ŝ* = ((gᵀs − m)/gᵀg)·g.
            let alpha = (g.dot(&s) - m) / gnorm2;
            let mut s_next = g.scaled(alpha);

            // Clamp to the trust sphere ‖ŝ‖ ≤ beta_max.
            let norm = s_next.norm2();
            if norm > self.options.beta_max {
                s_next.scale_mut(self.options.beta_max / norm);
            }

            // Damp overly long moves (nonlinearity guard): at most 2σ per step.
            let step = &s_next - &s;
            let step_norm = step.norm2();
            const MAX_STEP: f64 = 2.0;
            let s_new = if step_norm > MAX_STEP {
                s.axpy(MAX_STEP / step_norm, &step)
            } else {
                s_next
            };

            // Convergence test on the *true* margin at the new iterate.
            let margins_new = env.eval_margins(d, &s_new, theta_wc)?;
            let m_new = margins_new[spec];
            let gnorm = gnorm2.sqrt();
            s = s_new;
            last_margin = m_new;
            if m_new.abs() <= self.options.margin_tol_rel * gnorm
                && step_norm <= MAX_STEP
                && s.norm2() < self.options.beta_max - 1e-9
            {
                converged = true;
                break;
            }
            if s.norm2() >= self.options.beta_max - 1e-9 && m_new > 0.0 {
                // The spec cannot fail inside the trust sphere: uncritical.
                converged = false;
                break;
            }
        }

        let beta_mag = s.norm2();
        let beta_wc = if nominal_margin >= 0.0 {
            beta_mag
        } else {
            -beta_mag
        };
        // Refresh the gradient at the final point when we moved (the last
        // stored gradient belongs to the previous iterate).
        let (margins_f, jac_f) = margins_gradient_s(env, d, &s, theta_wc, self.options.fd_step_s)?;
        let _ = (last_margin, last_grad);
        Ok(WorstCasePoint {
            spec,
            theta_wc: *theta_wc,
            s_wc: s,
            beta_wc,
            nominal_margin,
            margin_at_wc: margins_f[spec],
            grad_s: jac_f.row(spec),
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    fn linear_env(offset: f64) -> AnalyticEnv {
        // margin = offset + 3·s0 − 4·s1 (lower-bound spec at 0).
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -10.0, 10.0, offset,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + 3.0 * s[0] - 4.0 * s[1]]))
            .build()
            .unwrap()
    }

    #[test]
    fn linear_case_exact_distance() {
        // Distance from origin to hyperplane offset + 3s0 − 4s1 = 0 is
        // offset/5; the worst-case point is −offset·(3, −4)/25.
        let env = linear_env(5.0);
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[5.0]), 0, &theta)
            .unwrap();
        assert!(wc.converged);
        assert!((wc.beta_wc - 1.0).abs() < 1e-3, "beta = {}", wc.beta_wc);
        assert!((wc.s_wc[0] + 0.6).abs() < 1e-3);
        assert!((wc.s_wc[1] - 0.8).abs() < 1e-3);
        assert!(wc.margin_at_wc.abs() < 1e-6);
        assert!((wc.nominal_margin - 5.0).abs() < 1e-12);
    }

    #[test]
    fn violated_spec_gives_negative_beta() {
        let env = linear_env(-2.5);
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[-2.5]), 0, &theta)
            .unwrap();
        assert!(wc.converged);
        assert!((wc.beta_wc + 0.5).abs() < 1e-3, "beta = {}", wc.beta_wc);
        assert!(wc.nominal_margin < 0.0);
    }

    #[test]
    fn worst_case_point_is_spec_gradient_aligned() {
        // At the worst-case point, ŝ_wc ∝ −∇margin (paper Sec. 3).
        let env = linear_env(5.0);
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[5.0]), 0, &theta)
            .unwrap();
        // grad = (3, −4); s_wc = (−0.6, 0.8) = −0.2·grad.
        let cross = wc.s_wc[0] * wc.grad_s[1] - wc.s_wc[1] * wc.grad_s[0];
        assert!(cross.abs() < 1e-6, "not collinear: {cross}");
        assert!(
            wc.s_wc.dot(&wc.grad_s) < 0.0,
            "must point against the gradient"
        );
    }

    #[test]
    fn uncritical_spec_clamped_to_beta_max() {
        // Tiny sensitivity: cannot fail within 8σ.
        let env = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 5.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + 1e-3 * s[0]]))
            .build()
            .unwrap();
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[5.0]), 0, &theta)
            .unwrap();
        assert!(!wc.converged);
        assert!((wc.beta_wc - WcOptions::default().beta_max).abs() < 1e-6);
    }

    #[test]
    fn quadratic_margin_converges() {
        // margin = 2 − s0² − 0.25·s1²; boundary at ‖(s0, 0)‖ = √2 (closest).
        let env = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 2.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - s[0] * s[0] - 0.25 * s[1] * s[1]]))
            .build()
            .unwrap();
        let theta = env.operating_range().nominal();
        let mut opts = WcOptions::default();
        opts.max_sqp_iters = 30;
        let wc = WorstCaseSearch::new(opts)
            .run(&env, &DVec::from_slice(&[2.0]), 0, &theta)
            .unwrap();
        // The gradient at s = 0 vanishes in s0 and s1… actually it is 0 for
        // both — degenerate at the nominal point. The fd step perturbs it
        // slightly so the search still finds the boundary ring.
        assert!(wc.margin_at_wc.abs() < 0.05, "margin {}", wc.margin_at_wc);
        assert!(
            (wc.s_wc.norm2() - 2f64.sqrt()).abs() < 0.3,
            "norm {}",
            wc.s_wc.norm2()
        );
    }

    #[test]
    fn degenerate_gradient_detected() {
        let env = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, _, _| DVec::from_slice(&[d[0]]))
            .build()
            .unwrap();
        let theta = env.operating_range().nominal();
        let r = WorstCaseSearch::new(WcOptions::default()).run(
            &env,
            &DVec::from_slice(&[1.0]),
            0,
            &theta,
        );
        assert!(matches!(r, Err(WcdError::DegenerateGradient { spec: 0 })));
    }
}
