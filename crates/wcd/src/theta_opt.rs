//! Continuous worst-case operating-point refinement.
//!
//! The paper evaluates the worst-case operating point by corner enumeration
//! (Eq. 2), which is exact when performances are monotone in `θ`. Some
//! performances are not (e.g. a phase margin can peak mid-range); this
//! module refines a corner candidate by golden-section coordinate descent
//! inside the `Θ` box — an optional extension beyond the paper's corner
//! assumption.

use specwise_ckt::OperatingPoint;
use specwise_exec::Evaluator;
use specwise_linalg::DVec;

use crate::WcdError;

/// Golden-section minimization of a 1-D function on `[lo, hi]`.
fn golden_min(
    mut f: impl FnMut(f64) -> Result<f64, WcdError>,
    lo: f64,
    hi: f64,
    evals: usize,
) -> Result<(f64, f64), WcdError> {
    const INV_PHI: f64 = 0.618_033_988_749_895;
    let mut a = lo;
    let mut b = hi;
    let mut x1 = b - INV_PHI * (b - a);
    let mut x2 = a + INV_PHI * (b - a);
    let mut f1 = f(x1)?;
    let mut f2 = f(x2)?;
    for _ in 0..evals.saturating_sub(2) {
        if f1 <= f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INV_PHI * (b - a);
            f1 = f(x1)?;
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INV_PHI * (b - a);
            f2 = f(x2)?;
        }
    }
    Ok(if f1 <= f2 { (x1, f1) } else { (x2, f2) })
}

/// Refines the worst-case operating point of specification `spec` at
/// `(d, ŝ)`, starting from `theta0` (usually the worst corner), by
/// golden-section coordinate descent over temperature and supply voltage.
///
/// `evals_per_axis` bounds the simulations per axis and sweep (≥ 3);
/// two sweeps are performed. Returns the refined `θ` and the margin there
/// (≤ the margin at `theta0` up to search resolution).
///
/// # Errors
///
/// Propagates evaluation errors; rejects too-small budgets.
pub fn refine_worst_theta<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    s_hat: &DVec,
    spec: usize,
    theta0: OperatingPoint,
    evals_per_axis: usize,
) -> Result<(OperatingPoint, f64), WcdError> {
    if evals_per_axis < 3 {
        return Err(WcdError::InvalidOption {
            reason: "evals_per_axis must be >= 3",
        });
    }
    let range = env.operating_range();
    let (t_lo, t_hi) = range.temp_bounds();
    let (v_lo, v_hi) = range.vdd_bounds();
    let mut theta = theta0;
    let mut best = env.eval_margins(d, s_hat, &theta)?[spec];

    for _sweep in 0..2 {
        // Temperature axis.
        let vdd = theta.vdd;
        let (t_best, m_t) = golden_min(
            |t| Ok(env.eval_margins(d, s_hat, &OperatingPoint::new(t, vdd))?[spec]),
            t_lo,
            t_hi,
            evals_per_axis,
        )?;
        if m_t < best {
            best = m_t;
            theta = OperatingPoint::new(t_best, vdd);
        }
        // Supply axis.
        let temp = theta.temp_c;
        let (v_best, m_v) = golden_min(
            |v| Ok(env.eval_margins(d, s_hat, &OperatingPoint::new(temp, v))?[spec]),
            v_lo,
            v_hi,
            evals_per_axis,
        )?;
        if m_v < best {
            best = m_v;
            theta = OperatingPoint::new(temp, v_best);
        }
    }
    Ok((theta, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worst_case_corners;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, OperatingRange, Spec, SpecKind};

    /// Margin with an *interior* worst-case temperature at 60 °C.
    fn interior_env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(1)
            .operating_range(OperatingRange::new(-40.0, 125.0, 3.0, 3.6))
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, th| {
                let dip = -2.0 + ((th.temp_c - 60.0) / 40.0).powi(2);
                DVec::from_slice(&[d[0] + s[0] + dip + 0.5 * (th.vdd - 3.0)])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn finds_interior_temperature_dip() {
        let e = interior_env();
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::zeros(1);
        // Corner enumeration misses the dip at 60 °C / VDD = 3.0.
        let corners = worst_case_corners(&e, &d, &s).unwrap();
        let (theta_corner, m_corner) = corners[0];
        let (theta, m) = refine_worst_theta(&e, &d, &s, 0, theta_corner, 12).unwrap();
        assert!(
            m < m_corner - 0.5,
            "refined margin {m} must beat corner {m_corner}"
        );
        assert!(
            (theta.temp_c - 60.0).abs() < 5.0,
            "dip near 60°C, got {}",
            theta.temp_c
        );
        assert!(
            (theta.vdd - 3.0).abs() < 0.05,
            "low VDD is worst, got {}",
            theta.vdd
        );
        // Analytic minimum: 1 − 2 + 0 = −1.
        assert!((m + 1.0).abs() < 0.05, "margin at the dip ≈ −1, got {m}");
    }

    #[test]
    fn monotone_case_stays_at_corner() {
        // Margin monotone in both θ axes: the corner is already worst.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", 0.0, 10.0, 1.0,
            )]))
            .stat_dim(1)
            .operating_range(OperatingRange::new(-40.0, 125.0, 3.0, 3.6))
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, th| {
                DVec::from_slice(&[d[0] + s[0] - 0.01 * th.temp_c + 0.5 * th.vdd])
            })
            .build()
            .unwrap();
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::zeros(1);
        let corners = worst_case_corners(&e, &d, &s).unwrap();
        let (theta_corner, m_corner) = corners[0];
        let (theta, m) = refine_worst_theta(&e, &d, &s, 0, theta_corner, 10).unwrap();
        assert!(m <= m_corner + 1e-9);
        assert!((m - m_corner).abs() < 0.02, "no interior dip to find");
        assert!((theta.temp_c - 125.0).abs() < 6.0);
    }

    #[test]
    fn budget_validated() {
        let e = interior_env();
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::zeros(1);
        assert!(refine_worst_theta(&e, &d, &s, 0, OperatingPoint::new(25.0, 3.3), 2).is_err());
    }
}
