//! Spec-wise linear performance models (paper Eq. 16), expressed on margins.
//!
//! Each model approximates one margin as
//!
//! ```text
//! m̄⁽ⁱ⁾(d, ŝ) = m_wc + ∇_ŝ m·(ŝ − ŝ_wc) + ∇_d m·(d − d_f)
//! ```
//!
//! anchored at the worst-case point `ŝ_wc` and the feasible design point
//! `d_f`. A sample passes the spec when `m̄ ≥ 0` — the margin formulation of
//! the paper's `f̄ ≥ f_b`.

use specwise_ckt::OperatingPoint;
use specwise_linalg::DVec;

/// A linearized margin model of one specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecLinearization {
    /// Specification index this model belongs to.
    pub spec: usize,
    /// `true` when this is the mirrored twin (paper Eqs. 21–22) added for a
    /// semidefinite-quadratic (mismatch-shaped) performance.
    pub mirrored: bool,
    /// Worst-case operating point of the spec.
    pub theta_wc: OperatingPoint,
    /// Anchor point in the standardized statistical space.
    pub s_wc: DVec,
    /// Anchor point in the design space.
    pub d_f: DVec,
    /// Margin value at the anchor `(d_f, ŝ_wc)`.
    pub margin_at_anchor: f64,
    /// Margin gradient w.r.t. `ŝ` at the anchor.
    pub grad_s: DVec,
    /// Margin gradient w.r.t. `d` at the anchor.
    pub grad_d: DVec,
}

impl SpecLinearization {
    /// Evaluates the linear model at `(d, ŝ)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, d: &DVec, s_hat: &DVec) -> f64 {
        self.margin_at_anchor
            + self.grad_s.dot(&(s_hat - &self.s_wc))
            + self.grad_d.dot(&(d - &self.d_f))
    }

    /// The sample-constant part of the model: everything except the
    /// `∇_d·(d − d_f)` term (paper Eq. 20's stored per-sample value). The
    /// full model is `sample_part(ŝ) + design_shift(d)`.
    pub fn sample_part(&self, s_hat: &DVec) -> f64 {
        self.margin_at_anchor + self.grad_s.dot(&(s_hat - &self.s_wc))
    }

    /// The design-dependent shift `∇_d·(d − d_f)` (paper's `Δf̄`).
    pub fn design_shift(&self, d: &DVec) -> f64 {
        self.grad_d.dot(&(d - &self.d_f))
    }

    /// Incremental design shift when only coordinate `k` moves from
    /// `d_f[k]` to `value` — the single-product update that makes the
    /// coordinate search cheap (paper Sec. 5.3).
    pub fn design_shift_coord(&self, k: usize, value: f64) -> f64 {
        self.grad_d[k] * (value - self.d_f[k])
    }

    /// Builds the mirrored twin at `−ŝ_wc` with negated statistical
    /// gradient (paper Eqs. 21–22). The design gradient and anchor margin
    /// are reused.
    pub fn to_mirrored(&self) -> SpecLinearization {
        SpecLinearization {
            spec: self.spec,
            mirrored: true,
            theta_wc: self.theta_wc,
            s_wc: -&self.s_wc,
            d_f: self.d_f.clone(),
            margin_at_anchor: self.margin_at_anchor,
            grad_s: -&self.grad_s,
            grad_d: self.grad_d.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SpecLinearization {
        SpecLinearization {
            spec: 1,
            mirrored: false,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::from_slice(&[1.0, -1.0]),
            d_f: DVec::from_slice(&[2.0]),
            margin_at_anchor: 0.0,
            grad_s: DVec::from_slice(&[0.5, -0.5]),
            grad_d: DVec::from_slice(&[2.0]),
        }
    }

    #[test]
    fn eval_decomposes() {
        let lin = example();
        let d = DVec::from_slice(&[3.0]);
        let s = DVec::from_slice(&[0.0, 0.0]);
        let full = lin.eval(&d, &s);
        let split = lin.sample_part(&s) + lin.design_shift(&d);
        assert!((full - split).abs() < 1e-14);
        // At the anchor the model reproduces the anchor margin.
        assert!((lin.eval(&lin.d_f.clone(), &lin.s_wc.clone()) - 0.0).abs() < 1e-14);
    }

    #[test]
    fn known_values() {
        let lin = example();
        // sample part at s = 0: 0 + (0.5, −0.5)·(−1, 1) = −1.
        assert!((lin.sample_part(&DVec::zeros(2)) + 1.0).abs() < 1e-14);
        // design shift at d = 3: 2·1 = 2.
        assert!((lin.design_shift(&DVec::from_slice(&[3.0])) - 2.0).abs() < 1e-14);
        assert!((lin.design_shift_coord(0, 3.0) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn mirrored_model_negates_stat_side() {
        let lin = example();
        let m = lin.to_mirrored();
        assert!(m.mirrored);
        assert_eq!(m.s_wc.as_slice(), &[-1.0, 1.0]);
        assert_eq!(m.grad_s.as_slice(), &[-0.5, 0.5]);
        assert_eq!(m.grad_d, lin.grad_d);
        // Mirrored model at −s_wc reproduces the anchor margin.
        assert!((m.eval(&lin.d_f.clone(), &m.s_wc.clone())).abs() < 1e-14);
        // At s = 0 both models agree (symmetry of the quadratic).
        assert!((m.sample_part(&DVec::zeros(2)) - lin.sample_part(&DVec::zeros(2))).abs() < 1e-14);
    }
}
