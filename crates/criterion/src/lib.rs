//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! 0.5 API surface used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` section substitutes this crate (DESIGN.md §3). It
//! implements the subset the benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId::from_parameter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`] —
//! with a plain `Instant`-based measurement loop: warm up briefly, then
//! time batches until a time budget is spent, and print mean/min per
//! iteration. No statistics, plots, or baseline files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().0;
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the time budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one benchmark that receives a reference to its input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream writes reports here; we print as we go).
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, mirroring upstream.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

/// Conversion into a [`BenchmarkId`] (accepts `&str`, `String`, ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples until the budget or the
    /// sample count is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        black_box(f());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));
        let deadline = Instant::now() + self.budget;
        // Batch iterations so cheap bodies are not dominated by clock reads.
        let batch = (Duration::from_micros(50).as_nanos() / estimate.as_nanos()).max(1) as u32;
        while self.samples.len() < self.sample_size && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / batch);
        }
        if self.samples.is_empty() {
            self.samples.push(estimate);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: measurement_time,
        sample_size,
    };
    f(&mut b);
    let n = b.samples.len().max(1) as u32;
    let mean = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or(mean);
    println!(
        "bench {label:<50} mean {:>12?}  min {:>12?}  ({n} samples)",
        mean, min
    );
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn runs_benchmarks_without_panicking() {
        let mut c = Criterion::default();
        quick(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
